"""The tuner interface shared by MAB, PDTool, NoIndex and the RL baselines.

The simulation driver (:mod:`repro.harness.simulation`) interacts with every
tuner through this small protocol, which encodes the paper's round structure:

1. ``recommend`` — before a round's (unknown) workload arrives, propose the
   index configuration to materialise.  Online tuners may only use what they
   observed in previous rounds; PDTool-style tools additionally receive a
   training workload on the rounds where the paper's protocol invokes them.
2. the driver materialises the configuration and executes the round;
3. ``observe`` — the tuner receives the executed queries, their observed
   execution statistics and the configuration change (with per-index creation
   times), from which it can shape rewards for the next round.

This module is the implementation home of the protocol; the supported public
import path is :mod:`repro.api`, which re-exports :class:`Tuner` and
:class:`Recommendation` next to the tuner registry and the session drivers.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.engine.catalog import ConfigurationChange
from repro.engine.execution import ExecutionResult
from repro.engine.indexes import IndexDefinition
from repro.engine.query import Query

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.registry import TunerSpec
    from repro.engine.catalog import Database


@dataclass
class Recommendation:
    """A tuner's proposal for one round."""

    configuration: list[IndexDefinition] = field(default_factory=list)
    #: Time charged as recommendation overhead for this round (model-seconds).
    recommendation_seconds: float = 0.0


class Tuner(ABC):
    """Abstract online index tuner."""

    #: Human-readable name used in reports (e.g. ``MAB``, ``PDTool``).
    name: str = "tuner"

    @abstractmethod
    def recommend(
        self,
        round_number: int,
        training_queries: list[Query] | None = None,
    ) -> Recommendation:
        """Propose the configuration to materialise for the upcoming round.

        ``training_queries`` is non-``None`` only on rounds where the
        experiment protocol invokes an offline tool (PDTool) with a DBA-style
        training workload; online tuners must ignore it.
        """

    @abstractmethod
    def observe(
        self,
        round_number: int,
        queries: list[Query],
        results: list[ExecutionResult],
        change: ConfigurationChange,
    ) -> None:
        """Receive the executed round's observed statistics."""

    def reset(self) -> None:
        """Forget all learned state (used between experiment repetitions).

        A reset tuner must be *bit-identical* to a freshly constructed one:
        rerunning the same workload from round 0 produces the same decisions
        (internal random streams restart from their seeds).
        """

    @classmethod
    def from_spec(cls, database: "Database", spec: "TunerSpec") -> "Tuner":
        """Build this tuner for one database under an experiment spec.

        The default covers tuners whose constructor is ``cls(database)`` with
        optional extras; tuners that specialise per benchmark or workload
        regime (e.g. PDTool's TPC-DS random time cap) override it.  This is
        the factory the registry (:func:`repro.api.register_tuner`) records.
        """
        return cls(database)
