"""Cost-based plan selection.

The planner chooses, per query, an access path for every referenced table and
a left-deep join order/method, minimising *estimated* cost.  Estimates come
from :class:`~repro.optimizer.cardinality.CardinalityEstimator` (uniformity +
AVI); actual run time is later determined by the executor over true
cardinalities.  The same planner is used

* by the execution pipeline (``configuration`` = the materialised indexes), and
* by the what-if interface (``configuration`` = an arbitrary hypothetical set),

which mirrors how real systems reuse the optimiser for hypothetical analysis.
"""

from __future__ import annotations

from repro.engine.catalog import Database
from repro.engine.indexes import IndexDefinition
from repro.engine.plans import AccessMethod, JoinMethod, JoinStep, QueryPlan, TableAccessPlan
from repro.engine.query import Query
from repro.engine.storage import TableData

from .cardinality import CardinalityEstimator


class Planner:
    """Chooses minimum-estimated-cost plans for queries."""

    def __init__(self, database: Database) -> None:
        self.database = database
        self.estimator = CardinalityEstimator(database.statistics)

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def plan(
        self, query: Query, configuration: list[IndexDefinition] | None = None
    ) -> QueryPlan:
        """Return the cheapest (by estimate) plan for ``query`` under ``configuration``.

        ``configuration`` defaults to the currently materialised indexes.
        """
        if configuration is None:
            configuration = self.database.materialised_indexes
        indexes_by_table: dict[str, list[IndexDefinition]] = {}
        for index in configuration:
            indexes_by_table.setdefault(index.table, []).append(index)

        accesses: dict[str, TableAccessPlan] = {}
        estimated_rows: dict[str, float] = {}
        for table_name in query.tables:
            access = self._best_access(query, table_name, indexes_by_table.get(table_name, []))
            accesses[table_name] = access
            estimated_rows[table_name] = access.estimated_rows

        driving_table, join_steps, join_cost, result_rows = self._plan_joins(
            query, accesses, estimated_rows, indexes_by_table
        )

        base_cost = accesses[driving_table].estimated_seconds
        inl_tables = {
            step.inner_table
            for step in join_steps
            if step.method is JoinMethod.INDEX_NESTED_LOOP
        }
        for table_name in query.tables:
            if table_name == driving_table or table_name in inl_tables:
                continue
            base_cost += accesses[table_name].estimated_seconds

        aggregation = self.database.cost_model.aggregation_seconds(int(result_rows))
        overhead = self.database.cost_model.parameters.per_query_overhead_seconds
        total = base_cost + join_cost + aggregation + overhead
        return QueryPlan(
            query=query,
            accesses=accesses,
            driving_table=driving_table,
            join_steps=join_steps,
            estimated_seconds=total,
        )

    # ------------------------------------------------------------------ #
    # access-path selection
    # ------------------------------------------------------------------ #
    def _best_access(
        self, query: Query, table_name: str, indexes: list[IndexDefinition]
    ) -> TableAccessPlan:
        data = self.database.table_data(table_name)
        cost_model = self.database.cost_model
        filtered_rows = self.estimator.table_cardinality(query, table_name)
        predicate_columns = set(query.predicate_columns_for(table_name))
        referenced = query.referenced_columns_for(table_name)

        best = TableAccessPlan(
            table=table_name,
            method=AccessMethod.FULL_SCAN,
            estimated_rows=filtered_rows,
            estimated_seconds=cost_model.full_scan_seconds(data),
        )
        for index in indexes:
            covering = index.covers_columns(referenced)
            prefix_length = index.seekable_prefix_length(predicate_columns)
            if prefix_length > 0:
                prefix_columns = set(index.key_prefix(prefix_length))
                prefix_predicates = tuple(
                    predicate
                    for predicate in query.predicates_for(table_name)
                    if predicate.column in prefix_columns
                )
                matching = self.estimator.conjunctive_selectivity(prefix_predicates) * data.full_row_count
                estimated_seconds = cost_model.index_seek_seconds(
                    index, data, int(max(1.0, matching)), covering=covering
                )
                candidate = TableAccessPlan(
                    table=table_name,
                    method=AccessMethod.INDEX_SEEK,
                    index=index,
                    seek_prefix_length=prefix_length,
                    covering=covering,
                    estimated_rows=filtered_rows,
                    estimated_seconds=estimated_seconds,
                )
            elif covering:
                candidate = TableAccessPlan(
                    table=table_name,
                    method=AccessMethod.INDEX_ONLY_SCAN,
                    index=index,
                    covering=True,
                    estimated_rows=filtered_rows,
                    estimated_seconds=cost_model.index_only_scan_seconds(index, data),
                )
            else:
                continue
            if candidate.estimated_seconds < best.estimated_seconds:
                best = candidate
        return best

    # ------------------------------------------------------------------ #
    # join planning
    # ------------------------------------------------------------------ #
    def _plan_joins(
        self,
        query: Query,
        accesses: dict[str, TableAccessPlan],
        estimated_rows: dict[str, float],
        indexes_by_table: dict[str, list[IndexDefinition]],
    ) -> tuple[str, list[JoinStep], float, float]:
        """Greedy left-deep join order: start from the smallest estimated input."""
        tables = list(query.tables)
        if len(tables) == 1:
            only = tables[0]
            return only, [], 0.0, estimated_rows[only]

        ordered = sorted(tables, key=lambda name: estimated_rows[name])
        driving_table = ordered[0]
        joined: set[str] = {driving_table}
        remaining = [name for name in ordered if name != driving_table]
        current_rows = estimated_rows[driving_table]
        # The probe/outer stream of every join step prices at the driving
        # table's tier (matching the executor's cross-tier accounting).
        driving_data = self.database.table_data(driving_table)
        join_steps: list[JoinStep] = []
        total_join_cost = 0.0

        while remaining:
            # Prefer tables connected to the already-joined set (avoid cross joins).
            next_table = self._pick_next_table(query, joined, remaining)
            remaining.remove(next_table)
            step, step_cost, current_rows = self._best_join_step(
                query,
                joined,
                next_table,
                current_rows,
                estimated_rows[next_table],
                accesses[next_table],
                indexes_by_table.get(next_table, []),
                driving_data,
            )
            join_steps.append(step)
            total_join_cost += step_cost
            joined.add(next_table)
        return driving_table, join_steps, total_join_cost, current_rows

    def _pick_next_table(
        self, query: Query, joined: set[str], remaining: list[str]
    ) -> str:
        for table_name in remaining:
            for join in query.joins:
                if join.involves(table_name) and (
                    (join.left_table in joined) or (join.right_table in joined)
                ):
                    return table_name
        return remaining[0]

    def _join_connection(
        self, query: Query, joined: set[str], inner_table: str
    ) -> tuple[str, str, str] | None:
        """Return ``(outer_table, outer_column, inner_column)`` linking the sets, if any."""
        for join in query.joins:
            if join.left_table == inner_table and join.right_table in joined:
                return join.right_table, join.right_column, join.left_column
            if join.right_table == inner_table and join.left_table in joined:
                return join.left_table, join.left_column, join.right_column
        return None

    def _best_join_step(
        self,
        query: Query,
        joined: set[str],
        inner_table: str,
        outer_rows: float,
        inner_rows: float,
        inner_access: TableAccessPlan,
        inner_indexes: list[IndexDefinition],
        outer_data: "TableData | None" = None,
    ) -> tuple[JoinStep, float, float]:
        cost_model = self.database.cost_model
        inner_data = self.database.table_data(inner_table)
        connection = self._join_connection(query, joined, inner_table)

        if connection is None:
            result_rows = max(1.0, outer_rows * inner_rows / max(1.0, inner_data.full_row_count))
        else:
            outer_table, outer_column, inner_column = connection
            result_rows = self.estimator.join_cardinality(
                outer_rows, outer_table, outer_column, inner_rows, inner_table, inner_column
            )

        # Option 1: hash join (build on the inner input, probe with the outer).
        hash_cost = cost_model.hash_join_seconds(
            int(inner_rows), int(outer_rows),
            build_data=inner_data, probe_data=outer_data,
        )
        hash_cost += inner_access.estimated_seconds
        best_step = JoinStep(
            inner_table=inner_table,
            method=JoinMethod.HASH_JOIN,
            estimated_outer_rows=outer_rows,
            estimated_result_rows=result_rows,
            estimated_seconds=hash_cost,
        )
        best_cost = hash_cost

        # Option 2: index nested loop, if an index leads with the join column.
        if connection is not None:
            _, _, inner_column = connection
            referenced = query.referenced_columns_for(inner_table)
            rows_per_probe = self.estimator.rows_per_join_key(inner_table, inner_column)
            for index in inner_indexes:
                if index.leading_column() != inner_column:
                    continue
                covering = index.covers_columns(referenced)
                inl_cost = cost_model.index_nested_loop_seconds(
                    outer_rows=int(outer_rows),
                    inner_index=index,
                    inner_data=inner_data,
                    rows_per_probe=rows_per_probe,
                    covering=covering,
                    outer_data=outer_data,
                )
                if inl_cost < best_cost:
                    best_cost = inl_cost
                    best_step = JoinStep(
                        inner_table=inner_table,
                        method=JoinMethod.INDEX_NESTED_LOOP,
                        index=index,
                        covering=covering,
                        estimated_outer_rows=outer_rows,
                        estimated_result_rows=result_rows,
                        estimated_seconds=inl_cost,
                    )
        return best_step, best_cost, result_rows
