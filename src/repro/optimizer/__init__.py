"""Cost-based query optimiser with a what-if (hypothetical index) interface."""

from .cardinality import DEFAULT_UNKNOWN_SELECTIVITY, MIN_SELECTIVITY, CardinalityEstimator
from .planner import Planner
from .whatif import WhatIfOptimizer, WhatIfResult

__all__ = [
    "CardinalityEstimator",
    "DEFAULT_UNKNOWN_SELECTIVITY",
    "MIN_SELECTIVITY",
    "Planner",
    "WhatIfOptimizer",
    "WhatIfResult",
]
