"""Cardinality estimation under the optimiser's simplifying assumptions.

This module implements the estimation behaviour the paper criticises:

* **uniformity** — within a column, values are assumed evenly spread over
  ``[min, max]`` (optionally refined by an equi-width histogram);
* **attribute-value independence (AVI)** — the selectivities of predicates on
  different columns of the same table are multiplied together;
* **join uniformity / containment** — equi-join selectivity is
  ``1 / max(distinct(left), distinct(right))``.

On uniform data (TPC-H) these estimates are reasonable; on skewed or
correlated data (TPC-H Skew, IMDb) they can be off by orders of magnitude,
which is exactly what makes the what-if-driven PDTool mis-recommend indexes.
"""

from __future__ import annotations

from repro.engine.query import Operator, Predicate, Query
from repro.engine.statistics import ColumnStatistics, StatisticsCatalog

#: Selectivity assumed for a predicate on a column with no statistics at all.
DEFAULT_UNKNOWN_SELECTIVITY = 0.1
#: Lower bound: the optimiser never estimates fewer than one row.
MIN_SELECTIVITY = 1e-9


class CardinalityEstimator:
    """Estimates selectivities and cardinalities from summary statistics."""

    def __init__(self, statistics: StatisticsCatalog) -> None:
        self.statistics = statistics

    # ------------------------------------------------------------------ #
    # single predicates
    # ------------------------------------------------------------------ #
    def predicate_selectivity(self, predicate: Predicate) -> float:
        """Estimated selectivity of a single predicate."""
        column = self.statistics.column(predicate.table, predicate.column)
        if column is None:
            return DEFAULT_UNKNOWN_SELECTIVITY
        selectivity = self._selectivity_from_statistics(predicate, column)
        return float(min(1.0, max(MIN_SELECTIVITY, selectivity)))

    def _selectivity_from_statistics(
        self, predicate: Predicate, column: ColumnStatistics
    ) -> float:
        operator = predicate.operator
        if operator is Operator.EQ:
            return column.equality_selectivity()
        if operator is Operator.IN:
            values = predicate.value if isinstance(predicate.value, tuple) else (predicate.value,)
            return len(values) * column.equality_selectivity()
        if operator is Operator.BETWEEN:
            low, high = predicate.value
            return column.range_fraction(low, high)
        if operator in (Operator.LT, Operator.LE):
            return column.range_fraction(None, float(predicate.value))
        if operator in (Operator.GT, Operator.GE):
            return column.range_fraction(float(predicate.value), None)
        return DEFAULT_UNKNOWN_SELECTIVITY

    # ------------------------------------------------------------------ #
    # conjunctions and tables
    # ------------------------------------------------------------------ #
    def conjunctive_selectivity(self, predicates: tuple[Predicate, ...]) -> float:
        """AVI: multiply the per-predicate selectivities."""
        selectivity = 1.0
        for predicate in predicates:
            selectivity *= self.predicate_selectivity(predicate)
        return float(min(1.0, max(MIN_SELECTIVITY, selectivity)))

    def table_selectivity(self, query: Query, table: str) -> float:
        return self.conjunctive_selectivity(query.predicates_for(table))

    def table_cardinality(self, query: Query, table: str) -> float:
        """Estimated rows produced by ``table`` after its filter predicates."""
        row_count = self.statistics.row_count(table)
        return max(1.0, row_count * self.table_selectivity(query, table))

    # ------------------------------------------------------------------ #
    # joins
    # ------------------------------------------------------------------ #
    def distinct_count(self, table: str, column: str) -> float:
        statistics = self.statistics.column(table, column)
        if statistics is None:
            return max(1.0, self.statistics.row_count(table) * DEFAULT_UNKNOWN_SELECTIVITY)
        return max(1.0, float(statistics.distinct_count))

    def join_cardinality(
        self,
        outer_rows: float,
        outer_table: str,
        outer_column: str,
        inner_rows: float,
        inner_table: str,
        inner_column: str,
    ) -> float:
        """Equi-join size estimate: ``|R| * |S| / max(d(R.a), d(S.b))``."""
        outer_distinct = self.distinct_count(outer_table, outer_column)
        inner_distinct = self.distinct_count(inner_table, inner_column)
        return max(1.0, outer_rows * inner_rows / max(outer_distinct, inner_distinct))

    def rows_per_join_key(self, table: str, column: str) -> float:
        """Average rows per distinct join-key value (assumed uniform)."""
        rows = max(1, self.statistics.row_count(table))
        return rows / self.distinct_count(table, column)
