"""The "what-if" hypothetical-index interface.

Commercial physical design tools compare candidate configurations by asking
the optimiser to cost queries *as if* a set of hypothetical indexes existed
(Chaudhuri & Narasayya's AutoAdmin interface).  The estimates never touch the
data, so they inherit every cardinality misestimate of the optimiser — which
is the Achilles' heel the paper exploits.

:class:`WhatIfOptimizer` is consumed by the PDTool baseline and can also be
used to warm-start the bandit (Section VII, "Cold-start problem").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.catalog import Database
from repro.engine.indexes import IndexDefinition
from repro.engine.plans import QueryPlan
from repro.engine.query import Query

from .planner import Planner


@dataclass
class WhatIfResult:
    """Estimated cost of one query under a hypothetical configuration."""

    query_id: str
    estimated_seconds: float
    indexes_used: tuple[str, ...]
    plan_description: str


class WhatIfOptimizer:
    """Estimates query and workload costs under hypothetical configurations."""

    def __init__(self, database: Database) -> None:
        self.database = database
        self.planner = Planner(database)
        #: Number of optimiser calls made; used to model recommendation time.
        self.calls = 0

    # ------------------------------------------------------------------ #
    # single-query estimates
    # ------------------------------------------------------------------ #
    def plan_query(
        self, query: Query, configuration: list[IndexDefinition]
    ) -> QueryPlan:
        """Plan a query as if ``configuration`` were materialised."""
        self.calls += 1
        return self.planner.plan(query, configuration=configuration)

    def estimate_query(
        self, query: Query, configuration: list[IndexDefinition]
    ) -> WhatIfResult:
        plan = self.plan_query(query, configuration)
        return WhatIfResult(
            query_id=query.query_id,
            estimated_seconds=plan.estimated_seconds,
            indexes_used=tuple(index.index_id for index in plan.indexes_used),
            plan_description=plan.describe(),
        )

    # ------------------------------------------------------------------ #
    # workload-level estimates
    # ------------------------------------------------------------------ #
    def estimate_workload(
        self, queries: list[Query], configuration: list[IndexDefinition]
    ) -> float:
        """Total estimated cost of a workload under a hypothetical configuration."""
        return sum(
            self.plan_query(query, configuration).estimated_seconds for query in queries
        )

    def configuration_benefit(
        self,
        queries: list[Query],
        baseline: list[IndexDefinition],
        candidate: list[IndexDefinition],
    ) -> float:
        """Estimated workload-seconds saved by ``candidate`` relative to ``baseline``."""
        baseline_cost = self.estimate_workload(queries, baseline)
        candidate_cost = self.estimate_workload(queries, candidate)
        return baseline_cost - candidate_cost

    def index_benefit(
        self,
        queries: list[Query],
        index: IndexDefinition,
        existing: list[IndexDefinition] | None = None,
    ) -> float:
        """Marginal estimated benefit of adding one index to an existing configuration."""
        existing = list(existing or [])
        return self.configuration_benefit(queries, existing, existing + [index])
