"""The engine's "true" cost model.

All *actual* elapsed times reported by the simulated DBMS come from this
module, evaluated over true cardinalities measured on the materialised data.
The optimiser re-uses the same formulas but feeds them *estimated*
cardinalities (see :mod:`repro.optimizer.cardinality`) — so the gap between
the optimiser's expectation and the observed run time stems purely from
cardinality misestimation, which is precisely the failure mode the paper
studies.

The parameters are calibrated loosely to the paper's testbed (10K RPM disks,
cold buffer cache): a full scan of TPC-H SF 10 ``lineitem`` costs tens of
model-seconds and a 22-query TPC-H round lands in the few-hundred-second
range, matching the order of magnitude of Figure 2(b).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .indexes import IndexDefinition
from .storage import PAGE_SIZE_BYTES, TableData


@dataclass(frozen=True)
class CostModelParameters:
    """Tunable constants of the cost model (all times in seconds)."""

    #: Sequential read throughput, bytes/second (200 MB/s).
    sequential_read_bytes_per_second: float = 200e6
    #: Sequential write throughput used for index build, bytes/second.
    sequential_write_bytes_per_second: float = 150e6
    #: Cost of one random page fetch (partially amortised by read-ahead/cache).
    random_page_read_seconds: float = 2.0e-4
    #: CPU cost of processing one tuple through a scan or filter.
    cpu_tuple_seconds: float = 2.0e-7
    #: CPU cost of one comparison during sorting.
    cpu_sort_compare_seconds: float = 5.0e-8
    #: CPU cost of one hash-table insert/probe.
    cpu_hash_seconds: float = 1.5e-7
    #: Fixed per-query overhead (parsing, planning, result shipping).
    per_query_overhead_seconds: float = 0.05
    #: Fraction of the row-fetch cost avoided when an index is covering.
    covering_cpu_discount: float = 0.5

    def page_read_seconds(self) -> float:
        return PAGE_SIZE_BYTES / self.sequential_read_bytes_per_second

    def page_write_seconds(self) -> float:
        return PAGE_SIZE_BYTES / self.sequential_write_bytes_per_second


def pages_touched_by_random_fetches(rows_fetched: float, table_pages: int) -> float:
    """Expected number of distinct pages touched when fetching ``rows_fetched`` rows.

    Uses the classic Cardenas/Yao approximation ``P * (1 - (1 - 1/P)^k)`` which
    saturates at the table's page count: fetching millions of scattered rows
    can never cost more than touching every page once (cold cache), but small
    fetch counts pay one random I/O per row.
    """
    if table_pages <= 0 or rows_fetched <= 0:
        return 0.0
    if table_pages == 1:
        return 1.0
    exponent = rows_fetched * math.log1p(-1.0 / table_pages)
    return table_pages * (1.0 - math.exp(exponent))


class CostModel:
    """Cost formulas for the physical operators the simulator supports."""

    def __init__(self, parameters: CostModelParameters | None = None):
        self.parameters = parameters or CostModelParameters()

    # ------------------------------------------------------------------ #
    # scans and seeks
    # ------------------------------------------------------------------ #
    def full_scan_seconds(self, data: TableData) -> float:
        """Sequential scan of the whole heap."""
        io = data.pages * self.parameters.page_read_seconds()
        cpu = data.full_row_count * self.parameters.cpu_tuple_seconds
        return io + cpu

    def index_seek_seconds(
        self,
        index: IndexDefinition,
        data: TableData,
        matching_rows: int,
        covering: bool,
    ) -> float:
        """Seek into a B+-tree and fetch ``matching_rows`` rows.

        Covering seeks read only the index leaves; non-covering seeks pay an
        additional random heap lookup per qualifying row (bounded by the
        Cardenas/Yao page-touch approximation).
        """
        matching_rows = max(0, matching_rows)
        traversal = index.depth(data) * self.parameters.random_page_read_seconds
        if matching_rows == 0:
            # A seek that matches nothing pays the root-to-leaf traversal
            # only — there is no leaf page to read and no row to fetch.
            return traversal
        leaf_fraction = matching_rows / max(1, data.full_row_count)
        leaf_pages_read = max(1.0, leaf_fraction * index.leaf_pages(data))
        leaf_io = leaf_pages_read * self.parameters.page_read_seconds()
        cpu = matching_rows * self.parameters.cpu_tuple_seconds
        if covering:
            return traversal + leaf_io + cpu * self.parameters.covering_cpu_discount
        heap_pages = pages_touched_by_random_fetches(matching_rows, data.pages)
        heap_io = heap_pages * self.parameters.random_page_read_seconds
        return traversal + leaf_io + heap_io + cpu

    def index_only_scan_seconds(self, index: IndexDefinition, data: TableData) -> float:
        """Scan every leaf of a covering index (no predicate on the key prefix)."""
        io = index.leaf_pages(data) * self.parameters.page_read_seconds()
        cpu = data.full_row_count * self.parameters.cpu_tuple_seconds * self.parameters.covering_cpu_discount
        return io + cpu

    # ------------------------------------------------------------------ #
    # joins, sorts and aggregation
    # ------------------------------------------------------------------ #
    def sort_seconds(self, rows: int, row_width_bytes: int = 32) -> float:
        rows = max(1, rows)
        compares = rows * max(1.0, math.log2(rows))
        cpu = compares * self.parameters.cpu_sort_compare_seconds
        spill_bytes = rows * row_width_bytes
        # Sorting spills once past ~1 GB of work memory: one write + one read pass.
        work_memory_bytes = 1 << 30
        io = 0.0
        if spill_bytes > work_memory_bytes:
            io = 2 * spill_bytes / self.parameters.sequential_write_bytes_per_second
        return cpu + io

    def hash_join_seconds(self, build_rows: int, probe_rows: int) -> float:
        build = max(0, build_rows) * self.parameters.cpu_hash_seconds * 2
        probe = max(0, probe_rows) * self.parameters.cpu_hash_seconds
        return build + probe

    def index_nested_loop_seconds(
        self,
        outer_rows: int,
        inner_index: IndexDefinition,
        inner_data: TableData,
        rows_per_probe: float,
        covering: bool,
    ) -> float:
        """Probe the inner index once per outer row.

        This is the operator responsible for the paper's Q18/Q5-style
        regressions: if the optimiser underestimates ``outer_rows`` it picks
        this plan and the true cost grows with the real outer cardinality.
        Index pages are buffered across probes, so the I/O component is
        bounded by touching every index (and, for non-covering probes, heap)
        page once; the per-probe CPU cost is unbounded.
        """
        outer_rows = max(0, outer_rows)
        probe_cpu = outer_rows * self.parameters.cpu_hash_seconds * inner_index.depth(inner_data)
        index_pages = inner_index.leaf_pages(inner_data) + inner_index.depth(inner_data)
        index_io = (
            pages_touched_by_random_fetches(outer_rows, index_pages)
            * self.parameters.random_page_read_seconds
        )
        fetched_rows = outer_rows * max(0.0, rows_per_probe)
        cpu = fetched_rows * self.parameters.cpu_tuple_seconds
        if covering:
            return probe_cpu + index_io + cpu * self.parameters.covering_cpu_discount
        heap_pages = pages_touched_by_random_fetches(fetched_rows, inner_data.pages)
        heap_io = heap_pages * self.parameters.random_page_read_seconds
        return probe_cpu + index_io + heap_io + cpu

    def aggregation_seconds(self, rows: int) -> float:
        return max(0, rows) * self.parameters.cpu_hash_seconds

    # ------------------------------------------------------------------ #
    # index maintenance
    # ------------------------------------------------------------------ #
    def index_creation_seconds(self, index: IndexDefinition, data: TableData) -> float:
        """Build cost: scan the heap, sort the entries, write the leaves."""
        scan = self.full_scan_seconds(data)
        sort = self.sort_seconds(data.full_row_count, index.entry_width_bytes(data))
        write = index.leaf_pages(data) * self.parameters.page_write_seconds()
        return scan + sort + write

    def index_drop_seconds(self, index: IndexDefinition, data: TableData) -> float:
        """Dropping is a metadata operation: small constant cost."""
        del index, data
        return 0.1
