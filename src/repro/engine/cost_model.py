"""The engine's "true" cost model.

All *actual* elapsed times reported by the simulated DBMS come from this
module, evaluated over true cardinalities measured on the materialised data.
The optimiser re-uses the same formulas but feeds them *estimated*
cardinalities (see :mod:`repro.optimizer.cardinality`) — so the gap between
the optimiser's expectation and the observed run time stems purely from
cardinality misestimation, which is precisely the failure mode the paper
studies.

Every timing constant lives in a :class:`~repro.engine.backend.BackendProfile`
(see :mod:`repro.engine.backend`).  The default ``hdd`` profile is calibrated
loosely to the paper's testbed (10K RPM disks, cold buffer cache): a full scan
of TPC-H SF 10 ``lineitem`` costs tens of model-seconds and a 22-query TPC-H
round lands in the few-hundred-second range, matching the order of magnitude
of Figure 2(b).  The ``ssd``, ``inmemory`` and ``cloud`` profiles re-time the
same formulas for other storage tiers — and profiles resolve *per table*
(:meth:`CostModel.profile_for`), so one database can keep hot tables in
memory while cold ones stay on disk, with operators spanning tiers charging
each side at its own tier.
"""

from __future__ import annotations

import math
from typing import Mapping

from .backend import BackendLike, BackendProfile, resolve_backend
from .indexes import IndexDefinition
from .storage import TableData

#: Deprecated alias kept for callers of the pre-backend API; the constants it
#: used to carry are now the fields of :class:`BackendProfile` (whose defaults
#: are exactly the old values).
CostModelParameters = BackendProfile


def pages_touched_by_random_fetches(rows_fetched: float, table_pages: int) -> float:
    """Expected number of distinct pages touched when fetching ``rows_fetched`` rows.

    Uses the classic Cardenas/Yao approximation ``P * (1 - (1 - 1/P)^k)`` which
    saturates at the table's page count: fetching millions of scattered rows
    can never cost more than touching every page once (cold cache), but small
    fetch counts pay one random I/O per row.
    """
    if table_pages <= 0 or rows_fetched <= 0:
        return 0.0
    if table_pages == 1:
        return 1.0
    exponent = rows_fetched * math.log1p(-1.0 / table_pages)
    return table_pages * (1.0 - math.exp(exponent))


class CostModel:
    """Cost formulas for the physical operators the simulator supports.

    The formulas are backend-independent; every constant they consume comes
    from a :class:`BackendProfile`, so the same operator tree costs very
    differently on ``hdd``, ``ssd``, ``inmemory`` and ``cloud`` storage.

    Profiles resolve *per table*: ``table_profiles`` maps table names to
    overriding profiles and every operator taking a :class:`TableData` prices
    that table at its own tier (:meth:`profile_for`), so a hot in-memory
    dimension table and a cold on-disk fact table can meet in one join with
    each side billed correctly.  Tables without an override — and operators
    with no table affinity, such as final aggregation and the fixed per-query
    overhead — use the default profile (``parameters``).
    """

    def __init__(
        self,
        parameters: BackendLike = None,
        table_profiles: "Mapping[str, BackendLike] | None" = None,
    ) -> None:
        #: The default backend profile supplying every timing constant for
        #: tables without a per-table override.  The attribute keeps its
        #: historical name (``parameters``); ``profile`` is the modern
        #: accessor.
        self.parameters = resolve_backend(parameters)
        #: Per-table profile overrides (table name -> resolved profile).
        self.table_profiles: dict[str, BackendProfile] = {
            name: resolve_backend(backend)
            for name, backend in (table_profiles or {}).items()
        }

    @property
    def profile(self) -> BackendProfile:
        """The default backend profile this model prices operators with."""
        return self.parameters

    def profile_for(self, data: "TableData | str | None") -> BackendProfile:
        """The effective profile for one table (``None`` -> the default tier).

        Accepts a :class:`TableData` or a bare table name; tables without an
        override resolve to the default profile.
        """
        if data is None or not self.table_profiles:
            return self.parameters
        name = data if isinstance(data, str) else data.table.name
        return self.table_profiles.get(name, self.parameters)

    # ------------------------------------------------------------------ #
    # scans and seeks
    # ------------------------------------------------------------------ #
    def full_scan_seconds(self, data: TableData) -> float:
        """Sequential scan of the whole heap, at the table's own tier."""
        profile = self.profile_for(data)
        io = data.pages * profile.page_read_seconds()
        cpu = data.full_row_count * profile.cpu_tuple_seconds
        return io + cpu

    def index_seek_seconds(
        self,
        index: IndexDefinition,
        data: TableData,
        matching_rows: int,
        covering: bool,
    ) -> float:
        """Seek into a B+-tree and fetch ``matching_rows`` rows.

        Covering seeks read only the index leaves; non-covering seeks pay an
        additional random heap lookup per qualifying row (bounded by the
        Cardenas/Yao page-touch approximation).
        """
        profile = self.profile_for(data)
        matching_rows = max(0, matching_rows)
        traversal = index.depth(data) * profile.random_page_read_seconds
        if matching_rows == 0:
            # A seek that matches nothing pays the root-to-leaf traversal
            # only — there is no leaf page to read and no row to fetch.
            return traversal
        leaf_fraction = matching_rows / max(1, data.full_row_count)
        leaf_pages_read = max(1.0, leaf_fraction * index.leaf_pages(data))
        leaf_io = leaf_pages_read * profile.page_read_seconds()
        cpu = matching_rows * profile.cpu_tuple_seconds
        if covering:
            return traversal + leaf_io + cpu * profile.covering_cpu_discount
        heap_pages = pages_touched_by_random_fetches(matching_rows, data.pages)
        heap_io = heap_pages * profile.random_page_read_seconds
        return traversal + leaf_io + heap_io + cpu

    def index_only_scan_seconds(self, index: IndexDefinition, data: TableData) -> float:
        """Scan every leaf of a covering index (no predicate on the key prefix)."""
        profile = self.profile_for(data)
        io = index.leaf_pages(data) * profile.page_read_seconds()
        cpu = data.full_row_count * profile.cpu_tuple_seconds * profile.covering_cpu_discount
        return io + cpu

    # ------------------------------------------------------------------ #
    # joins, sorts and aggregation
    # ------------------------------------------------------------------ #
    def sort_seconds(
        self,
        rows: int,
        row_width_bytes: int = 32,
        data: TableData | None = None,
    ) -> float:
        """Sort ``rows`` entries, spilling at the tier of ``data``'s table.

        ``data`` names the table whose tier the sort runs on (index builds
        sort that table's entries); ``None`` uses the default profile.
        """
        profile = self.profile_for(data)
        rows = max(1, rows)
        compares = rows * max(1.0, math.log2(rows))
        cpu = compares * profile.cpu_sort_compare_seconds
        spill_bytes = rows * row_width_bytes
        # Sorting spills once past the backend's work memory: one write pass
        # at the write bandwidth plus one read pass at the (distinct) read
        # bandwidth — profiles with asymmetric bandwidths bill each pass at
        # its own rate.  The in-memory profile sets the threshold unreachably
        # high, so it never spills.
        work_memory_bytes = profile.sort_spill_threshold_bytes
        io = 0.0
        if spill_bytes > work_memory_bytes:
            io = (
                spill_bytes / profile.sequential_write_bytes_per_second
                + spill_bytes / profile.sequential_read_bytes_per_second
            )
        return cpu + io

    def hash_join_seconds(
        self,
        build_rows: int,
        probe_rows: int,
        build_data: TableData | None = None,
        probe_data: TableData | None = None,
    ) -> float:
        """Hash join: build on the inner input, probe with the outer stream.

        Each side is billed at its own table's tier (``build_data`` names the
        build input's table, ``probe_data`` the table driving the probe
        stream); ``None`` falls back to the default profile, which reproduces
        the single-tier behaviour exactly.
        """
        build = max(0, build_rows) * self.profile_for(build_data).cpu_hash_seconds * 2
        probe = max(0, probe_rows) * self.profile_for(probe_data).cpu_hash_seconds
        return build + probe

    def index_nested_loop_seconds(
        self,
        outer_rows: int,
        inner_index: IndexDefinition,
        inner_data: TableData,
        rows_per_probe: float,
        covering: bool,
        outer_data: TableData | None = None,
    ) -> float:
        """Probe the inner index once per outer row.

        This is the operator responsible for the paper's Q18/Q5-style
        regressions: if the optimiser underestimates ``outer_rows`` it picks
        this plan and the true cost grows with the real outer cardinality.
        Index pages are buffered across probes, so the I/O component is
        bounded by touching every index (and, for non-covering probes, heap)
        page once; the per-probe CPU cost is unbounded.

        Each side prices at its own tier: the per-probe CPU rides the outer
        stream (``outer_data``; ``None`` -> default profile) while every I/O
        term touches the inner table's storage.
        """
        inner_profile = self.profile_for(inner_data)
        outer_rows = max(0, outer_rows)
        probe_cpu = (
            outer_rows
            * self.profile_for(outer_data).cpu_hash_seconds
            * inner_index.depth(inner_data)
        )
        index_pages = inner_index.leaf_pages(inner_data) + inner_index.depth(inner_data)
        index_io = (
            pages_touched_by_random_fetches(outer_rows, index_pages)
            * inner_profile.random_page_read_seconds
        )
        fetched_rows = outer_rows * max(0.0, rows_per_probe)
        cpu = fetched_rows * inner_profile.cpu_tuple_seconds
        if covering:
            return probe_cpu + index_io + cpu * inner_profile.covering_cpu_discount
        heap_pages = pages_touched_by_random_fetches(fetched_rows, inner_data.pages)
        heap_io = heap_pages * inner_profile.random_page_read_seconds
        return probe_cpu + index_io + heap_io + cpu

    def aggregation_seconds(self, rows: int) -> float:
        return max(0, rows) * self.parameters.cpu_hash_seconds

    # ------------------------------------------------------------------ #
    # index maintenance
    # ------------------------------------------------------------------ #
    def index_creation_seconds(self, index: IndexDefinition, data: TableData) -> float:
        """Build cost: scan the heap, sort the entries, write the leaves.

        Every phase runs at the indexed table's own tier — promoting a table
        to memory makes its index builds cheap, not just its scans.
        """
        profile = self.profile_for(data)
        scan = self.full_scan_seconds(data)
        sort = self.sort_seconds(data.full_row_count, index.entry_width_bytes(data), data)
        write = index.leaf_pages(data) * profile.page_write_seconds()
        return scan + sort + write

    def index_drop_seconds(self, index: IndexDefinition, data: TableData) -> float:
        """Dropping is a metadata operation: small backend-specific constant."""
        del index
        return self.profile_for(data).index_drop_seconds
