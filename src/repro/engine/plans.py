"""Physical plan representation shared by the optimiser and the executor.

The optimiser (:mod:`repro.optimizer.planner`) *chooses* a plan using its own
estimated cardinalities; the executor (:mod:`repro.engine.execution`) then
*times* that same plan using true cardinalities.  Keeping the plan objects in
the engine package lets both layers share them without a circular import.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from .indexes import IndexDefinition
from .query import Query


class AccessMethod(Enum):
    """How a base table is read."""

    FULL_SCAN = "full_scan"
    INDEX_SEEK = "index_seek"
    INDEX_ONLY_SCAN = "index_only_scan"


class JoinMethod(Enum):
    """How an additional table is joined into the running intermediate result."""

    HASH_JOIN = "hash_join"
    INDEX_NESTED_LOOP = "index_nested_loop"


@dataclass
class TableAccessPlan:
    """Access path chosen for one base table of a query."""

    table: str
    method: AccessMethod
    index: IndexDefinition | None = None
    #: Number of leading index key columns restricted by predicates (seeks only).
    seek_prefix_length: int = 0
    #: Whether the chosen index covers every referenced column of the table.
    covering: bool = False
    #: Optimiser's estimate of rows produced by this access (after filters).
    estimated_rows: float = 0.0
    #: Optimiser's estimated cost of the access in model-seconds.
    estimated_seconds: float = 0.0

    @property
    def uses_index(self) -> bool:
        return self.index is not None

    def describe(self) -> str:
        if self.method is AccessMethod.FULL_SCAN:
            return f"FullScan({self.table})"
        index_id = self.index.index_id if self.index else "?"
        covering = ", covering" if self.covering else ""
        return f"{self.method.value}({self.table} via {index_id}{covering})"


@dataclass
class JoinStep:
    """One step of the left-deep join pipeline."""

    inner_table: str
    method: JoinMethod
    #: Index used to probe the inner table for INDEX_NESTED_LOOP joins.
    index: IndexDefinition | None = None
    #: Whether the probe index covers the inner table's referenced columns.
    covering: bool = False
    #: Optimiser's estimates, kept for explain output and regression analysis.
    estimated_outer_rows: float = 0.0
    estimated_result_rows: float = 0.0
    estimated_seconds: float = 0.0

    def describe(self) -> str:
        if self.method is JoinMethod.HASH_JOIN:
            return f"HashJoin(+{self.inner_table})"
        index_id = self.index.index_id if self.index else "?"
        return f"IndexNestedLoop(+{self.inner_table} via {index_id})"


@dataclass
class QueryPlan:
    """A complete left-deep plan for one query."""

    query: Query
    #: Access path per referenced table.
    accesses: dict[str, TableAccessPlan] = field(default_factory=dict)
    #: Join order: first element is the driving table, remaining are join steps.
    driving_table: str = ""
    join_steps: list[JoinStep] = field(default_factory=list)
    #: Optimiser's total estimated cost in model-seconds.
    estimated_seconds: float = 0.0

    @property
    def indexes_used(self) -> list[IndexDefinition]:
        """All distinct indexes referenced anywhere in the plan."""
        seen: dict[str, IndexDefinition] = {}
        for access in self.accesses.values():
            if access.index is not None:
                seen[access.index.index_id] = access.index
        for step in self.join_steps:
            if step.index is not None:
                seen[step.index.index_id] = step.index
        return list(seen.values())

    def access_for(self, table: str) -> TableAccessPlan | None:
        return self.accesses.get(table)

    def describe(self) -> str:
        parts = [self.accesses[self.driving_table].describe()] if self.driving_table else []
        parts.extend(step.describe() for step in self.join_steps)
        extra = [
            access.describe()
            for table, access in self.accesses.items()
            if table != self.driving_table
            and all(step.inner_table != table for step in self.join_steps)
        ]
        parts.extend(extra)
        return " -> ".join(parts) if parts else "(empty plan)"
