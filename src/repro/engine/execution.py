"""Query execution simulator.

The executor times a :class:`~repro.engine.plans.QueryPlan` using *true*
cardinalities measured on the materialised table samples, producing the
"actual elapsed time" observations the bandit learns from.  Because the plan
was chosen by the optimiser using *estimated* cardinalities, a bad estimate
(skew, correlated predicates) produces exactly the regressions the paper
describes: e.g. an index-nested-loop join chosen for a hugely underestimated
outer cardinality blows up at run time.

The executor also records, per table, the access time attributable to each
index used and the full-scan reference time for the same table — the two
quantities the paper's reward definition (Section IV, "Reward shaping") needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .catalog import Database
from .errors import ExecutionError
from .plans import AccessMethod, JoinMethod, QueryPlan, TableAccessPlan
from .query import Query
from .storage import TableData


@dataclass
class TableAccessResult:
    """Observed access statistics for one table of one executed query."""

    table: str
    method: str
    index_id: str | None
    #: Actual time spent producing this table's rows (seconds).
    actual_seconds: float
    #: Reference time of a full scan of the same table (seconds).
    full_scan_seconds: float
    #: True number of rows this table contributed after its filters.
    true_rows: int

    @property
    def index_gain_seconds(self) -> float:
        """Gain attributable to the index used for this access (may be negative)."""
        if self.index_id is None:
            return 0.0
        return self.full_scan_seconds - self.actual_seconds


@dataclass
class ExecutionResult:
    """Everything the system observes about one executed query."""

    query_id: str
    template_id: str
    total_seconds: float
    access_results: list[TableAccessResult] = field(default_factory=list)
    join_seconds: float = 0.0
    plan_description: str = ""
    estimated_seconds: float = 0.0

    @property
    def indexes_used(self) -> set[str]:
        return {
            result.index_id for result in self.access_results if result.index_id is not None
        }

    def access_for(self, table: str) -> TableAccessResult | None:
        for result in self.access_results:
            if result.table == table:
                return result
        return None

    def gain_for_index(self, index_id: str) -> float:
        """Total observed gain for one index across all accesses of this query."""
        return sum(
            result.index_gain_seconds
            for result in self.access_results
            if result.index_id == index_id
        )


class Executor:
    """Times query plans against a :class:`Database` using true cardinalities."""

    def __init__(self, database: Database, noise_sigma: float = 0.03, seed: int = 11) -> None:
        self.database = database
        self.noise_sigma = noise_sigma
        self._rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def execute(self, plan: QueryPlan) -> ExecutionResult:
        """Execute (i.e. time) a plan and return the observed statistics."""
        query = plan.query
        if not query.tables:
            raise ExecutionError(f"query {query.query_id} references no tables")
        cost_model = self.database.cost_model
        access_results: list[TableAccessResult] = []
        per_table_rows: dict[str, int] = {}

        # Base accesses: the driving table plus every hash-joined table.
        inl_tables = {
            step.inner_table
            for step in plan.join_steps
            if step.method is JoinMethod.INDEX_NESTED_LOOP
        }
        for table_name in query.tables:
            data = self.database.table_data(table_name)
            true_rows = data.true_cardinality(query.predicates_for(table_name))
            per_table_rows[table_name] = true_rows
            if table_name in inl_tables:
                continue  # accessed through the join-step index probe instead
            access = plan.access_for(table_name)
            if access is None:
                access = TableAccessPlan(table=table_name, method=AccessMethod.FULL_SCAN)
            seconds = self._time_access(access, data, query, true_rows)
            access_results.append(
                TableAccessResult(
                    table=table_name,
                    method=access.method.value,
                    index_id=access.index.index_id if access.index else None,
                    actual_seconds=seconds,
                    full_scan_seconds=cost_model.full_scan_seconds(data),
                    true_rows=true_rows,
                )
            )

        # Join pipeline.  The probe/outer stream is priced at the tier of the
        # driving table feeding it (intermediate results inherit that tier);
        # each inner side is priced at its own table's tier.
        join_seconds = 0.0
        driving_data = self.database.table_data(plan.driving_table or query.tables[0])
        current_rows = per_table_rows.get(driving_data.table.name, 1)
        for step in plan.join_steps:
            inner_data = self.database.table_data(step.inner_table)
            inner_rows = per_table_rows[step.inner_table]
            if step.method is JoinMethod.HASH_JOIN:
                join_seconds += cost_model.hash_join_seconds(
                    inner_rows,
                    current_rows,
                    build_data=inner_data,
                    probe_data=driving_data,
                )
            else:
                if step.index is None:
                    raise ExecutionError(
                        f"query {query.query_id}: index-nested-loop step on "
                        f"{step.inner_table} has no probe index"
                    )
                rows_per_probe = self._true_rows_per_probe(query, step.inner_table, inner_rows)
                probe_seconds = cost_model.index_nested_loop_seconds(
                    outer_rows=current_rows,
                    inner_index=step.index,
                    inner_data=inner_data,
                    rows_per_probe=rows_per_probe,
                    covering=step.covering,
                    outer_data=driving_data,
                )
                access_results.append(
                    TableAccessResult(
                        table=step.inner_table,
                        method="index_nested_loop_probe",
                        index_id=step.index.index_id,
                        actual_seconds=probe_seconds,
                        full_scan_seconds=cost_model.full_scan_seconds(inner_data),
                        true_rows=inner_rows,
                    )
                )
            current_rows = self._true_join_cardinality(
                query, current_rows, step.inner_table, inner_rows
            )

        aggregation_seconds = cost_model.aggregation_seconds(current_rows)
        base_seconds = sum(result.actual_seconds for result in access_results)
        total = (
            base_seconds
            + join_seconds
            + aggregation_seconds
            + cost_model.parameters.per_query_overhead_seconds
        )
        total *= self._noise_factor()
        return ExecutionResult(
            query_id=query.query_id,
            template_id=query.template_id,
            total_seconds=total,
            access_results=access_results,
            join_seconds=join_seconds,
            plan_description=plan.describe(),
            estimated_seconds=plan.estimated_seconds,
        )

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _noise_factor(self) -> float:
        if self.noise_sigma <= 0:
            return 1.0
        return float(self._rng.lognormal(mean=0.0, sigma=self.noise_sigma))

    def _time_access(
        self,
        access: TableAccessPlan,
        data: TableData,
        query: Query,
        true_rows: int,
    ) -> float:
        cost_model = self.database.cost_model
        if access.method is AccessMethod.FULL_SCAN or access.index is None:
            return cost_model.full_scan_seconds(data)
        if access.method is AccessMethod.INDEX_ONLY_SCAN:
            return cost_model.index_only_scan_seconds(access.index, data)
        # Index seek: matching rows are determined by the predicates on the
        # seekable key prefix only (the remaining predicates are residual
        # filters applied after the fetch).
        prefix_columns = set(access.index.key_prefix(access.seek_prefix_length))
        prefix_predicates = tuple(
            predicate
            for predicate in query.predicates_for(access.table)
            if predicate.column in prefix_columns
        )
        matching_rows = data.true_cardinality(prefix_predicates) if prefix_predicates else data.full_row_count
        matching_rows = max(matching_rows, true_rows)
        return cost_model.index_seek_seconds(
            access.index, data, matching_rows, covering=access.covering
        )

    def _true_rows_per_probe(self, query: Query, inner_table: str, inner_rows: int) -> float:
        """Average inner rows returned per index probe, from true statistics."""
        data = self.database.table_data(inner_table)
        join_columns = query.join_columns_for(inner_table)
        if not join_columns:
            return float(inner_rows)
        distinct = max(1, data.distinct_count(join_columns[0]))
        return max(inner_rows / distinct, inner_rows / max(1, data.full_row_count))

    def _true_join_cardinality(
        self, query: Query, outer_rows: int, inner_table: str, inner_rows: int
    ) -> int:
        """True-side estimate of the join result size.

        Uses the containment assumption with the *true* distinct count of the
        inner join key (from the generator hints), i.e. each outer row matches
        ``inner_rows / distinct(inner key)`` inner rows on average.  Skew and
        correlation still shape the single-table cardinalities feeding into
        this formula; keeping the per-key multiplicity at its true average
        prevents the pathological blow-ups a naive sample-based distinct
        estimate would produce on heavily skewed reference columns.
        """
        data = self.database.table_data(inner_table)
        join_columns = query.join_columns_for(inner_table)
        if not join_columns:
            return max(1, int(outer_rows * inner_rows / max(1, data.full_row_count)))
        column = join_columns[0]
        distinct = max(1, data.distinct_count(column))
        result = outer_rows * inner_rows / distinct
        return max(1, int(result))
