"""Secondary-index definitions, size estimation and creation-cost inputs.

An :class:`IndexDefinition` is a value object (hashable, order-sensitive key
columns plus unordered INCLUDE columns).  It is used both by the bandit's arm
generation ("arms are indices") and by the engine when materialising a
configuration.  Size and creation-cost figures are derived from the table's
storage metadata so that the memory-budget constraint and the creation-time
component of the reward are grounded in the same accounting.
"""

from __future__ import annotations

from dataclasses import dataclass

from .errors import SchemaError
from .query import Query
from .storage import PAGE_SIZE_BYTES, TableData

#: B+-tree space overhead (interior nodes, fill factor).
BTREE_OVERHEAD = 1.35
#: Bytes of row pointer stored with every index entry.
ROW_POINTER_BYTES = 8


@dataclass(frozen=True)
class IndexDefinition:
    """A (possibly covering) secondary B+-tree index.

    Parameters
    ----------
    table:
        Name of the indexed table.
    key_columns:
        Ordered key columns.  Order matters: an index on ``(a, b)`` supports a
        seek on ``a`` or on ``(a, b)`` but not on ``b`` alone.
    include_columns:
        Non-key columns stored in the leaves (SQL Server-style INCLUDE list)
        to make the index covering for a wider set of queries.
    """

    table: str
    key_columns: tuple[str, ...]
    include_columns: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.key_columns:
            raise SchemaError("an index must have at least one key column")
        if len(set(self.key_columns)) != len(self.key_columns):
            raise SchemaError(f"duplicate key columns in index on {self.table!r}")
        overlap = set(self.key_columns) & set(self.include_columns)
        if overlap:
            raise SchemaError(
                f"index on {self.table!r}: columns {sorted(overlap)!r} appear in both "
                "the key and the INCLUDE list"
            )

    # ------------------------------------------------------------------ #
    # identity and structure
    # ------------------------------------------------------------------ #
    @property
    def index_id(self) -> str:
        """Canonical identifier, e.g. ``ix_lineitem_l_shipdate_l_discount(+l_quantity)``."""
        key_part = "_".join(self.key_columns)
        include_part = f"(+{'_'.join(self.include_columns)})" if self.include_columns else ""
        return f"ix_{self.table}_{key_part}{include_part}"

    @property
    def all_columns(self) -> tuple[str, ...]:
        return self.key_columns + self.include_columns

    def leading_column(self) -> str:
        return self.key_columns[0]

    def key_prefix(self, length: int) -> tuple[str, ...]:
        return self.key_columns[:length]

    def is_prefix_of(self, other: "IndexDefinition") -> bool:
        """True if this index's key is a leading prefix of ``other``'s key.

        Used by the oracle's filtering step: once an index on ``(a, b, c)`` is
        selected, an index on ``(a, b)`` adds no additional seek capability.
        """
        if self.table != other.table:
            return False
        if len(self.key_columns) > len(other.key_columns):
            return False
        return other.key_columns[: len(self.key_columns)] == self.key_columns

    def covers_columns(self, columns: tuple[str, ...]) -> bool:
        """True if every referenced column is stored in this index."""
        available = set(self.all_columns)
        return all(column in available for column in columns)

    def covers_query(self, query: Query) -> bool:
        """True if the index alone can answer the query's needs for its table."""
        return self.covers_columns(query.referenced_columns_for(self.table))

    def seekable_prefix_length(self, predicate_columns: set[str]) -> int:
        """Number of leading key columns that are restricted by the given predicates."""
        length = 0
        for column in self.key_columns:
            if column in predicate_columns:
                length += 1
            else:
                break
        return length

    # ------------------------------------------------------------------ #
    # size accounting
    # ------------------------------------------------------------------ #
    def entry_width_bytes(self, data: TableData) -> int:
        """Width of a single leaf entry in bytes."""
        return data.width_of(self.all_columns) + ROW_POINTER_BYTES

    def size_bytes(self, data: TableData) -> int:
        """Estimated on-disk size of the materialised index."""
        return int(self.entry_width_bytes(data) * data.full_row_count * BTREE_OVERHEAD)

    def leaf_pages(self, data: TableData) -> int:
        return max(1, int(self.size_bytes(data) / PAGE_SIZE_BYTES))

    def depth(self, data: TableData) -> int:
        """Approximate B+-tree depth (root-to-leaf page reads for one seek)."""
        entries_per_page = max(2, PAGE_SIZE_BYTES // max(1, self.entry_width_bytes(data)))
        depth = 1
        pages = self.leaf_pages(data)
        while pages > 1:
            pages = max(1, pages // entries_per_page)
            depth += 1
        return min(depth, 6)


def deduplicate(indexes: list[IndexDefinition]) -> list[IndexDefinition]:
    """Remove exact duplicates while preserving order."""
    seen: set[IndexDefinition] = set()
    result: list[IndexDefinition] = []
    for index in indexes:
        if index in seen:
            continue
        seen.add(index)
        result.append(index)
    return result


def remove_prefix_redundant(indexes: list[IndexDefinition]) -> list[IndexDefinition]:
    """Drop indexes whose key is a strict prefix of another index on the same table
    and whose stored columns are a subset of that wider index."""
    result: list[IndexDefinition] = []
    for index in indexes:
        redundant = False
        for other in indexes:
            if other is index or other == index:
                continue
            same_key_wider = (
                index.is_prefix_of(other)
                and len(other.key_columns) >= len(index.key_columns)
                and set(index.all_columns) <= set(other.all_columns)
            )
            if same_key_wider and not (other.is_prefix_of(index) and len(other.key_columns) == len(index.key_columns)):
                redundant = True
                break
        if not redundant:
            result.append(index)
    return result
