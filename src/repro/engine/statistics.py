"""Optimiser-visible summary statistics.

The paper's central critique is that cost-based physical design tools trust
optimiser estimates built on *summary* statistics and simplifying assumptions
(uniform value distribution within ``[min, max]``, attribute-value
independence across columns).  To reproduce the resulting misestimates we keep
two views of the data:

* the *true* view — selectivities measured directly on the materialised
  sample (:class:`repro.engine.storage.TableData`); and
* the *optimiser* view — the per-column summaries in this module, which
  deliberately discard skew and correlation information.

:class:`ColumnStatistics` optionally carries a small equi-width histogram;
even with the histogram enabled the optimiser still multiplies per-column
selectivities (AVI), so correlated predicates remain misestimated, matching
the paper's observation that "even with more complex statistics ... the issue
remains".
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .storage import TableData


@dataclass(frozen=True)
class HistogramBucket:
    """A single equi-width histogram bucket ``[low, high)`` with a row fraction."""

    low: float
    high: float
    fraction: float


@dataclass
class ColumnStatistics:
    """Summary statistics for one column, as the optimiser sees them."""

    table_name: str
    column_name: str
    row_count: int
    distinct_count: int
    min_value: float
    max_value: float
    histogram: tuple[HistogramBucket, ...] = ()

    @property
    def is_unique(self) -> bool:
        return self.distinct_count >= self.row_count

    @property
    def value_span(self) -> float:
        return max(self.max_value - self.min_value, 0.0)

    def equality_selectivity(self) -> float:
        """Estimated selectivity of ``column = constant`` under uniformity."""
        if self.distinct_count <= 0:
            return 1.0
        return 1.0 / self.distinct_count

    def range_fraction(self, low: float | None, high: float | None) -> float:
        """Estimated fraction of rows with value in ``[low, high]``.

        Uses the histogram when available, otherwise interpolates linearly
        over ``[min, max]`` (the uniformity assumption).
        """
        low_bound = self.min_value if low is None else low
        high_bound = self.max_value if high is None else high
        if high_bound < low_bound:
            return 0.0
        if self.histogram:
            fraction = 0.0
            for bucket in self.histogram:
                overlap_low = max(bucket.low, low_bound)
                overlap_high = min(bucket.high, high_bound)
                if overlap_high <= overlap_low:
                    continue
                bucket_span = max(bucket.high - bucket.low, 1e-12)
                fraction += bucket.fraction * (overlap_high - overlap_low) / bucket_span
            return min(1.0, max(0.0, fraction))
        span = self.value_span
        if span <= 0:
            return 1.0
        overlap = min(high_bound, self.max_value) - max(low_bound, self.min_value)
        if overlap < 0:
            return 0.0
        return min(1.0, overlap / span)


@dataclass
class TableStatistics:
    """All optimiser statistics for one table."""

    table_name: str
    row_count: int
    columns: dict[str, ColumnStatistics] = field(default_factory=dict)

    def column(self, column_name: str) -> ColumnStatistics | None:
        return self.columns.get(column_name)


class StatisticsCatalog:
    """Per-table optimiser statistics for the whole database."""

    def __init__(self) -> None:
        self._tables: dict[str, TableStatistics] = {}

    def add(self, statistics: TableStatistics) -> None:
        self._tables[statistics.table_name] = statistics

    def table(self, table_name: str) -> TableStatistics | None:
        return self._tables.get(table_name)

    def column(self, table_name: str, column_name: str) -> ColumnStatistics | None:
        table_statistics = self._tables.get(table_name)
        if table_statistics is None:
            return None
        return table_statistics.column(column_name)

    def row_count(self, table_name: str) -> int:
        table_statistics = self._tables.get(table_name)
        return 0 if table_statistics is None else table_statistics.row_count

    @property
    def table_names(self) -> list[str]:
        return sorted(self._tables)


def build_column_statistics(
    data: TableData, column_name: str, histogram_buckets: int = 0
) -> ColumnStatistics:
    """Build optimiser statistics for one column from the materialised sample.

    The distinct count and min/max come from the sample (scaled for unique
    columns), mirroring how real systems build statistics from row samples.
    When ``histogram_buckets`` > 0 an equi-width histogram is attached.
    """
    values = data.column_array(column_name)
    distinct = data.distinct_count(column_name)
    min_value, max_value = data.value_range(column_name)
    histogram: tuple[HistogramBucket, ...] = ()
    if histogram_buckets > 0 and max_value > min_value:
        edges = np.linspace(min_value, max_value, histogram_buckets + 1)
        counts, _ = np.histogram(values, bins=edges)
        total = max(1, counts.sum())
        histogram = tuple(
            HistogramBucket(low=float(edges[i]), high=float(edges[i + 1]), fraction=float(counts[i]) / total)
            for i in range(histogram_buckets)
        )
    return ColumnStatistics(
        table_name=data.name,
        column_name=column_name,
        row_count=data.full_row_count,
        distinct_count=distinct,
        min_value=min_value,
        max_value=max_value,
        histogram=histogram,
    )


def build_table_statistics(data: TableData, histogram_buckets: int = 0) -> TableStatistics:
    """Build optimiser statistics for every column of a table."""
    statistics = TableStatistics(table_name=data.name, row_count=data.full_row_count)
    for column in data.table.columns:
        if not data.has_column_data(column.name):
            continue
        statistics.columns[column.name] = build_column_statistics(
            data, column.name, histogram_buckets=histogram_buckets
        )
    return statistics
