"""Logical query model processed by the simulated DBMS.

Queries are structured objects rather than SQL text: a set of referenced
tables, per-table filter predicates, join predicates, and a per-table payload
(the columns that must be returned/aggregated).  This is exactly the
information the paper's arm generation consumes ("combinations and
permutations of query predicates ... with and without inclusion of payload
attributes"), and it is sufficient for plan selection and cost simulation.

A light SQL-ish rendering is provided for logging and examples.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Iterable


class Operator(Enum):
    """Filter predicate comparison operators."""

    EQ = "="
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    BETWEEN = "between"
    IN = "in"

    @property
    def is_range(self) -> bool:
        return self in (Operator.LT, Operator.LE, Operator.GT, Operator.GE, Operator.BETWEEN)


@dataclass(frozen=True)
class Predicate:
    """A filter predicate ``table.column <op> value`` (or value range / list)."""

    table: str
    column: str
    operator: Operator
    value: float | int | tuple = 0

    def __post_init__(self) -> None:
        if self.operator is Operator.BETWEEN and (
            not isinstance(self.value, tuple) or len(self.value) != 2
        ):
            raise ValueError("BETWEEN predicate requires a (low, high) tuple value")
        if self.operator is Operator.IN and not isinstance(self.value, tuple):
            raise ValueError("IN predicate requires a tuple of values")

    def render(self) -> str:
        if self.operator is Operator.BETWEEN:
            low, high = self.value
            return f"{self.table}.{self.column} BETWEEN {low} AND {high}"
        if self.operator is Operator.IN:
            values = ", ".join(str(v) for v in self.value)
            return f"{self.table}.{self.column} IN ({values})"
        return f"{self.table}.{self.column} {self.operator.value} {self.value}"


@dataclass(frozen=True)
class JoinPredicate:
    """An equi-join predicate ``left_table.left_column = right_table.right_column``."""

    left_table: str
    left_column: str
    right_table: str
    right_column: str

    def render(self) -> str:
        return (
            f"{self.left_table}.{self.left_column} = "
            f"{self.right_table}.{self.right_column}"
        )

    def involves(self, table: str) -> bool:
        return table in (self.left_table, self.right_table)

    def column_for(self, table: str) -> str | None:
        if table == self.left_table:
            return self.left_column
        if table == self.right_table:
            return self.right_column
        return None


@dataclass
class Query:
    """A single analytical query.

    Parameters
    ----------
    query_id:
        Unique identifier of this query *instance*.
    template_id:
        Identifier of the template family the instance was drawn from; the
        query store aggregates statistics per template.
    tables:
        Tables referenced by the query.
    predicates:
        Filter predicates (conjunctive).
    joins:
        Equi-join predicates between referenced tables.
    payload:
        Mapping of table -> columns that must be produced for that table
        (select list, aggregation inputs, group-by columns).
    """

    query_id: str
    template_id: str
    tables: tuple[str, ...]
    predicates: tuple[Predicate, ...] = ()
    joins: tuple[JoinPredicate, ...] = ()
    payload: dict[str, tuple[str, ...]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        table_set = set(self.tables)
        for predicate in self.predicates:
            if predicate.table not in table_set:
                raise ValueError(
                    f"query {self.query_id}: predicate on {predicate.table!r} "
                    "references a table not in the FROM list"
                )
        for join in self.joins:
            if join.left_table not in table_set or join.right_table not in table_set:
                raise ValueError(
                    f"query {self.query_id}: join {join.render()} references a table "
                    "not in the FROM list"
                )
        for table_name in self.payload:
            if table_name not in table_set:
                raise ValueError(
                    f"query {self.query_id}: payload table {table_name!r} "
                    "is not in the FROM list"
                )

    def predicates_for(self, table: str) -> tuple[Predicate, ...]:
        """Filter predicates that apply to ``table``."""
        return tuple(p for p in self.predicates if p.table == table)

    def join_columns_for(self, table: str) -> tuple[str, ...]:
        """Columns of ``table`` used in join predicates, in query order."""
        columns: list[str] = []
        for join in self.joins:
            column = join.column_for(table)
            if column is not None and column not in columns:
                columns.append(column)
        return tuple(columns)

    def predicate_columns_for(self, table: str) -> tuple[str, ...]:
        """Filter-predicate columns of ``table``, de-duplicated, in query order."""
        columns: list[str] = []
        for predicate in self.predicates_for(table):
            if predicate.column not in columns:
                columns.append(predicate.column)
        return tuple(columns)

    def payload_columns_for(self, table: str) -> tuple[str, ...]:
        return tuple(self.payload.get(table, ()))

    def referenced_columns_for(self, table: str) -> tuple[str, ...]:
        """All columns of ``table`` the query touches (predicates, joins, payload)."""
        columns: list[str] = []
        for group in (
            self.predicate_columns_for(table),
            self.join_columns_for(table),
            self.payload_columns_for(table),
        ):
            for column in group:
                if column not in columns:
                    columns.append(column)
        return tuple(columns)

    def render(self) -> str:
        """Render an SQL-ish string for logging and examples."""
        select_parts: list[str] = []
        for table_name in self.tables:
            for column in self.payload_columns_for(table_name):
                select_parts.append(f"{table_name}.{column}")
        select_clause = ", ".join(select_parts) if select_parts else "COUNT(*)"
        from_clause = ", ".join(self.tables)
        where_parts = [join.render() for join in self.joins]
        where_parts.extend(predicate.render() for predicate in self.predicates)
        sql = f"SELECT {select_clause} FROM {from_clause}"
        if where_parts:
            sql += " WHERE " + " AND ".join(where_parts)
        return sql


def merge_queries(queries: Iterable[Query]) -> list[Query]:
    """Return the queries as a list, de-duplicating identical query ids."""
    seen: set[str] = set()
    result: list[Query] = []
    for query in queries:
        if query.query_id in seen:
            continue
        seen.add(query.query_id)
        result.append(query)
    return result
