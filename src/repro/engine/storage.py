"""Materialised table storage for the simulated DBMS.

A :class:`TableData` holds a *sample* of a table's rows as numpy column
arrays, together with the full (logical) row count.  Selectivities of
predicates are always measured on the sample — which therefore reflects real
skew and inter-column correlation — while row counts, page counts and byte
sizes are scaled to the full table via ``scale_multiplier``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from .errors import SchemaError, UnknownColumnError
from .query import Operator, Predicate
from .schema import Table

#: Logical page size used for all page-count accounting (bytes).
PAGE_SIZE_BYTES = 8192


def evaluate_predicate(values: np.ndarray, predicate: Predicate) -> np.ndarray:
    """Return a boolean mask of sample rows satisfying ``predicate``."""
    operator = predicate.operator
    if operator is Operator.EQ:
        return values == predicate.value
    if operator is Operator.LT:
        return values < predicate.value
    if operator is Operator.LE:
        return values <= predicate.value
    if operator is Operator.GT:
        return values > predicate.value
    if operator is Operator.GE:
        return values >= predicate.value
    if operator is Operator.BETWEEN:
        low, high = predicate.value
        return (values >= low) & (values <= high)
    if operator is Operator.IN:
        return np.isin(values, np.asarray(predicate.value))
    raise ValueError(f"unsupported operator: {operator}")


@dataclass
class TableData:
    """A table's materialised sample plus scale metadata.

    Parameters
    ----------
    table:
        Schema definition of the table.
    columns:
        Mapping column name -> numpy array of sample values.  All arrays must
        have the same length.
    full_row_count:
        Logical number of rows in the full-size table (e.g. 59,986,052 for
        TPC-H ``lineitem`` at SF 10).
    distinct_hints:
        Optional per-column distinct-value counts of the *full* table, as
        reported by the data generators.  Estimating the distinct count of a
        high-cardinality column from a small sample is notoriously unreliable
        (a skewed sample wildly under-counts), so when a hint is available it
        takes precedence.
    """

    table: Table
    columns: dict[str, np.ndarray]
    full_row_count: int
    distinct_hints: dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.full_row_count <= 0:
            raise SchemaError(f"table {self.table.name!r}: full_row_count must be positive")
        lengths = {len(array) for array in self.columns.values()}
        if not self.columns:
            raise SchemaError(f"table {self.table.name!r}: no column data supplied")
        if len(lengths) != 1:
            raise SchemaError(
                f"table {self.table.name!r}: column sample arrays have differing lengths"
            )
        for column_name in self.columns:
            if not self.table.has_column(column_name):
                raise UnknownColumnError(self.table.name, column_name)
        self._sample_rows = lengths.pop()
        if self._sample_rows == 0:
            raise SchemaError(f"table {self.table.name!r}: sample must be non-empty")
        if self.full_row_count < self._sample_rows:
            # A sample can never be larger than the table it represents.
            self.full_row_count = self._sample_rows

    # ------------------------------------------------------------------ #
    # basic accessors
    # ------------------------------------------------------------------ #
    @property
    def name(self) -> str:
        return self.table.name

    @property
    def sample_rows(self) -> int:
        return self._sample_rows

    @property
    def scale_multiplier(self) -> float:
        """Full rows represented by each sample row."""
        return self.full_row_count / self._sample_rows

    def column_array(self, column_name: str) -> np.ndarray:
        try:
            return self.columns[column_name]
        except KeyError:
            raise UnknownColumnError(self.table.name, column_name) from None

    def has_column_data(self, column_name: str) -> bool:
        return column_name in self.columns

    # ------------------------------------------------------------------ #
    # size accounting
    # ------------------------------------------------------------------ #
    @property
    def row_width_bytes(self) -> int:
        return self.table.row_width_bytes

    @property
    def total_bytes(self) -> int:
        return self.full_row_count * self.row_width_bytes

    @property
    def pages(self) -> int:
        """Number of heap pages occupied by the full table."""
        return max(1, int(np.ceil(self.total_bytes / PAGE_SIZE_BYTES)))

    def width_of(self, column_names: tuple[str, ...] | list[str]) -> int:
        """Total byte width of the named columns."""
        return sum(self.table.column(name).width for name in column_names)

    # ------------------------------------------------------------------ #
    # true statistics measured on the sample
    # ------------------------------------------------------------------ #
    def selection_mask(self, predicates: tuple[Predicate, ...]) -> np.ndarray:
        """Boolean mask of sample rows satisfying the conjunction of ``predicates``."""
        mask = np.ones(self._sample_rows, dtype=bool)
        for predicate in predicates:
            if predicate.table != self.table.name:
                continue
            values = self.column_array(predicate.column)
            mask &= evaluate_predicate(values, predicate)
        return mask

    def true_selectivity(self, predicates: tuple[Predicate, ...]) -> float:
        """True combined selectivity of conjunctive predicates, measured on the sample.

        A minimum selectivity of half a sample row is used so that empty
        sample matches still map to a small positive row estimate (the full
        table may contain a handful of matching rows the sample missed).
        """
        relevant = tuple(p for p in predicates if p.table == self.table.name)
        if not relevant:
            return 1.0
        matched = int(self.selection_mask(relevant).sum())
        floor = 0.5 / self._sample_rows
        return max(floor, matched / self._sample_rows)

    def true_cardinality(self, predicates: tuple[Predicate, ...]) -> int:
        """Estimated number of full-table rows satisfying the predicates."""
        return max(1, int(round(self.true_selectivity(predicates) * self.full_row_count)))

    def distinct_count(self, column_name: str) -> int:
        """Distinct values of a column in the full table.

        Prefers the generator-provided hint (exact for synthetic data); when no
        hint exists, falls back to the sample distinct count, scaled
        conservatively: if the sample looks unique we assume the full column
        is unique.
        """
        hint = self.distinct_hints.get(column_name)
        if hint is not None:
            return max(1, min(int(hint), self.full_row_count))
        values = self.column_array(column_name)
        sample_distinct = int(len(np.unique(values)))
        if sample_distinct >= 0.95 * self._sample_rows:
            return self.full_row_count
        return sample_distinct

    def value_range(self, column_name: str) -> tuple[float, float]:
        values = self.column_array(column_name)
        return float(values.min()), float(values.max())

    def summary(self) -> dict[str, object]:
        """A small serialisable summary used in reports and examples."""
        return {
            "table": self.table.name,
            "full_row_count": self.full_row_count,
            "sample_rows": self.sample_rows,
            "row_width_bytes": self.row_width_bytes,
            "total_mb": round(self.total_bytes / (1024 * 1024), 2),
            "pages": self.pages,
        }


def build_table_data(
    table: Table,
    sample: Mapping[str, np.ndarray],
    full_row_count: int,
    distinct_hints: Mapping[str, int] | None = None,
) -> TableData:
    """Convenience constructor validating that every schema column has data."""
    missing = [column.name for column in table.columns if column.name not in sample]
    if missing:
        raise SchemaError(
            f"table {table.name!r}: no generated data for columns {missing!r}"
        )
    return TableData(
        table=table,
        columns=dict(sample),
        full_row_count=full_row_count,
        distinct_hints=dict(distinct_hints or {}),
    )
