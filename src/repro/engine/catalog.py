"""The database catalog: tables, materialised indexes and the memory budget.

:class:`Database` is the single mutable object of the engine layer.  It owns
the materialised table samples, the optimiser statistics and the set of
currently materialised secondary indexes, and it enforces the index memory
budget the paper grants to both tuners (1x the data size by default).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

import numpy as np

from .backend import (
    BackendLike,
    BackendProfile,
    PlacementLike,
    TieredBackend,
    UnknownPlacementTableError,
    resolve_backend,
    resolve_placement,
)
from .cost_model import CostModel, CostModelParameters
from .datagen import TableSpec
from .errors import (
    DuplicateIndexError,
    MemoryBudgetExceededError,
    UnknownIndexError,
    UnknownTableError,
)
from .indexes import IndexDefinition
from .schema import Schema
from .statistics import StatisticsCatalog, build_table_statistics
from .storage import TableData, build_table_data


@dataclass
class ConfigurationChange:
    """Result of transitioning the materialised configuration."""

    created: list[IndexDefinition] = field(default_factory=list)
    dropped: list[IndexDefinition] = field(default_factory=list)
    #: Per-index creation times (model-seconds), keyed by ``index_id``; needed
    #: by the bandit's reward shaping, which charges creation to the arm.
    creation_seconds_by_index: dict[str, float] = field(default_factory=dict)
    creation_seconds: float = 0.0
    drop_seconds: float = 0.0

    @property
    def total_seconds(self) -> float:
        return self.creation_seconds + self.drop_seconds


class Database:
    """A simulated analytical DBMS instance.

    Parameters
    ----------
    schema:
        Logical schema of the benchmark.
    tables:
        Mapping of table name to :class:`TableData`.
    memory_budget_bytes:
        Space allowance for secondary indexes.  ``None`` means unconstrained.
    cost_model:
        The engine's true cost model; shared with the executor.
    histogram_buckets:
        Number of equi-width histogram buckets for optimiser statistics
        (0 reproduces plain uniformity assumptions).
    backend:
        Storage-backend profile (a registered name such as ``"hdd"``,
        ``"ssd"``, ``"inmemory"``, ``"cloud"`` or a :class:`BackendProfile`
        instance) the cost model prices operators with.  Mutually exclusive
        with an explicit ``cost_model``; ``None`` keeps the default ``hdd``
        tier.
    table_backends:
        Per-table placement: a ``{table: backend}`` mapping of overrides on
        top of ``backend``'s default tier, or a declarative
        :class:`~repro.engine.TieredBackend` hot/cold split (which names both
        tiers itself and is therefore mutually exclusive with ``backend``).
        Unknown table names raise
        :class:`~repro.engine.UnknownPlacementTableError`.
    """

    def __init__(
        self,
        schema: Schema,
        tables: Mapping[str, TableData],
        memory_budget_bytes: int | None = None,
        cost_model: CostModel | None = None,
        histogram_buckets: int = 0,
        backend: BackendLike = None,
        table_backends: PlacementLike = None,
    ) -> None:
        self.schema = schema
        self._tables: dict[str, TableData] = dict(tables)
        for table_name in schema.table_names:
            if table_name not in self._tables:
                raise UnknownTableError(table_name)
        self.memory_budget_bytes = memory_budget_bytes
        if cost_model is not None and (backend is not None or table_backends is not None):
            raise ValueError(
                "pass either cost_model or backend/table_backends, not both"
            )
        if cost_model is None:
            default, overrides = self._resolve_placement_spec(backend, table_backends)
            cost_model = CostModel(default, overrides)
        self.cost_model = cost_model
        self._indexes: dict[str, IndexDefinition] = {}
        self._index_sizes: dict[str, int] = {}
        self._histogram_buckets = histogram_buckets
        #: Size estimates for hypothetical (not materialised) indexes.  Sizes
        #: derive from table statistics, so the cache lives until the next
        #: :meth:`refresh_statistics`; the tuner asks for the same candidate
        #: sizes every round, which made this the hottest engine call.
        self._hypothetical_sizes: dict[str, int] = {}
        self._data_size_bytes: int | None = None
        self._statistics = StatisticsCatalog()
        for data in self._tables.values():
            self._statistics.add(build_table_statistics(data, histogram_buckets=histogram_buckets))

    def _resolve_placement_spec(
        self, backend: BackendLike, table_backends: PlacementLike
    ) -> tuple[BackendProfile, dict[str, BackendProfile]]:
        """Resolve ``(backend, table_backends)`` into ``(default, overrides)``."""
        if isinstance(table_backends, TieredBackend):
            if backend is not None:
                raise ValueError(
                    "a TieredBackend names both tiers itself; "
                    "pass either backend or a TieredBackend, not both"
                )
            return table_backends.placement(self._tables)
        return (
            resolve_backend(backend),
            resolve_placement(table_backends, self._tables),
        )

    # ------------------------------------------------------------------ #
    # construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def from_specs(
        cls,
        schema: Schema,
        table_specs: Iterable[TableSpec],
        sample_rows: int = 20_000,
        seed: int = 7,
        memory_budget_bytes: int | None = None,
        cost_model_parameters: CostModelParameters | None = None,
        histogram_buckets: int = 0,
        backend: BackendLike = None,
        table_backends: PlacementLike = None,
    ) -> "Database":
        """Generate table samples from specs and assemble a database.

        ``backend`` selects the default storage tier the cost model prices
        operators with and ``table_backends`` places individual tables on
        their own tiers (see :mod:`repro.engine.backend`);
        ``cost_model_parameters`` is the older spelling accepting a raw
        profile, mutually exclusive with ``backend``.
        """
        if backend is not None and cost_model_parameters is not None:
            raise ValueError("pass either cost_model_parameters or backend, not both")
        if cost_model_parameters is not None:
            backend = cost_model_parameters
        rng = np.random.default_rng(seed)
        tables: dict[str, TableData] = {}
        for spec in table_specs:
            table = schema.table(spec.table_name)
            sample = spec.generate_sample(sample_rows, rng)
            distinct_hints = {
                column_name: generator.approximate_distinct
                for column_name, generator in spec.generators.items()
                if generator.approximate_distinct is not None
            }
            tables[spec.table_name] = build_table_data(
                table, sample, spec.row_count, distinct_hints=distinct_hints
            )
        return cls(
            schema=schema,
            tables=tables,
            memory_budget_bytes=memory_budget_bytes,
            histogram_buckets=histogram_buckets,
            backend=backend,
            table_backends=table_backends,
        )

    def tenant_view(self) -> "Database":
        """A lightweight per-tenant clone sharing this database's statistics.

        The view shares every structure that is immutable or an
        idempotent-by-value cache — the table samples, the statistics
        catalog, the hypothetical-index size cache and the data-size total —
        so a fleet of identical tenants pays for statistics once.  It gets
        its own index catalog and its own :class:`CostModel` instance, so
        tenants materialise different configurations (and retune placements)
        without touching each other.  :meth:`refresh_statistics` on a view
        rebuilds private copies, detaching it from its siblings.
        """
        view = object.__new__(type(self))
        view.schema = self.schema
        view._tables = self._tables
        view.memory_budget_bytes = self.memory_budget_bytes
        view.cost_model = CostModel(
            self.cost_model.parameters, self.cost_model.table_profiles
        )
        view._indexes = {}
        view._index_sizes = {}
        view._histogram_buckets = self._histogram_buckets
        view._hypothetical_sizes = self._hypothetical_sizes
        view._data_size_bytes = self._data_size_bytes
        view._statistics = self._statistics
        return view

    # ------------------------------------------------------------------ #
    # tables and statistics
    # ------------------------------------------------------------------ #
    def table_data(self, table_name: str) -> TableData:
        try:
            return self._tables[table_name]
        except KeyError:
            raise UnknownTableError(table_name) from None

    @property
    def table_names(self) -> list[str]:
        return sorted(self._tables)

    @property
    def statistics(self) -> StatisticsCatalog:
        return self._statistics

    @property
    def backend_profile(self) -> BackendProfile:
        """The *default* storage-backend profile (tables without an override)."""
        return self.cost_model.profile

    @property
    def table_backends(self) -> dict[str, BackendProfile]:
        """Per-table overrides in effect (tables on the default tier omitted)."""
        return dict(self.cost_model.table_profiles)

    def backend_profile_for(self, table_name: str) -> BackendProfile:
        """The effective profile one table is priced at (override or default)."""
        self.table_data(table_name)  # validates the name
        return self.cost_model.profile_for(table_name)

    def set_backend(self, backend: BackendLike) -> BackendProfile:
        """Re-time the *whole* database for a uniform storage backend.

        Swaps the cost model for one built on ``backend`` (a registered name
        or a :class:`BackendProfile`) and **clears any per-table placement**
        — after ``set_backend`` every table prices at the one named tier, so
        ``set_backend("ssd")`` followed by ``set_backend("hdd")`` restores a
        fresh-``hdd`` database exactly.

        Nothing else needs invalidating: every cached quantity derived from
        the data — the total data size, materialised *and* hypothetical index
        sizes, the statistics catalog and the tuners' size-ratio context
        features built from them — is a byte quantity independent of the
        storage tier.  Only the seconds the cost model reports change, and
        those are recomputed from the new profile on every call.

        Returns:
            The resolved profile now in effect.

        Raises:
            repro.engine.UnknownBackendError: For an unregistered name.
        """
        profile = resolve_backend(backend)
        self.cost_model = CostModel(profile)
        return profile

    def set_table_backend(self, table_name: str, backend: BackendLike) -> BackendProfile:
        """Place one table on its own storage tier (the default tier stays).

        Takes effect immediately — a live session's very next plan and
        execution price the table at its new tier, which is what makes
        mid-run :meth:`promote`/:meth:`demote` a benchmarkable workload
        shift.

        Returns:
            The resolved profile the table is now priced at.

        Raises:
            repro.engine.UnknownPlacementTableError: For a table the database
                does not have (the message lists every table).
            repro.engine.UnknownBackendError: For an unregistered name.
        """
        if table_name not in self._tables:
            raise UnknownPlacementTableError(table_name, self._tables)
        profile = resolve_backend(backend)
        overrides = dict(self.cost_model.table_profiles)
        overrides[table_name] = profile
        self.cost_model = CostModel(self.cost_model.parameters, overrides)
        return profile

    def set_table_backends(self, table_backends: PlacementLike) -> dict[str, BackendProfile]:
        """Replace the entire per-table placement.

        A ``{table: backend}`` mapping replaces the overrides (keeping the
        current default tier); a :class:`~repro.engine.TieredBackend` replaces
        the default tier *and* the overrides with its cold/hot split.

        Returns:
            The per-table overrides now in effect.
        """
        if isinstance(table_backends, TieredBackend):
            default, overrides = table_backends.placement(self._tables)
        else:
            default = self.cost_model.parameters
            overrides = resolve_placement(table_backends, self._tables)
        self.cost_model = CostModel(default, overrides)
        return dict(overrides)

    def promote(self, table_name: str, backend: BackendLike = "inmemory") -> BackendProfile:
        """Move a table up to a faster tier mid-run (default: into memory)."""
        return self.set_table_backend(table_name, backend)

    def demote(self, table_name: str, backend: BackendLike = None) -> BackendProfile:
        """Move a table back down; ``None`` returns it to the default tier."""
        if backend is not None:
            return self.set_table_backend(table_name, backend)
        if table_name not in self._tables:
            raise UnknownPlacementTableError(table_name, self._tables)
        overrides = dict(self.cost_model.table_profiles)
        overrides.pop(table_name, None)
        self.cost_model = CostModel(self.cost_model.parameters, overrides)
        return self.cost_model.parameters

    @property
    def data_size_bytes(self) -> int:
        """Total heap size of all tables (the paper's '1x' budget reference)."""
        if self._data_size_bytes is None:
            self._data_size_bytes = sum(data.total_bytes for data in self._tables.values())
        return self._data_size_bytes

    def refresh_statistics(self, histogram_buckets: int | None = None) -> None:
        """Rebuild optimiser statistics from the current table data.

        Invalidates every derived cache (hypothetical index sizes, the total
        data size) so callers holding cached estimates observe the new world.
        """
        if histogram_buckets is not None:
            self._histogram_buckets = histogram_buckets
        self._statistics = StatisticsCatalog()
        for data in self._tables.values():
            self._statistics.add(
                build_table_statistics(data, histogram_buckets=self._histogram_buckets)
            )
        # Reassign (rather than .clear()) so a refreshed tenant_view detaches
        # from the cache it shared with its siblings instead of emptying it
        # under them.
        self._hypothetical_sizes = {}
        self._data_size_bytes = None

    def grow_table(self, table_name: str, row_multiplier: float) -> TableData:
        """Scale a table's logical row count mid-run and refresh statistics.

        Models data ingest: the sample (and therefore the value distributions
        templates draw literals from) stays fixed while the full-size row
        count — what every scan, join and index build is priced on — grows by
        ``row_multiplier``.  Statistics are rebuilt immediately, so the very
        next plan, index-size estimate and context feature sees the new
        volume; this is what makes schema/data growth a workload-visible
        stressor (:mod:`repro.workloads.stress`).

        The table mapping is reassigned, not mutated, so a
        :meth:`tenant_view` that grows a table detaches from the snapshot it
        shared with its siblings instead of growing it under them.

        Returns:
            The table's new :class:`TableData`.

        Raises:
            UnknownTableError: If the database has no such table.
            ValueError: If ``row_multiplier`` is not positive.
        """
        if row_multiplier <= 0:
            raise ValueError("row_multiplier must be positive")
        data = self.table_data(table_name)
        grown = TableData(
            table=data.table,
            columns=data.columns,
            full_row_count=max(int(data.full_row_count * row_multiplier), 1),
            distinct_hints=dict(data.distinct_hints),
        )
        self._tables = {**self._tables, table_name: grown}
        self.refresh_statistics()
        return grown

    # ------------------------------------------------------------------ #
    # index catalogue
    # ------------------------------------------------------------------ #
    @property
    def materialised_indexes(self) -> list[IndexDefinition]:
        return list(self._indexes.values())

    @property
    def materialised_index_ids(self) -> set[str]:
        return set(self._indexes)

    def has_index(self, index: IndexDefinition) -> bool:
        return index.index_id in self._indexes

    def indexes_for_table(self, table_name: str) -> list[IndexDefinition]:
        return [ix for ix in self._indexes.values() if ix.table == table_name]

    def index_size_bytes(self, index: IndexDefinition) -> int:
        """Size of an index (materialised or hypothetical, cached)."""
        if index.index_id in self._index_sizes:
            return self._index_sizes[index.index_id]
        size = self._hypothetical_sizes.get(index.index_id)
        if size is None:
            size = index.size_bytes(self.table_data(index.table))
            self._hypothetical_sizes[index.index_id] = size
        return size

    @property
    def used_index_bytes(self) -> int:
        return sum(self._index_sizes.values())

    @property
    def available_index_bytes(self) -> int | None:
        if self.memory_budget_bytes is None:
            return None
        return self.memory_budget_bytes - self.used_index_bytes

    def fits_in_budget(self, indexes: Iterable[IndexDefinition]) -> bool:
        """Whether materialising the given (additional) indexes stays within budget."""
        if self.memory_budget_bytes is None:
            return True
        additional = sum(
            self.index_size_bytes(index)
            for index in indexes
            if index.index_id not in self._indexes
        )
        return self.used_index_bytes + additional <= self.memory_budget_bytes

    # ------------------------------------------------------------------ #
    # DDL operations
    # ------------------------------------------------------------------ #
    def create_index(self, index: IndexDefinition) -> float:
        """Materialise an index, returning its creation time in model-seconds."""
        if index.index_id in self._indexes:
            raise DuplicateIndexError(f"index already materialised: {index.index_id}")
        data = self.table_data(index.table)
        self.schema.validate_columns(index.table, index.all_columns)
        size = index.size_bytes(data)
        available = self.available_index_bytes
        if available is not None and size > available:
            raise MemoryBudgetExceededError(size, available)
        self._indexes[index.index_id] = index
        self._index_sizes[index.index_id] = size
        return self.cost_model.index_creation_seconds(index, data)

    def drop_index(self, index: IndexDefinition) -> float:
        """Drop a materialised index, returning the (small) drop time."""
        if index.index_id not in self._indexes:
            raise UnknownIndexError(f"index not materialised: {index.index_id}")
        del self._indexes[index.index_id]
        del self._index_sizes[index.index_id]
        return self.cost_model.index_drop_seconds(index, self.table_data(index.table))

    def drop_all_indexes(self) -> float:
        total = 0.0
        for index in list(self._indexes.values()):
            total += self.drop_index(index)
        return total

    def apply_configuration(self, target: Iterable[IndexDefinition]) -> ConfigurationChange:
        """Transition the materialised set to ``target``.

        Indexes not in the target are dropped first (freeing budget), then
        missing indexes are created.  Creation that would exceed the memory
        budget is skipped rather than raised, mirroring how a tuner's
        recommendation is clipped by the DBMS — callers can inspect
        ``ConfigurationChange.created`` to learn what was actually built.
        """
        target_by_id = {index.index_id: index for index in target}
        change = ConfigurationChange()
        for index_id, index in list(self._indexes.items()):
            if index_id not in target_by_id:
                change.drop_seconds += self.drop_index(index)
                change.dropped.append(index)
        for index_id, index in target_by_id.items():
            if index_id in self._indexes:
                continue
            if not self.fits_in_budget([index]):
                continue
            seconds = self.create_index(index)
            change.creation_seconds_by_index[index_id] = seconds
            change.creation_seconds += seconds
            change.created.append(index)
        return change

    # ------------------------------------------------------------------ #
    # summaries
    # ------------------------------------------------------------------ #
    def summary(self) -> dict[str, object]:
        return {
            "schema": self.schema.name,
            "backend": self.backend_profile.name,
            "table_backends": {
                name: profile.name
                for name, profile in sorted(self.cost_model.table_profiles.items())
            },
            "tables": {name: data.summary() for name, data in sorted(self._tables.items())},
            "data_size_mb": round(self.data_size_bytes / (1024 * 1024), 2),
            "memory_budget_mb": (
                None
                if self.memory_budget_bytes is None
                else round(self.memory_budget_bytes / (1024 * 1024), 2)
            ),
            "materialised_indexes": sorted(self._indexes),
        }
