"""Simulated analytical DBMS substrate.

This package provides everything the paper's experiments need from a database
system: schemas, generated data, secondary indexes under a memory budget, a
true cost model, and an executor that reports per-query and per-index elapsed
times.  The query *optimiser* (which works from estimated statistics and
exposes the what-if interface) lives in :mod:`repro.optimizer`.
"""

from .backend import (
    BackendLike,
    BackendProfile,
    PlacementLike,
    TieredBackend,
    UnknownBackendError,
    UnknownPlacementTableError,
    get_backend,
    register_backend,
    registered_backend_names,
    resolve_backend,
    resolve_placement,
)
from .catalog import ConfigurationChange, Database
from .cost_model import CostModel, CostModelParameters, pages_touched_by_random_fetches
from .datagen import (
    Categorical,
    ColumnGenerator,
    DateRange,
    Derived,
    ForeignKeyRef,
    SequentialKey,
    TableSpec,
    UniformFloat,
    UniformInt,
    ZipfianInt,
    scale_rows,
)
from .errors import (
    DataGenerationError,
    DuplicateIndexError,
    EngineError,
    ExecutionError,
    MemoryBudgetExceededError,
    SchemaError,
    UnknownColumnError,
    UnknownIndexError,
    UnknownTableError,
)
from .execution import ExecutionResult, Executor, TableAccessResult
from .indexes import IndexDefinition, deduplicate, remove_prefix_redundant
from .plans import AccessMethod, JoinMethod, JoinStep, QueryPlan, TableAccessPlan
from .query import JoinPredicate, Operator, Predicate, Query, merge_queries
from .schema import Column, ColumnType, ForeignKey, Schema, Table
from .statistics import (
    ColumnStatistics,
    StatisticsCatalog,
    TableStatistics,
    build_column_statistics,
    build_table_statistics,
)
from .storage import PAGE_SIZE_BYTES, TableData, build_table_data, evaluate_predicate

__all__ = [
    "AccessMethod",
    "BackendLike",
    "BackendProfile",
    "Categorical",
    "Column",
    "ColumnGenerator",
    "ColumnStatistics",
    "ColumnType",
    "ConfigurationChange",
    "CostModel",
    "CostModelParameters",
    "Database",
    "DataGenerationError",
    "DateRange",
    "Derived",
    "DuplicateIndexError",
    "EngineError",
    "ExecutionError",
    "ExecutionResult",
    "Executor",
    "ForeignKey",
    "ForeignKeyRef",
    "IndexDefinition",
    "JoinMethod",
    "JoinPredicate",
    "JoinStep",
    "MemoryBudgetExceededError",
    "Operator",
    "PAGE_SIZE_BYTES",
    "PlacementLike",
    "Predicate",
    "Query",
    "QueryPlan",
    "Schema",
    "SchemaError",
    "SequentialKey",
    "StatisticsCatalog",
    "Table",
    "TableAccessPlan",
    "TableAccessResult",
    "TableData",
    "TableSpec",
    "TableStatistics",
    "TieredBackend",
    "UniformFloat",
    "UniformInt",
    "UnknownBackendError",
    "UnknownPlacementTableError",
    "UnknownColumnError",
    "UnknownIndexError",
    "UnknownTableError",
    "ZipfianInt",
    "build_column_statistics",
    "build_table_data",
    "build_table_statistics",
    "deduplicate",
    "evaluate_predicate",
    "get_backend",
    "merge_queries",
    "pages_touched_by_random_fetches",
    "register_backend",
    "registered_backend_names",
    "remove_prefix_redundant",
    "resolve_backend",
    "resolve_placement",
    "scale_rows",
]
