"""Storage-backend execution profiles for the simulated DBMS.

Every timing constant of the engine's "true" cost model lives in a
:class:`BackendProfile` — a frozen, picklable bundle describing one storage
tier.  The paper's testbed (10K RPM disks, cold buffer cache) is the ``hdd``
profile and stays the default, so existing experiments are bit-identical;
``ssd``, ``inmemory`` and ``cloud`` open a new scenario axis: the *same*
workload on the same data produces very different index economics when random
I/O is cheap (seeks lose their edge over scans, and the CPU-bound sort inside
index creation stops being amortised by huge I/O savings) or ruinously
latency-bound (the object store).

Profiles also place *per table*: a ``{table: backend}`` mapping (or the
declarative :class:`TieredBackend` hot/cold split) resolves through
:func:`resolve_placement` into per-table overrides the cost model consults on
every operator, so a join spanning tiers charges each side at its own tier.

Profiles are looked up by name through a registry that mirrors the tuner
registry (:func:`repro.api.register_tuner`): built-ins register at import
time, downstream code adds its own with::

    from repro.engine import BackendProfile, register_backend

    @register_backend("nvme_raid")
    def _nvme_raid() -> BackendProfile:
        return BackendProfile(name="nvme_raid", sequential_read_bytes_per_second=7e9, ...)

and the name immediately works everywhere a backend is accepted —
``Database.from_specs(backend=...)``, :class:`repro.api.DatabaseSpec`,
:class:`repro.api.SimulationOptions` and the benchmark builders.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Mapping, Union, overload

from .errors import UnknownTableError
from .storage import PAGE_SIZE_BYTES

__all__ = [
    "BackendFactory",
    "BackendProfile",
    "BackendLike",
    "PlacementLike",
    "TieredBackend",
    "UnknownBackendError",
    "UnknownPlacementTableError",
    "get_backend",
    "register_backend",
    "registered_backend_names",
    "resolve_backend",
    "resolve_placement",
]


@dataclass(frozen=True)
class BackendProfile:
    """Timing constants of one storage backend (all times in seconds).

    The defaults are the ``hdd`` profile — the paper's testbed — so
    ``BackendProfile()`` reproduces the historical cost model exactly.
    Instances are frozen (hashable, safe to share across sessions) and
    picklable (they cross :func:`repro.api.run_competition` worker
    boundaries).
    """

    #: Registry/display name of the backend this profile models.
    name: str = "hdd"
    #: One-line description for reports and error messages.
    description: str = "10K RPM disk array, cold buffer cache (the paper's testbed)"
    #: Sequential read throughput, bytes/second.
    sequential_read_bytes_per_second: float = 200e6
    #: Sequential write throughput used for index build, bytes/second.
    sequential_write_bytes_per_second: float = 150e6
    #: Cost of one random page fetch (partially amortised by read-ahead/cache).
    random_page_read_seconds: float = 2.0e-4
    #: CPU cost of processing one tuple through a scan or filter.
    cpu_tuple_seconds: float = 2.0e-7
    #: CPU cost of one comparison during sorting.
    cpu_sort_compare_seconds: float = 5.0e-8
    #: CPU cost of one hash-table insert/probe.
    cpu_hash_seconds: float = 1.5e-7
    #: Fixed per-query overhead (parsing, planning, result shipping).
    per_query_overhead_seconds: float = 0.05
    #: Fraction of the row-fetch cost avoided when an index is covering.
    covering_cpu_discount: float = 0.5
    #: Work-memory ceiling beyond which sorts spill to storage.
    sort_spill_threshold_bytes: int = 1 << 30
    #: Fixed cost of dropping an index (a metadata operation).
    index_drop_seconds: float = 0.1

    def page_read_seconds(self) -> float:
        """Sequential cost of reading one page."""
        return PAGE_SIZE_BYTES / self.sequential_read_bytes_per_second

    def page_write_seconds(self) -> float:
        """Sequential cost of writing one page."""
        return PAGE_SIZE_BYTES / self.sequential_write_bytes_per_second

    @property
    def random_to_sequential_ratio(self) -> float:
        """How much more one random page fetch costs than a sequential one.

        The single number that shapes index economics: high ratios (HDD)
        reward covering indexes and punish scattered heap fetches; ratios
        near 1 (in-memory) make secondary indexes worth little beyond their
        CPU savings.
        """
        return self.random_page_read_seconds / self.page_read_seconds()

    def summary(self) -> dict[str, object]:
        """A small serialisable summary used in reports and benchmarks."""
        return {
            "name": self.name,
            "description": self.description,
            "sequential_read_mb_per_s": round(self.sequential_read_bytes_per_second / 1e6, 1),
            "random_page_read_us": round(self.random_page_read_seconds * 1e6, 3),
            "random_to_sequential_ratio": round(self.random_to_sequential_ratio, 2),
            "per_query_overhead_ms": round(self.per_query_overhead_seconds * 1e3, 3),
        }


#: Anything accepted where a backend is expected: a registered name, a
#: profile instance, or ``None`` for the default (``hdd``).
BackendLike = Union[str, BackendProfile, None]

#: A registered factory produces a ready profile on each lookup.
BackendFactory = Callable[[], BackendProfile]


class UnknownBackendError(KeyError, ValueError):
    """Raised for a backend name nobody registered.

    Subclasses both :class:`KeyError` and :class:`ValueError` to match the
    tuner registry's :class:`repro.api.UnknownTunerError` convention, so the
    same ``except`` clauses handle either registry.
    """

    # KeyError.__str__ reprs the message (extra quotes); render it plainly.
    __str__ = Exception.__str__


_REGISTRY: dict[str, BackendFactory] = {}
#: Primary display names in registration order (for error messages/listings).
_PRIMARY_NAMES: list[str] = []


def _normalise(name: str) -> str:
    return name.strip().lower().replace("-", "_")


@overload
def register_backend(
    name: str, *aliases: str
) -> Callable[[BackendFactory], BackendFactory]: ...


@overload
def register_backend(
    name: str, *aliases: str, profile: BackendProfile
) -> BackendProfile: ...


def register_backend(
    name: str, *aliases: str, profile: BackendProfile | None = None
) -> "Callable[[BackendFactory], BackendFactory] | BackendProfile":
    """Register a backend profile under ``name`` (and ``aliases``).

    Use as a decorator over a zero-argument factory::

        @register_backend("ssd", "nvme")
        def _ssd() -> BackendProfile: ...

    or call directly with a ready ``profile`` instance::

        register_backend("tuned_hdd", profile=BackendProfile(name="tuned_hdd", ...))
    """

    def _register(factory: BackendFactory) -> BackendFactory:
        primary = name
        if _normalise(primary) not in (_normalise(n) for n in _PRIMARY_NAMES):
            _PRIMARY_NAMES.append(primary)
        for key in (name, *aliases):
            _REGISTRY[_normalise(key)] = factory
        return factory

    if profile is not None:
        _register(lambda: profile)
        return profile
    return _register


def registered_backend_names() -> list[str]:
    """Primary display names of every registered backend, registration order."""
    return list(_PRIMARY_NAMES)


def get_backend(name: str) -> BackendProfile:
    """Look a registered backend profile up by name.

    Raises:
        UnknownBackendError: For a name nobody registered (the message lists
            every registered backend).
    """
    factory = _REGISTRY.get(_normalise(name))
    if factory is None:
        known = ", ".join(registered_backend_names())
        raise UnknownBackendError(
            f"unknown backend {name!r}; registered backends: {known}"
        )
    return factory()


def resolve_backend(backend: BackendLike) -> BackendProfile:
    """Coerce a name / profile / ``None`` into a :class:`BackendProfile`.

    ``None`` resolves to the default ``hdd`` profile (the paper's constants),
    a string goes through :func:`get_backend`, and a profile instance passes
    through untouched.
    """
    if backend is None:
        return get_backend("hdd")
    if isinstance(backend, BackendProfile):
        return backend
    return get_backend(backend)


# --------------------------------------------------------------------- #
# per-table placement
# --------------------------------------------------------------------- #
class UnknownPlacementTableError(UnknownTableError, KeyError, ValueError):
    """A per-table placement named a table the database does not have.

    Mirrors :class:`UnknownBackendError`: subclasses both :class:`KeyError`
    and :class:`ValueError` (on top of the engine's
    :class:`~repro.engine.errors.UnknownTableError`) and the message lists
    every valid table name.
    """

    # KeyError.__str__ reprs the message (extra quotes); render it plainly.
    __str__ = Exception.__str__

    def __init__(self, table_name: str, known_tables: Iterable[str]) -> None:
        known = ", ".join(sorted(known_tables))
        Exception.__init__(
            self,
            f"unknown table in placement: {table_name!r}; tables: {known}",
        )
        self.table_name = table_name


def resolve_placement(
    table_backends: "Mapping[str, BackendLike] | None",
    table_names: Iterable[str],
) -> dict[str, BackendProfile]:
    """Resolve a ``{table: backend}`` mapping against the known table names.

    Every backend spelling goes through :func:`resolve_backend`; every table
    name must be one of ``table_names``.

    Raises:
        UnknownPlacementTableError: For a table name the database does not
            have (the message lists every valid name).
        UnknownBackendError: For a backend name nobody registered.
    """
    known = set(table_names)
    resolved: dict[str, BackendProfile] = {}
    for table_name, backend in (table_backends or {}).items():
        if table_name not in known:
            raise UnknownPlacementTableError(table_name, known)
        resolved[table_name] = resolve_backend(backend)
    return resolved


@dataclass(frozen=True)
class TieredBackend:
    """A declarative hot/cold placement: hot tables on one tier, rest on another.

    The classic hybrid deployment — the small, frequently joined dimension
    tables pinned in memory while the large fact tables stay on disk —
    expressed as data instead of a hand-built mapping::

        TieredBackend(hot_tables=("nation", "region", "customer"))

    ``hot`` and ``cold`` accept any backend spelling (a registered name or a
    :class:`BackendProfile`).  Instances are frozen and picklable, so they
    travel through :func:`repro.api.run_competition` workers exactly like
    plain profiles, and they slot in anywhere ``table_backends`` is accepted
    (:class:`~repro.engine.Database`, :class:`repro.api.DatabaseSpec`,
    :class:`repro.api.SimulationOptions`).
    """

    hot_tables: tuple[str, ...]
    hot: "str | BackendProfile" = "inmemory"
    cold: "str | BackendProfile" = "hdd"

    def __post_init__(self) -> None:
        if isinstance(self.hot_tables, str):
            # tuple("lineitem") would silently become per-character "tables"
            raise TypeError(
                "hot_tables must be an iterable of table names, not a string; "
                f"did you mean hot_tables=({self.hot_tables!r},)?"
            )
        object.__setattr__(self, "hot_tables", tuple(self.hot_tables))

    @property
    def hot_profile(self) -> BackendProfile:
        return resolve_backend(self.hot)

    @property
    def cold_profile(self) -> BackendProfile:
        return resolve_backend(self.cold)

    def placement(
        self, table_names: Iterable[str]
    ) -> tuple[BackendProfile, dict[str, BackendProfile]]:
        """Resolve into ``(default profile, per-table overrides)``.

        The cold tier becomes the default profile and every hot table gets an
        override, validated against ``table_names``.

        Raises:
            UnknownPlacementTableError: For a hot table the database does not
                have.
        """
        hot = self.hot_profile
        overrides = resolve_placement(
            {name: hot for name in self.hot_tables}, table_names
        )
        return self.cold_profile, overrides


#: Anything accepted where a per-table placement is expected: a
#: ``{table: backend}`` mapping, a :class:`TieredBackend`, or ``None``.
PlacementLike = Union[Mapping[str, BackendLike], TieredBackend, None]


# --------------------------------------------------------------------- #
# built-in profiles
# --------------------------------------------------------------------- #
@register_backend("hdd", "disk", "default")
def _hdd() -> BackendProfile:
    """The paper's testbed: every constant at its historical default."""
    return BackendProfile()


@register_backend("ssd", "nvme", "flash")
def _ssd() -> BackendProfile:
    """Flash storage: ~10x the sequential bandwidth, ~25x cheaper random I/O.

    The defining shift is the narrow random/sequential gap (ratio ~2 against
    the HDD's ~4.9): scattered heap fetches stop dominating non-covering index
    seeks, while the CPU-bound sort inside index creation is no longer dwarfed
    by I/O — so building wide indexes pays off later, if at all.
    """
    return BackendProfile(
        name="ssd",
        description="NVMe flash: high bandwidth, cheap random reads",
        sequential_read_bytes_per_second=2e9,
        sequential_write_bytes_per_second=1.5e9,
        random_page_read_seconds=8.0e-6,
        per_query_overhead_seconds=0.02,
        index_drop_seconds=0.05,
    )


@register_backend("inmemory", "in_memory", "memory", "ram")
def _inmemory() -> BackendProfile:
    """Memory-resident data: execution is CPU-bound, I/O terms nearly vanish.

    Random access costs close to a sequential page read (ratio ~1.2), sorts
    never spill, and the fixed per-query overhead shrinks to parse/plan time —
    index benefit reduces to the CPU saved by touching fewer tuples.
    """
    return BackendProfile(
        name="inmemory",
        description="memory-resident data: CPU-bound execution, near-zero I/O",
        sequential_read_bytes_per_second=20e9,
        sequential_write_bytes_per_second=20e9,
        random_page_read_seconds=5.0e-7,
        per_query_overhead_seconds=0.005,
        sort_spill_threshold_bytes=1 << 62,
        index_drop_seconds=0.001,
    )


@register_backend("cloud", "s3", "object_store")
def _cloud() -> BackendProfile:
    """Cloud object storage: latency-dominated reads over decent bandwidth.

    Each uncached page fetch is an HTTP GET paying milliseconds of first-byte
    latency — a random/sequential ratio near ~250, far past even the HDD's
    ~4.9 — while large sequential transfers stream at a respectable rate
    (reads faster than writes: the asymmetric bandwidths matter for the
    sort-spill billing, whose read pass is cheaper than its write pass here).
    Index economics invert twice: scattered heap lookups are ruinous, so only
    *covering* indexes (and the scan they replace) earn their build cost, and
    the fat per-query overhead drowns small savings entirely.
    """
    return BackendProfile(
        name="cloud",
        description="object store: per-request latency dominates, sequential reads stream",
        sequential_read_bytes_per_second=500e6,
        sequential_write_bytes_per_second=200e6,
        random_page_read_seconds=4.0e-3,
        per_query_overhead_seconds=0.15,
        index_drop_seconds=0.2,
    )
