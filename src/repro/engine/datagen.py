"""Synthetic column-data generators for the simulated DBMS.

The original paper runs on generated TPC-H / TPC-H Skew / TPC-DS / SSB data
and the real IMDb dataset.  We reproduce the *statistical* properties that
matter for index tuning — cardinalities, skew (zipfian), value correlations
between columns, and key/foreign-key structure — with numpy-based generators.

Each table is materialised as a row *sample* of bounded size together with a
``scale_multiplier`` (full row count / sample row count).  Predicate
selectivities are measured on the sample (so skew and correlation are real,
not modelled), while row counts and byte sizes are scaled back up to the full
table size for cost accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from .errors import DataGenerationError


@dataclass(frozen=True)
class ColumnGenerator:
    """Base class for column value generators.

    Subclasses implement :meth:`generate`, returning a numpy array of
    ``n_rows`` values.  Generators must be deterministic given the supplied
    :class:`numpy.random.Generator` so that experiments are reproducible.
    """

    def generate(
        self,
        n_rows: int,
        rng: np.random.Generator,
        existing: Mapping[str, np.ndarray],
    ) -> np.ndarray:
        raise NotImplementedError

    @property
    def approximate_distinct(self) -> int | None:
        """Distinct-value count hint used by the optimiser statistics, if known."""
        return None


@dataclass(frozen=True)
class SequentialKey(ColumnGenerator):
    """Dense unique integer keys ``start, start+1, ...`` (primary keys)."""

    start: int = 1

    def generate(
        self,
        n_rows: int,
        rng: np.random.Generator,
        existing: Mapping[str, np.ndarray],
    ) -> np.ndarray:
        return np.arange(self.start, self.start + n_rows, dtype=np.int64)


@dataclass(frozen=True)
class UniformInt(ColumnGenerator):
    """Integers drawn uniformly from ``[low, high]`` inclusive."""

    low: int
    high: int

    def __post_init__(self) -> None:
        if self.high < self.low:
            raise DataGenerationError(f"UniformInt: high ({self.high}) < low ({self.low})")

    def generate(
        self,
        n_rows: int,
        rng: np.random.Generator,
        existing: Mapping[str, np.ndarray],
    ) -> np.ndarray:
        return rng.integers(self.low, self.high + 1, size=n_rows, dtype=np.int64)

    @property
    def approximate_distinct(self) -> int:
        return self.high - self.low + 1


@dataclass(frozen=True)
class UniformFloat(ColumnGenerator):
    """Floats drawn uniformly from ``[low, high)``."""

    low: float
    high: float

    def __post_init__(self) -> None:
        if self.high <= self.low:
            raise DataGenerationError(f"UniformFloat: high ({self.high}) <= low ({self.low})")

    def generate(
        self,
        n_rows: int,
        rng: np.random.Generator,
        existing: Mapping[str, np.ndarray],
    ) -> np.ndarray:
        return rng.uniform(self.low, self.high, size=n_rows)


@dataclass(frozen=True)
class ZipfianInt(ColumnGenerator):
    """Integers over ``[low, low + n_distinct)`` with zipfian frequency skew.

    ``skew`` is the zipf exponent; the paper's TPC-H Skew benchmark uses a
    zipfian factor of 4, producing extremely heavy hitters.  Rank 1 is the most
    frequent value; value-to-rank assignment is shuffled deterministically so
    that heavy hitters are not always the smallest values.
    """

    low: int
    n_distinct: int
    skew: float = 1.0

    def __post_init__(self) -> None:
        if self.n_distinct <= 0:
            raise DataGenerationError("ZipfianInt: n_distinct must be positive")
        if self.skew < 0:
            raise DataGenerationError("ZipfianInt: skew must be non-negative")

    def generate(
        self,
        n_rows: int,
        rng: np.random.Generator,
        existing: Mapping[str, np.ndarray],
    ) -> np.ndarray:
        ranks = np.arange(1, self.n_distinct + 1, dtype=np.float64)
        if self.skew == 0:
            probabilities = np.full(self.n_distinct, 1.0 / self.n_distinct)
        else:
            weights = ranks ** (-self.skew)
            probabilities = weights / weights.sum()
        values = np.arange(self.low, self.low + self.n_distinct, dtype=np.int64)
        rng.shuffle(values)
        return rng.choice(values, size=n_rows, p=probabilities)

    @property
    def approximate_distinct(self) -> int:
        return self.n_distinct


@dataclass(frozen=True)
class Categorical(ColumnGenerator):
    """A small categorical domain encoded as integer codes ``0..k-1``.

    ``weights`` (optional) gives the relative frequency of each code.
    """

    n_categories: int
    weights: tuple[float, ...] | None = None

    def __post_init__(self) -> None:
        if self.n_categories <= 0:
            raise DataGenerationError("Categorical: n_categories must be positive")
        if self.weights is not None and len(self.weights) != self.n_categories:
            raise DataGenerationError("Categorical: weights length must equal n_categories")

    def generate(
        self,
        n_rows: int,
        rng: np.random.Generator,
        existing: Mapping[str, np.ndarray],
    ) -> np.ndarray:
        if self.weights is None:
            probabilities = None
        else:
            total = float(sum(self.weights))
            if total <= 0:
                raise DataGenerationError("Categorical: weights must sum to a positive value")
            probabilities = np.asarray(self.weights, dtype=np.float64) / total
        return rng.choice(
            np.arange(self.n_categories, dtype=np.int64), size=n_rows, p=probabilities
        )

    @property
    def approximate_distinct(self) -> int:
        return self.n_categories


@dataclass(frozen=True)
class DateRange(ColumnGenerator):
    """Dates encoded as integer day offsets, uniform over ``n_days`` days."""

    start_day: int = 0
    n_days: int = 2557  # seven years, the TPC-H order-date range

    def __post_init__(self) -> None:
        if self.n_days <= 0:
            raise DataGenerationError("DateRange: n_days must be positive")

    def generate(
        self,
        n_rows: int,
        rng: np.random.Generator,
        existing: Mapping[str, np.ndarray],
    ) -> np.ndarray:
        return rng.integers(self.start_day, self.start_day + self.n_days, size=n_rows, dtype=np.int64)

    @property
    def approximate_distinct(self) -> int:
        return self.n_days


@dataclass(frozen=True)
class ForeignKeyRef(ColumnGenerator):
    """References into a parent key domain ``[1, parent_cardinality]``.

    ``skew`` = 0 gives uniform references; larger values give zipfian-skewed
    reference patterns (a few parents own most children), which is what makes
    the TPC-H Skew optimiser misestimates interesting.
    """

    parent_cardinality: int
    skew: float = 0.0

    def __post_init__(self) -> None:
        if self.parent_cardinality <= 0:
            raise DataGenerationError("ForeignKeyRef: parent_cardinality must be positive")

    def generate(
        self,
        n_rows: int,
        rng: np.random.Generator,
        existing: Mapping[str, np.ndarray],
    ) -> np.ndarray:
        if self.skew == 0:
            return rng.integers(1, self.parent_cardinality + 1, size=n_rows, dtype=np.int64)
        generator = ZipfianInt(low=1, n_distinct=self.parent_cardinality, skew=self.skew)
        return generator.generate(n_rows, rng, existing)

    @property
    def approximate_distinct(self) -> int:
        return self.parent_cardinality


@dataclass(frozen=True)
class Derived(ColumnGenerator):
    """A column correlated with an existing column of the same table.

    The value is ``source * slope + offset + noise`` where ``noise`` is
    uniform integer noise in ``[-noise, +noise]``.  This deliberately violates
    the attribute-value-independence assumption used by the optimiser.
    """

    source_column: str
    slope: float = 1.0
    offset: float = 0.0
    noise: int = 0
    modulo: int | None = None

    def generate(
        self,
        n_rows: int,
        rng: np.random.Generator,
        existing: Mapping[str, np.ndarray],
    ) -> np.ndarray:
        if self.source_column not in existing:
            raise DataGenerationError(
                f"Derived: source column {self.source_column!r} has not been generated yet"
            )
        source = existing[self.source_column].astype(np.float64)
        values = source * self.slope + self.offset
        if self.noise:
            values = values + rng.integers(-self.noise, self.noise + 1, size=n_rows)
        values = np.rint(values).astype(np.int64)
        if self.modulo is not None:
            if self.modulo <= 0:
                raise DataGenerationError("Derived: modulo must be positive")
            values = np.mod(values, self.modulo)
        return values


@dataclass(frozen=True)
class TableSpec:
    """Full description of a table's data: row count plus per-column generators.

    ``generators`` maps column name to generator; generation proceeds in the
    order given so that :class:`Derived` columns can reference earlier ones.
    """

    table_name: str
    row_count: int
    generators: dict[str, ColumnGenerator] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.row_count <= 0:
            raise DataGenerationError(f"table {self.table_name!r}: row_count must be positive")

    def generate_sample(
        self, sample_rows: int, rng: np.random.Generator
    ) -> dict[str, np.ndarray]:
        """Generate a sample of ``min(sample_rows, row_count)`` rows per column."""
        n_rows = int(min(sample_rows, self.row_count))
        if n_rows <= 0:
            raise DataGenerationError("sample_rows must be positive")
        data: dict[str, np.ndarray] = {}
        for column_name, generator in self.generators.items():
            data[column_name] = generator.generate(n_rows, rng, data)
        return data


def scale_rows(base_rows: int, scale_factor: float) -> int:
    """Scale a base (SF 1) row count by ``scale_factor``, keeping at least one row."""
    return max(1, int(round(base_rows * scale_factor)))
