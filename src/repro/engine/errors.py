"""Exception hierarchy for the simulated DBMS engine.

Keeping a small, explicit hierarchy lets callers distinguish configuration
errors (bad schema, unknown column) from run-time constraint violations
(memory budget exceeded) without string matching.
"""

from __future__ import annotations


class EngineError(Exception):
    """Base class for all errors raised by :mod:`repro.engine`."""


class SchemaError(EngineError):
    """A table, column or key definition is inconsistent."""


class UnknownTableError(SchemaError):
    """A query or index referenced a table that is not in the schema."""

    def __init__(self, table_name: str) -> None:
        super().__init__(f"unknown table: {table_name!r}")
        self.table_name = table_name


class UnknownColumnError(SchemaError):
    """A query or index referenced a column that is not in its table."""

    def __init__(self, table_name: str, column_name: str) -> None:
        super().__init__(f"unknown column: {table_name!r}.{column_name!r}")
        self.table_name = table_name
        self.column_name = column_name


class DuplicateIndexError(EngineError):
    """An index with the same key definition is already materialised."""


class UnknownIndexError(EngineError):
    """An operation referenced an index that is not materialised."""


class MemoryBudgetExceededError(EngineError):
    """Materialising an index would exceed the configured memory budget."""

    def __init__(self, requested_bytes: int, available_bytes: int) -> None:
        super().__init__(
            "index materialisation would exceed the memory budget: "
            f"requested {requested_bytes} bytes, available {available_bytes} bytes"
        )
        self.requested_bytes = requested_bytes
        self.available_bytes = available_bytes


class DataGenerationError(EngineError):
    """A column generator specification is invalid."""


class ExecutionError(EngineError):
    """A query plan could not be executed against the database."""
