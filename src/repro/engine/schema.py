"""Relational schema definitions for the simulated DBMS.

A :class:`Schema` is purely structural: table names, column names, column
storage widths, primary keys and foreign keys.  How column *values* are
generated (distribution, skew, correlation) is described separately by
:mod:`repro.engine.datagen` so that the same schema can be instantiated with
uniform or skewed data (e.g. TPC-H vs TPC-H Skew).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Iterable, Iterator

from .errors import SchemaError, UnknownColumnError, UnknownTableError


class ColumnType(Enum):
    """Logical column types supported by the engine.

    Values are stored internally as numpy arrays of integer codes or floats;
    the logical type only influences byte-width accounting and predicate
    semantics (e.g. ranges over dates behave like ranges over integers).
    """

    INTEGER = "integer"
    FLOAT = "float"
    DECIMAL = "decimal"
    DATE = "date"
    CHAR = "char"
    VARCHAR = "varchar"

    @property
    def is_numeric(self) -> bool:
        return self in (ColumnType.INTEGER, ColumnType.FLOAT, ColumnType.DECIMAL)


#: Default on-disk width (bytes) per logical type, used when a column does not
#: override ``width_bytes``.  These follow common DBMS defaults.
DEFAULT_WIDTH_BYTES = {
    ColumnType.INTEGER: 4,
    ColumnType.FLOAT: 8,
    ColumnType.DECIMAL: 8,
    ColumnType.DATE: 4,
    ColumnType.CHAR: 16,
    ColumnType.VARCHAR: 32,
}


@dataclass(frozen=True)
class Column:
    """A single column of a table.

    Parameters
    ----------
    name:
        Column name, unique within its table.
    ctype:
        Logical type of the column.
    width_bytes:
        Storage width used for page and index-size accounting.  Defaults to a
        per-type width.
    """

    name: str
    ctype: ColumnType = ColumnType.INTEGER
    width_bytes: int | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("column name must be non-empty")
        if self.width_bytes is not None and self.width_bytes <= 0:
            raise SchemaError(f"column {self.name!r}: width_bytes must be positive")

    @property
    def width(self) -> int:
        """Effective storage width in bytes."""
        if self.width_bytes is not None:
            return self.width_bytes
        return DEFAULT_WIDTH_BYTES[self.ctype]


@dataclass(frozen=True)
class ForeignKey:
    """A foreign-key relationship ``child_table.child_column -> parent_table.parent_column``."""

    child_table: str
    child_column: str
    parent_table: str
    parent_column: str


@dataclass
class Table:
    """A table definition: ordered columns plus an optional primary key."""

    name: str
    columns: list[Column]
    primary_key: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("table name must be non-empty")
        if not self.columns:
            raise SchemaError(f"table {self.name!r} must have at least one column")
        seen: set[str] = set()
        for column in self.columns:
            if column.name in seen:
                raise SchemaError(f"table {self.name!r}: duplicate column {column.name!r}")
            seen.add(column.name)
        for key_column in self.primary_key:
            if key_column not in seen:
                raise SchemaError(
                    f"table {self.name!r}: primary key column {key_column!r} does not exist"
                )
        self._columns_by_name = {column.name: column for column in self.columns}

    @property
    def column_names(self) -> list[str]:
        return [column.name for column in self.columns]

    def column(self, name: str) -> Column:
        """Return the column named ``name`` or raise :class:`UnknownColumnError`."""
        try:
            return self._columns_by_name[name]
        except KeyError:
            raise UnknownColumnError(self.name, name) from None

    def has_column(self, name: str) -> bool:
        return name in self._columns_by_name

    @property
    def row_width_bytes(self) -> int:
        """Approximate width of one row, including a fixed per-row header."""
        header_bytes = 8
        return header_bytes + sum(column.width for column in self.columns)


@dataclass
class Schema:
    """A database schema: a set of tables plus foreign-key relationships."""

    name: str
    tables: list[Table] = field(default_factory=list)
    foreign_keys: list[ForeignKey] = field(default_factory=list)

    def __post_init__(self) -> None:
        seen: set[str] = set()
        for table in self.tables:
            if table.name in seen:
                raise SchemaError(f"schema {self.name!r}: duplicate table {table.name!r}")
            seen.add(table.name)
        self._tables_by_name = {table.name: table for table in self.tables}
        for fk in self.foreign_keys:
            self._validate_foreign_key(fk)

    def _validate_foreign_key(self, fk: ForeignKey) -> None:
        child = self.table(fk.child_table)
        parent = self.table(fk.parent_table)
        if not child.has_column(fk.child_column):
            raise UnknownColumnError(fk.child_table, fk.child_column)
        if not parent.has_column(fk.parent_column):
            raise UnknownColumnError(fk.parent_table, fk.parent_column)

    @property
    def table_names(self) -> list[str]:
        return [table.name for table in self.tables]

    def table(self, name: str) -> Table:
        """Return the table named ``name`` or raise :class:`UnknownTableError`."""
        try:
            return self._tables_by_name[name]
        except KeyError:
            raise UnknownTableError(name) from None

    def has_table(self, name: str) -> bool:
        return name in self._tables_by_name

    def add_table(self, table: Table) -> None:
        if table.name in self._tables_by_name:
            raise SchemaError(f"schema {self.name!r}: duplicate table {table.name!r}")
        self.tables.append(table)
        self._tables_by_name[table.name] = table

    def foreign_keys_of(self, table_name: str) -> list[ForeignKey]:
        """Foreign keys whose child side is ``table_name``."""
        return [fk for fk in self.foreign_keys if fk.child_table == table_name]

    def columns_of(self, table_name: str) -> list[Column]:
        return list(self.table(table_name).columns)

    def iter_columns(self) -> Iterator[tuple[Table, Column]]:
        for table in self.tables:
            for column in table.columns:
                yield table, column

    def validate_columns(self, table_name: str, column_names: Iterable[str]) -> None:
        """Raise if any of ``column_names`` is not a column of ``table_name``."""
        table = self.table(table_name)
        for column_name in column_names:
            if not table.has_column(column_name):
                raise UnknownColumnError(table_name, column_name)
