"""``repro.fleet`` — multi-tenant tuning: thousands of bandit sessions per process.

The paper frames C²UCB index tuning as something a managed cloud service runs
on behalf of its tenants.  This package is that control plane in miniature:

* :class:`TuningFleet` — N :class:`~repro.api.TuningSession`\\ s keyed by
  tenant id, stepped synchronously (:meth:`~TuningFleet.step`) or through the
  out-of-order ``submit``/``drain`` queue, with per-tenant results
  bit-identical to standalone sessions;
* :class:`TenantSpec` / :class:`FleetConfig` — frozen picklable recipes
  mirroring the :class:`~repro.api.TunerSpec` registry discipline;
* :class:`DatabaseInterner` — spec-keyed memoisation so identical tenants
  share one immutable database statistics snapshot;
* :class:`UnknownTenantError` / :class:`DuplicateTenantError` — the fleet's
  error surface, matching the tuner/backend registry conventions.

Every name here is re-exported from :mod:`repro.api`, the supported public
surface.
"""

from .errors import DuplicateTenantError, UnknownTenantError
from .fleet import TuningFleet
from .interning import DatabaseInterner
from .specs import FleetConfig, TenantSpec

__all__ = [
    "DatabaseInterner",
    "DuplicateTenantError",
    "FleetConfig",
    "TenantSpec",
    "TuningFleet",
    "UnknownTenantError",
]
