"""Frozen, picklable recipes for fleet tenants and fleet-wide behaviour.

:class:`TenantSpec` mirrors the registry discipline of
:class:`~repro.api.TunerSpec` / :class:`~repro.api.DatabaseSpec`: a tenant is
named by a registry tuner name plus a picklable database recipe, never by
live objects, so fleets can be described declaratively (and shipped across
process boundaries) exactly like competition entries.
"""

from __future__ import annotations

from dataclasses import InitVar, dataclass
from typing import Any

from repro.api.competition import DatabaseSpec
from repro.api.registry import TunerSpec
from repro.api.session import SimulationOptions
from repro.core.config import _UNSET, _warn_legacy_scoring_knob
from repro.core.scoring import ScoringConfig

__all__ = ["FleetConfig", "TenantSpec"]


@dataclass(frozen=True)
class TenantSpec:
    """One tenant of a :class:`~repro.fleet.TuningFleet`.

    Attributes:
        tenant_id: Unique id keying the tenant's session, submissions and
            reports (the fleet's deterministic merge key).
        database: Picklable recipe for the tenant's database.  Tenants whose
            specs share an :meth:`~repro.api.DatabaseSpec.intern_key` share
            one immutable statistics snapshot (see
            :class:`~repro.fleet.DatabaseInterner`).
        tuner: Registry name of the tenant's tuner (``"MAB"``, ``"DDQN"``,
            ``"PDTool"``, ...), resolved through
            :func:`repro.api.create_tuner`.
        tuner_spec: Optional per-tenant tuner context; ``None`` uses the
            registry default.
        options: Optional per-tenant execution options; ``None`` falls back
            to the fleet's :attr:`FleetConfig.default_options`.
    """

    tenant_id: str
    database: DatabaseSpec
    tuner: str = "MAB"
    tuner_spec: TunerSpec | None = None
    options: SimulationOptions | None = None


@dataclass(frozen=True)
class FleetConfig:
    """Fleet-wide knobs (all tenants; per-tenant settings live on the spec).

    Attributes:
        batch_scoring: Deprecated spelling of ``scoring.batch`` — normalises
            into :attr:`scoring` with a :class:`DeprecationWarning` and still
            reads back as a derived property.
        intern_databases: Materialise each distinct database spec once and
            hand tenants lightweight
            :meth:`~repro.engine.Database.tenant_view` clones sharing the
            statistics snapshot.  Disable to give every tenant a fully
            private database (N times the memory and startup cost).
        default_options: Execution options for tenants whose spec does not
            carry its own (``None`` uses the
            :class:`~repro.api.SimulationOptions` defaults).
        scoring: Fleet-wide scoring behaviour
            (:class:`~repro.core.scoring.ScoringConfig`).  Only
            ``scoring.batch`` is consumed at fleet level: whether all
            pool-compatible tuners' recommendation rounds are fused into one
            vectorized
            :func:`~repro.core.linear_bandit.batch_upper_confidence_scores`
            pass (bit-identical to per-session scoring by contract).  Tuners
            without the pool protocol — DDQN, PDTool, NoIndex — and MAB
            tuners configured for a partitioned scoring strategy always fall
            back to per-session recommendation, whatever this says.  ``None``
            means the :class:`ScoringConfig` defaults (batching on).
    """

    batch_scoring: InitVar[Any] = _UNSET
    intern_databases: bool = True
    default_options: SimulationOptions | None = None
    scoring: ScoringConfig | None = None

    def __post_init__(self, batch_scoring: Any) -> None:
        if self.scoring is not None:
            # "scoring wins" — replace() round-trips re-feed the derived
            # batch_scoring property; ignore it silently.
            return
        if batch_scoring is _UNSET:
            return
        _warn_legacy_scoring_knob("FleetConfig", "batch_scoring")
        object.__setattr__(
            self, "scoring", ScoringConfig(batch=bool(batch_scoring))
        )

    def effective_scoring(self) -> ScoringConfig:
        """The fleet's scoring behaviour with defaults applied."""
        return self.scoring if self.scoring is not None else ScoringConfig()


def _legacy_batch_scoring(config: FleetConfig) -> bool:
    """Deprecated read of ``scoring.batch``."""
    return config.effective_scoring().batch


setattr(FleetConfig, "batch_scoring", property(_legacy_batch_scoring))
