"""The multi-tenant tuning fleet: thousands of bandit sessions per process.

:class:`TuningFleet` owns one :class:`~repro.api.TuningSession` per tenant and
multiplexes their round protocol the way a DBaaS control plane would:

* **shared immutable state** — tenants whose database specs intern to the
  same key share one statistics snapshot
  (:class:`~repro.fleet.DatabaseInterner`), so fleet startup is O(distinct
  specs), not O(tenants);
* **batched recommendation** — every pool-compatible MAB tenant's scoring
  round runs inside one vectorized
  :func:`~repro.core.linear_bandit.batch_upper_confidence_scores` pass,
  bit-identical to per-session scoring by contract (DDQN/PDTool/NoIndex and
  sharded MAB tuners fall back to ordinary per-session recommendation);
* **queue-driven stepping** — :meth:`TuningFleet.submit` enqueues a tenant's
  next round in any arrival order, :meth:`TuningFleet.drain` processes every
  queued round and merges results keyed by tenant id and round number, so the
  output is deterministic whatever order observations streamed in.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Mapping

from repro.api.registry import create_tuner
from repro.api.session import TuningSession
from repro.core.linear_bandit import batch_upper_confidence_scores
from repro.harness.metrics import FleetSummary, RoundReport, RunReport

from .errors import DuplicateTenantError, UnknownTenantError
from .interning import DatabaseInterner
from .specs import FleetConfig, TenantSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    import numpy as np

    from repro.api.session import DatabaseEvent
    from repro.core.tuner import MabTuner, PoolRound
    from repro.engine.query import Query
    from repro.interface import Recommendation
    from repro.workloads.generator import WorkloadRound

__all__ = ["TuningFleet"]


@dataclass
class _PendingRound:
    """One queued round for one tenant: queries plus the round protocol.

    Carrying the full protocol (events, offline-tool training workload,
    shift flag, round number) through the queue is what keeps submit/drain
    bit-identical to standalone :meth:`~repro.api.TuningSession.step_workload_round`
    calls even when tenants run *different* workload regimes concurrently.
    """

    queries: "list[Query]"
    events: "tuple[DatabaseEvent, ...]" = ()
    training_queries: "list[Query] | None" = None
    is_shift_round: bool = False
    round_number: int | None = None


class TuningFleet:
    """N tuning sessions keyed by tenant id, stepped as one service.

    Tenants register through frozen :class:`~repro.fleet.TenantSpec` recipes
    (never live objects), get their databases from the fleet's interner, and
    are stepped either synchronously (:meth:`step`) or through the
    submit/drain queue.  Per-tenant results are bit-identical to running the
    same spec in its own standalone :class:`~repro.api.TuningSession` — the
    fleet changes *how much* work runs per pass, never the numbers.
    """

    def __init__(
        self,
        tenants: Iterable[TenantSpec] = (),
        config: FleetConfig | None = None,
    ) -> None:
        self.config = config or FleetConfig()
        self.interner = DatabaseInterner()
        self._sessions: dict[str, TuningSession] = {}
        self._queue: dict[str, deque[_PendingRound]] = {}
        for spec in tenants:
            self.add_tenant(spec)

    # ------------------------------------------------------------------ #
    # tenant registry
    # ------------------------------------------------------------------ #
    def add_tenant(self, spec: TenantSpec) -> TuningSession:
        """Register one tenant and build its session.

        Raises:
            DuplicateTenantError: If ``spec.tenant_id`` is already
                registered (tenant ids key the deterministic merge).
            repro.api.UnknownTunerError: If ``spec.tuner`` names a tuner
                nobody registered.
        """
        if spec.tenant_id in self._sessions:
            raise DuplicateTenantError(spec.tenant_id)
        if self.config.intern_databases:
            database = self.interner.database_for(spec.database)
        else:
            database = spec.database.create()
        tuner = create_tuner(spec.tuner, database, spec.tuner_spec)
        options = spec.options or self.config.default_options
        session = TuningSession(database, tuner, options)
        self._sessions[spec.tenant_id] = session
        return session

    def session(self, tenant_id: str) -> TuningSession:
        """The tenant's live session (raises :class:`UnknownTenantError`)."""
        try:
            return self._sessions[tenant_id]
        except KeyError:
            raise UnknownTenantError(tenant_id, self._sessions) from None

    @property
    def tenant_ids(self) -> list[str]:
        """Registered tenant ids, sorted (the fleet's canonical order)."""
        return sorted(self._sessions)

    def __len__(self) -> int:
        return len(self._sessions)

    def __contains__(self, tenant_id: object) -> bool:
        return tenant_id in self._sessions

    @property
    def reports(self) -> dict[str, RunReport]:
        """Each tenant's accumulated run report, keyed in canonical order."""
        return {tid: self._sessions[tid].report for tid in self.tenant_ids}

    def summary(self) -> FleetSummary:
        """Fleet-level throughput/cost rollup of every tenant's report."""
        return FleetSummary.from_reports(self.reports)

    # ------------------------------------------------------------------ #
    # the queue-driven step API
    # ------------------------------------------------------------------ #
    def submit(
        self,
        tenant_id: str,
        queries: Iterable[Query],
        events: "Iterable[DatabaseEvent]" = (),
        training_queries: "list[Query] | None" = None,
        is_shift_round: bool = False,
        round_number: int | None = None,
    ) -> None:
        """Enqueue one round's query batch (and its round protocol) for a tenant.

        Submissions may arrive in any order across tenants; each tenant's own
        batches run in submission order, and :meth:`drain` merges results by
        tenant id and round number, so the arrival order is unobservable in
        the output.  ``events`` are the round's workload-visible environment
        changes (see :mod:`repro.workloads.stress`), applied to the tenant's
        database just before its recommendation when the round runs;
        ``training_queries``, ``is_shift_round`` and ``round_number`` mirror
        the single-session :meth:`~repro.api.TuningSession.step` protocol and
        are carried per submission, so tenants running different workload
        regimes stay bit-identical to their standalone sessions.

        Raises:
            UnknownTenantError: If nobody registered ``tenant_id``.
        """
        if tenant_id not in self._sessions:
            raise UnknownTenantError(tenant_id, self._sessions)
        self._queue.setdefault(tenant_id, deque()).append(
            _PendingRound(
                queries=list(queries),
                events=tuple(events),
                training_queries=training_queries,
                is_shift_round=is_shift_round,
                round_number=round_number,
            )
        )

    def submit_workload_round(
        self, tenant_id: str, workload_round: "WorkloadRound"
    ) -> None:
        """Enqueue one pre-materialised workload round for a tenant.

        The convenience spelling for stress rosters: carries the round's
        queries, events, offline-tool training workload, shift flag and round
        number through the queue, so a drained fleet replays exactly what
        :meth:`~repro.api.TuningSession.step_workload_round` would run.
        """
        self.submit(
            tenant_id,
            workload_round.queries,
            events=workload_round.events,
            training_queries=(
                workload_round.pdtool_training_queries
                if workload_round.invoke_pdtool
                else None
            ),
            is_shift_round=workload_round.is_shift_round,
            round_number=workload_round.round_number,
        )

    @property
    def pending_rounds(self) -> int:
        """Submitted query batches not yet drained."""
        return sum(len(batches) for batches in self._queue.values())

    def drain(self) -> dict[str, list[RoundReport]]:
        """Run every submitted round; deterministic per-tenant results.

        Rounds are processed in waves — wave *k* steps every tenant holding a
        *k*-th pending batch, in canonical (sorted tenant id) order — so each
        wave's pool-compatible tenants share one batched scoring pass.

        Returns:
            ``{tenant_id: [RoundReport, ...]}`` with tenants in canonical
            order and each tenant's reports in its own submission order,
            independent of how submissions interleaved.
        """
        queue = self._queue
        self._queue = {}
        reports: dict[str, list[RoundReport]] = {tid: [] for tid in sorted(queue)}
        while any(queue.values()):
            wave = {
                tenant_id: batches.popleft()
                for tenant_id, batches in sorted(queue.items())
                if batches
            }
            for tenant_id, report in self._run_wave(wave).items():
                reports[tenant_id].append(report)
        return reports

    # ------------------------------------------------------------------ #
    # synchronous stepping
    # ------------------------------------------------------------------ #
    def step(
        self,
        batch: Mapping[str, list[Query]],
        training_queries: "list[Query] | None" = None,
        is_shift_round: bool = False,
        round_number: int | None = None,
        events: "Mapping[str, tuple[DatabaseEvent, ...]] | None" = None,
    ) -> dict[str, RoundReport]:
        """Run one full round for every tenant in ``batch``.

        Pool-compatible tuners are scored together in one vectorized pass;
        the rest recommend per session.  Execution and observation always
        run per tenant, in canonical order.  ``training_queries``,
        ``is_shift_round`` and ``round_number`` mirror the single-session
        :meth:`~repro.api.TuningSession.step` protocol (offline tuners see
        the training workload; pool tuners ignore it).  ``events`` maps
        tenant ids to this round's workload-visible environment changes
        (see :mod:`repro.workloads.stress`), applied to each tenant's
        database in canonical order *before* any recommendation — exactly
        where a standalone session applies them — and skipped for sessions
        whose options disable ``apply_events``.

        Raises:
            UnknownTenantError: If ``batch`` (or ``events``) names an
                unregistered tenant.
        """
        if events:
            for tenant_id in events:
                if tenant_id not in self._sessions:
                    raise UnknownTenantError(tenant_id, self._sessions)
        wave = {
            tenant_id: _PendingRound(
                queries=queries,
                events=events.get(tenant_id, ()) if events else (),
                training_queries=training_queries,
                is_shift_round=is_shift_round,
                round_number=round_number,
            )
            for tenant_id, queries in batch.items()
        }
        return self._run_wave(wave)

    def _run_wave(self, wave: Mapping[str, _PendingRound]) -> dict[str, RoundReport]:
        """Run one round for every tenant in ``wave``, per-tenant protocol.

        Events first (canonical order, honouring each session's
        ``options.apply_events``), then one batched scoring pass over the
        pool-compatible tenants, then per-tenant execute/observe — each step
        using that tenant's own round metadata.
        """
        order = sorted(wave)
        for tenant_id in order:
            if tenant_id not in self._sessions:
                raise UnknownTenantError(tenant_id, self._sessions)
        for tenant_id in order:
            pending = wave[tenant_id]
            session = self._sessions[tenant_id]
            if pending.events and session.options.apply_events:
                session.apply_events(pending.events)
        if self.config.effective_scoring().batch:
            batched = [t for t in order if self._pool_tuner(t) is not None]
        else:
            batched = []
        if batched:
            self._adopt_batched_recommendations(
                batched, {t: wave[t].round_number for t in batched}
            )
        direct = set(order) - set(batched)
        reports: dict[str, RoundReport] = {}
        for tenant_id in order:
            pending = wave[tenant_id]
            session = self._sessions[tenant_id]
            if tenant_id in direct:
                session.recommend(
                    pending.training_queries, round_number=pending.round_number
                )
            session.execute(pending.queries)
            reports[tenant_id] = session.observe(is_shift_round=pending.is_shift_round)
        return reports

    def step_workload_round(
        self, workload_round: "WorkloadRound"
    ) -> dict[str, RoundReport]:
        """Step every registered tenant over one shared workload round.

        The round's :attr:`~repro.workloads.generator.WorkloadRound.events`
        are applied to every tenant (honouring each session's
        ``options.apply_events``), mirroring the standalone
        :meth:`~repro.api.TuningSession.step_workload_round` protocol.
        """
        training = (
            workload_round.pdtool_training_queries
            if workload_round.invoke_pdtool
            else None
        )
        return self.step(
            {tid: workload_round.queries for tid in self.tenant_ids},
            training_queries=training,
            is_shift_round=workload_round.is_shift_round,
            round_number=workload_round.round_number,
            events={tid: workload_round.events for tid in self.tenant_ids}
            if workload_round.events
            else None,
        )

    # ------------------------------------------------------------------ #
    # batched recommendation internals
    # ------------------------------------------------------------------ #
    def _pool_tuner(self, tenant_id: str) -> "MabTuner | None":
        """The tenant's tuner iff it can be scored through the pool protocol."""
        tuner = self._sessions[tenant_id].tuner
        if getattr(tuner, "supports_batched_scoring", False):
            return tuner  # type: ignore[return-value]
        return None

    def _adopt_batched_recommendations(
        self, tenant_ids: list[str], round_numbers: Mapping[str, int | None]
    ) -> None:
        """One vectorized scoring pass feeding many sessions' next rounds.

        Replays exactly the per-session operation sequence for each tenant —
        ``begin_round`` (QoI window, arm refresh, alpha), context build,
        UCB scores, ``complete_round`` (tie-break draw, oracle selection) —
        with only the score computation fused across tenants, which is
        bit-identical by :func:`batch_upper_confidence_scores`'s contract.
        The adopted recommendation carries the tuner-measured wall time, so
        no clock is read outside the sanctioned instrumentation path.
        """
        open_pools: list[tuple[str, MabTuner, PoolRound]] = []
        finished: dict[str, Recommendation] = {}
        for tenant_id in tenant_ids:
            session = self._sessions[tenant_id]
            tuner = self._pool_tuner(tenant_id)
            assert tuner is not None
            round_number = round_numbers.get(tenant_id)
            pool = tuner.begin_round(
                round_number if round_number is not None else session.round_number + 1
            )
            if pool.arms is None:
                finished[tenant_id] = tuner.complete_round(pool, None)
            else:
                tuner.pool_contexts(pool)
                open_pools.append((tenant_id, tuner, pool))
        if open_pools:
            scorers = [tuner.bandit.scorer() for _, tuner, _ in open_pools]
            blocks: list[np.ndarray] = []
            for _, _, pool in open_pools:
                assert pool.contexts is not None
                blocks.append(pool.contexts)
            alphas = [pool.alpha for _, _, pool in open_pools]
            all_scores = batch_upper_confidence_scores(scorers, blocks, alphas)
            for (tenant_id, tuner, pool), scores in zip(open_pools, all_scores):
                finished[tenant_id] = tuner.complete_round(pool, scores)
        for tenant_id in tenant_ids:
            recommendation = finished[tenant_id]
            self._sessions[tenant_id].adopt_recommendation(
                recommendation,
                round_number=round_numbers.get(tenant_id),
                wall_seconds=recommendation.recommendation_seconds,
            )
