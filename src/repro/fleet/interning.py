"""Spec-keyed database interning: materialise each distinct spec once.

Fleet startup used to be O(tenants) in the most expensive operation we have —
sampling benchmark tables and building optimiser statistics — even when every
tenant runs the same benchmark at the same scale.  The interner memoises
materialisation on :meth:`~repro.api.DatabaseSpec.intern_key` and hands each
tenant a :meth:`~repro.engine.Database.tenant_view`: a clone sharing the
immutable table/statistics snapshot while owning its index catalog and cost
model, so tenants tune independently on shared read-only state.
"""

from __future__ import annotations

from repro.api.competition import DatabaseSpec
from repro.engine.catalog import Database

__all__ = ["DatabaseInterner"]


class DatabaseInterner:
    """Memo cache mapping database-spec identities to statistics snapshots.

    ``misses`` counts actual materialisations, ``hits`` the tenants served
    from an existing snapshot — 100 identical tenants cost ``misses == 1``,
    ``hits == 99``.  The pristine snapshots themselves never tune (no tenant
    ever holds one directly); every caller gets a fresh
    :meth:`~repro.engine.Database.tenant_view`.
    """

    def __init__(self) -> None:
        self._snapshots: dict[tuple[object, ...], Database] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._snapshots)

    def database_for(self, spec: DatabaseSpec) -> Database:
        """A tenant-private view of the (shared, memoised) database for ``spec``."""
        key = spec.intern_key()
        snapshot = self._snapshots.get(key)
        if snapshot is None:
            self.misses += 1
            snapshot = spec.create()
            self._snapshots[key] = snapshot
        else:
            self.hits += 1
        return snapshot.tenant_view()
