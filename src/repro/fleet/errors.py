"""Fleet error surface, mirroring the tuner/backend registry conventions."""

from __future__ import annotations

from typing import Iterable

__all__ = ["DuplicateTenantError", "UnknownTenantError"]


class UnknownTenantError(KeyError, ValueError):
    """Raised for a tenant id the fleet does not know.

    Subclasses both :class:`KeyError` and :class:`ValueError` to match the
    :class:`repro.api.UnknownTunerError` /
    :class:`repro.engine.UnknownBackendError` convention, so the same
    ``except`` clauses handle lookups against any of the registries.  The
    message lists every registered tenant id.
    """

    # KeyError.__str__ reprs the message (extra quotes); render it plainly.
    __str__ = Exception.__str__

    def __init__(self, tenant_id: str, known_tenants: Iterable[str]) -> None:
        known = ", ".join(sorted(known_tenants)) or "none registered"
        super().__init__(
            f"unknown tenant {tenant_id!r}; registered tenants: {known}"
        )
        self.tenant_id = tenant_id


class DuplicateTenantError(ValueError):
    """Raised when a tenant id is registered twice on the same fleet.

    Tenant ids key the fleet's deterministic result merge; silently replacing
    an existing session would discard its learned bandit state, so the fleet
    refuses instead.
    """

    def __init__(self, tenant_id: str) -> None:
        super().__init__(
            f"tenant {tenant_id!r} is already registered; "
            "tenant ids must be unique within a fleet"
        )
        self.tenant_id = tenant_id
