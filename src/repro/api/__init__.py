"""``repro.api`` — the public surface of the reproduction.

Everything a downstream caller needs lives here:

* the tuner protocol — :class:`Tuner`, :class:`Recommendation`;
* the tuner registry — :func:`register_tuner`, :func:`create_tuner`,
  :class:`TunerSpec`, :func:`registered_tuner_names`;
* the storage-backend registry — :class:`BackendProfile`,
  :func:`register_backend`, :func:`get_backend`,
  :func:`registered_backend_names` — selecting the cost-model tier
  (``hdd``/``ssd``/``inmemory``/``cloud``) a database is priced on, via
  ``DatabaseSpec(backend=...)`` or ``SimulationOptions(backend=...)``,
  including *per table*: ``table_backends={"lineitem": "inmemory"}`` or a
  declarative :class:`TieredBackend` hot/cold split, in the same three
  spellings;
* session-based tuning — :class:`TuningSession` with its explicit
  ``recommend() / execute(queries) / observe()`` cycle and one-shot
  ``step(queries)``, for callers streaming their own workload;
* the scoring surface — :class:`ScoringConfig` is the single spelling of
  arm-pool scoring behaviour (strategy, per-shard top-k, worker processes,
  fleet batching), accepted by ``MabConfig(scoring=...)``,
  ``SimulationOptions(scoring=...)`` and ``FleetConfig(scoring=...)`` and
  backed by the packed shared-memory scoring core
  (:mod:`repro.core.scoring`); :class:`ScoringStats` is the per-round
  diagnostic (``MabTuner.last_scoring_stats``), and the error surface is
  :class:`UnknownScoringStrategyError` /
  :class:`ScoringNotSupportedError`.  The legacy
  ``shard_by``/``shard_top_k``/``shard_workers``/``batch_scoring`` knobs
  are :class:`DeprecationWarning` shims that normalise into it;
* batch drivers — :func:`run_simulation` over pre-materialised workload
  rounds and :func:`run_competition` racing several tuners (optionally
  across processes) with deterministic report merging;
* the report containers — :class:`RunReport`, :class:`RoundReport`,
  :class:`FleetSummary` — and the safety layer pairing tuned runs against
  the NoIndex baseline: :class:`SafetyReport`, :func:`safety_reports`,
  :func:`rank_by_safety`, :class:`MissingBaselineError`;
* multi-tenant tuning — :class:`TuningFleet` multiplexing thousands of
  sessions per process with shared database snapshots and batched bandit
  scoring, plus its recipes (:class:`TenantSpec`, :class:`FleetConfig`),
  interner (:class:`DatabaseInterner`) and error surface
  (:class:`UnknownTenantError`, :class:`DuplicateTenantError`); these
  resolve lazily from :mod:`repro.fleet`, which builds on the session
  layer.

The experiment harness (:mod:`repro.harness`) reproduces the paper's tables
and figures *on top of* this API; nothing there is required to tune a
workload.
"""

from repro.engine.backend import (
    BackendProfile,
    TieredBackend,
    UnknownBackendError,
    UnknownPlacementTableError,
    get_backend,
    register_backend,
    registered_backend_names,
)
from repro.harness.metrics import (
    MissingBaselineError,
    RoundReport,
    RunReport,
    SafetyReport,
    rank_by_safety,
    safety_reports,
)
from repro.core.scoring import (
    ScoringConfig,
    ScoringNotSupportedError,
    ScoringStats,
    UnknownScoringStrategyError,
)
from repro.interface import Recommendation, Tuner

from .registry import (
    TunerSpec,
    UnknownTunerError,
    create_tuner,
    register_tuner,
    registered_tuner_names,
)
from .session import (
    DatabaseEvent,
    SimulationOptions,
    SimulationTrace,
    TuningSession,
    execute_round,
    run_simulation,
)
from .competition import CompetitionEntry, DatabaseSpec, run_competition

#: Names re-exported from :mod:`repro.fleet`.  Resolved lazily (PEP 562):
#: the fleet builds on this package's session layer, so an eager import here
#: would be circular; deferring it keeps both import orders working.
_FLEET_EXPORTS = frozenset(
    {
        "DatabaseInterner",
        "DuplicateTenantError",
        "FleetConfig",
        "FleetSummary",
        "TenantSpec",
        "TuningFleet",
        "UnknownTenantError",
    }
)

__all__ = [
    "BackendProfile",
    "CompetitionEntry",
    "DatabaseEvent",
    "DatabaseInterner",
    "DatabaseSpec",
    "DuplicateTenantError",
    "FleetConfig",
    "FleetSummary",
    "MissingBaselineError",
    "Recommendation",
    "RoundReport",
    "RunReport",
    "SafetyReport",
    "ScoringConfig",
    "ScoringNotSupportedError",
    "ScoringStats",
    "SimulationOptions",
    "SimulationTrace",
    "TenantSpec",
    "TieredBackend",
    "Tuner",
    "TunerSpec",
    "TuningFleet",
    "TuningSession",
    "UnknownBackendError",
    "UnknownPlacementTableError",
    "UnknownScoringStrategyError",
    "UnknownTenantError",
    "UnknownTunerError",
    "create_tuner",
    "execute_round",
    "get_backend",
    "rank_by_safety",
    "register_backend",
    "register_tuner",
    "registered_backend_names",
    "registered_tuner_names",
    "run_competition",
    "run_simulation",
    "safety_reports",
]


def __getattr__(name: str) -> object:
    if name not in _FLEET_EXPORTS:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    value: object
    if name == "FleetSummary":
        from repro.harness import metrics

        value = metrics.FleetSummary
    else:
        import repro.fleet

        value = getattr(repro.fleet, name)
    globals()[name] = value  # cache: resolve each name at most once
    return value


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(__all__))
