"""Competitions: several tuners racing over the same workload, optionally in parallel.

:func:`run_competition` runs every entry as its own :class:`TuningSession` on
its own identically-seeded database.  Because the sessions share nothing (the
workload is materialised once, read-only), they fan out across processes with
``workers > 1`` and the merged ``{label: RunReport}`` mapping is deterministic
— same reports, same order — whatever the worker count.

Parallel entries must be picklable: name the tuner by its registry name (or a
``(name, TunerSpec)`` pair) and build databases through a picklable factory
such as :class:`DatabaseSpec`.  Arbitrary ``Callable[[Database], Tuner]``
entries are still accepted for sequential runs.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Mapping, Union

import multiprocessing

from repro.engine.backend import BackendProfile, PlacementLike
from repro.engine.catalog import Database
from repro.harness.metrics import RunReport
from repro.interface import Tuner

from .registry import TunerSpec, create_tuner
from .session import SimulationOptions, run_simulation

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.workloads.generator import WorkloadRound

__all__ = ["CompetitionEntry", "DatabaseSpec", "run_competition"]

#: One competitor: a registry name, a (name, spec) pair, or a raw factory.
CompetitionEntry = Union[str, "tuple[str, TunerSpec]", Callable[[Database], Tuner]]


@dataclass(frozen=True)
class DatabaseSpec:
    """A picklable recipe for identically-seeded benchmark databases.

    Calling the spec (or :meth:`create`) materialises a fresh database, so it
    slots in anywhere a ``database_factory`` is expected — including across
    process boundaries, where closures cannot travel.  ``backend`` names the
    default storage tier the database's cost model prices operators with (a
    registered profile name or a :class:`~repro.engine.BackendProfile`
    instance — both pickle cleanly); ``None`` keeps the default ``hdd`` tier.
    ``table_backends`` places individual tables on their own tiers — a
    ``{table: backend}`` mapping of overrides on top of ``backend``, or a
    :class:`~repro.engine.TieredBackend` hot/cold split (which names both
    tiers itself; don't combine with ``backend``) — and pickles across
    workers in every spelling.
    """

    benchmark_name: str
    scale_factor: float | None = None
    sample_rows: int = 4000
    seed: int = 7
    memory_budget_multiplier: float | None = 1.0
    backend: "str | BackendProfile | None" = None
    table_backends: PlacementLike = None

    def intern_key(self) -> "tuple[object, ...]":
        """A hashable identity for the database this spec materialises.

        Two specs with equal intern keys build bit-identical databases —
        the key is every field, with the ``table_backends`` mapping (the one
        unhashable spelling) rendered as sorted items.  The fleet's
        :class:`~repro.fleet.DatabaseInterner` memoises materialisation on
        this key so N identical tenants share one statistics snapshot.
        """
        placement: object = self.table_backends
        if isinstance(placement, Mapping):
            placement = tuple(sorted(placement.items()))
        return (
            self.benchmark_name,
            self.scale_factor,
            self.sample_rows,
            self.seed,
            self.memory_budget_multiplier,
            self.backend,
            placement,
        )

    def __hash__(self) -> int:
        # The generated hash would choke on a dict-valued table_backends;
        # hash the normalised intern key instead (consistent with field
        # equality, since the key is a faithful rendering of every field).
        return hash(self.intern_key())

    def create(self) -> Database:
        from repro.workloads.registry import get_benchmark

        return get_benchmark(self.benchmark_name).create_database(
            scale_factor=self.scale_factor,
            sample_rows=self.sample_rows,
            seed=self.seed,
            memory_budget_multiplier=self.memory_budget_multiplier,
            backend=self.backend,
            table_backends=self.table_backends,
        )

    def __call__(self) -> Database:
        return self.create()


def _build_tuner(entry: CompetitionEntry, database: Database) -> Tuner:
    if isinstance(entry, str):
        return create_tuner(entry, database)
    if isinstance(entry, tuple):
        name, spec = entry
        return create_tuner(name, database, spec)
    return entry(database)


def _run_entry(
    label: str,
    entry: CompetitionEntry,
    database_factory: Callable[[], Database],
    workload_rounds: "list[WorkloadRound]",
    options: SimulationOptions | None,
) -> RunReport:
    database = database_factory()
    tuner = _build_tuner(entry, database)
    trace = run_simulation(database, tuner, workload_rounds, options)
    trace.report.tuner_name = label
    return trace.report


def _worker_count(workers: int, n_entries: int) -> int:
    if workers <= 0:
        workers = os.cpu_count() or 1
    return max(1, min(workers, n_entries))


def run_competition(
    database_factory: Callable[[], Database],
    tuners: Mapping[str, CompetitionEntry],
    workload_rounds: "list[WorkloadRound]",
    options: SimulationOptions | None = None,
    workers: int = 1,
) -> dict[str, RunReport]:
    """Run several tuners over the *same* workload, each on a fresh database.

    Args:
        database_factory: Builds identically seeded databases so that every
            tuner faces the same data; must be picklable (e.g. a
            :class:`DatabaseSpec`) when ``workers > 1``.
        tuners: Report labels mapped to competition entries — a registry
            name, a ``(name, TunerSpec)`` pair, or (sequential runs only) a
            raw ``Callable[[Database], Tuner]``.
        workload_rounds: The shared workload, materialised once (against any
            of those identical databases).
        options: Execution-layer options applied to every session.
        workers: ``> 1`` fans the sessions out across that many processes;
            ``0`` uses every CPU; ``1`` (default) runs sequentially.

    Returns:
        ``{label: RunReport}`` keyed and ordered by ``tuners`` regardless of
        completion order, so parallel and sequential runs merge identically.

    Raises:
        ValueError: When ``workers > 1`` is combined with any
            ``options.on_round`` callback — per-round callbacks cannot cross
            process boundaries.
        repro.api.UnknownTunerError: For entry names nobody registered.
    """
    workers = _worker_count(workers, len(tuners))
    if workers <= 1:
        return {
            label: _run_entry(label, entry, database_factory, workload_rounds, options)
            for label, entry in tuners.items()
        }

    if options is not None and options.on_round is not None:
        raise ValueError(
            "per-round callbacks cannot cross process boundaries; "
            "use workers=1 or drop options.on_round"
        )
    # The platform-default start method: fork on Linux (fast), spawn where
    # forking a multithreaded/Objective-C parent is unsafe.  Parallel entries
    # are required to be picklable either way.
    context = multiprocessing.get_context()
    with ProcessPoolExecutor(max_workers=workers, mp_context=context) as pool:
        futures = {
            label: pool.submit(
                _run_entry, label, entry, database_factory, workload_rounds, options
            )
            for label, entry in tuners.items()
        }
        return {label: future.result() for label, future in futures.items()}
