"""The pluggable tuner registry.

Tuners register themselves by display name (plus optional aliases) and are
built through :func:`create_tuner`, which replaces the harness's old
hardcoded ``if/elif`` factory.  Registration is open: downstream packages add
their own tuner with::

    from repro.api import Tuner, TunerSpec, register_tuner

    @register_tuner("MyTuner")
    class MyTuner(Tuner):
        @classmethod
        def from_spec(cls, database, spec: TunerSpec) -> "MyTuner":
            return cls(database)
        ...

and it immediately becomes usable everywhere a tuner name is accepted —
``create_tuner``, :func:`repro.api.run_competition` entries and the
experiment drivers in :mod:`repro.harness.experiments`.

:class:`TunerSpec` carries the per-experiment context that used to be
threaded positionally (``benchmark_name``/``workload_type``) so factories
that specialise per regime (PDTool's TPC-DS dynamic-random time cap) get it
in one typed, picklable object.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, overload

from repro.interface import Tuner

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.catalog import Database

__all__ = [
    "TunerFactory",
    "TunerSpec",
    "UnknownTunerError",
    "create_tuner",
    "register_tuner",
    "registered_tuner_names",
]


@dataclass(frozen=True)
class TunerSpec:
    """Typed, picklable context handed to every tuner factory.

    The spec describes *where* the tuner will run, not *how* it learns —
    per-algorithm hyper-parameters stay in each tuner's own config object.
    """

    #: Benchmark the tuner will face (``tpch``, ``tpcds``, ...; "" if ad hoc).
    benchmark_name: str = ""
    #: Workload regime (``static``, ``shifting`` or ``random``).
    workload_type: str = "static"
    #: Cap on one PDTool invocation's modelled time when tuning TPC-DS
    #: dynamic random, matching the paper's 1-hour restriction.
    pdtool_invocation_limit_seconds: float | None = 3600.0


#: A factory builds a ready-to-run tuner for one database and spec.
TunerFactory = Callable[["Database", TunerSpec], Tuner]


class UnknownTunerError(KeyError, ValueError):
    """Raised for a tuner name nobody registered.

    Subclasses both :class:`KeyError` (what the legacy ``make_tuner`` raised)
    and :class:`ValueError` so existing ``except`` clauses keep working.
    """

    # KeyError.__str__ reprs the message (extra quotes); render it plainly.
    __str__ = Exception.__str__


_REGISTRY: dict[str, TunerFactory] = {}
#: Primary display names in registration order (for error messages/listings).
_PRIMARY_NAMES: list[str] = []


def _normalise(name: str) -> str:
    return name.strip().lower().replace("-", "_")


def _register(names: tuple[str, ...], factory: TunerFactory) -> None:
    primary = names[0]
    if _normalise(primary) not in (_normalise(n) for n in _PRIMARY_NAMES):
        _PRIMARY_NAMES.append(primary)
    for name in names:
        _REGISTRY[_normalise(name)] = factory


@overload
def register_tuner(name: str, *aliases: str) -> Callable[[type[Tuner]], type[Tuner]]: ...


@overload
def register_tuner(name: str, *aliases: str, factory: TunerFactory) -> TunerFactory: ...


def register_tuner(
    name: str, *aliases: str, factory: TunerFactory | None = None
) -> "Callable[[type[Tuner]], type[Tuner]] | TunerFactory":
    """Register a tuner under ``name`` (and ``aliases``).

    Use as a class decorator (the class must offer ``from_spec(database,
    spec)``, which :class:`repro.interface.Tuner` provides by default)::

        @register_tuner("MAB")
        class MabTuner(Tuner): ...

    or call directly with an explicit ``factory`` for variants that are not
    their own class (e.g. DDQN-SC)::

        register_tuner("DDQN_SC", factory=lambda db, spec: DDQNTuner(db, sc_config))
    """
    if factory is not None:
        _register((name, *aliases), factory)
        return factory

    def decorate(cls: type[Tuner]) -> type[Tuner]:
        _register((name, *aliases), cls.from_spec)
        return cls

    return decorate


def _ensure_builtin_tuners() -> None:
    """Import the modules whose import side effect registers the built-ins.

    Lazy so that :mod:`repro.api` stays importable from inside those very
    modules (they decorate their classes with :func:`register_tuner`).
    """
    import repro.baselines  # noqa: F401  (registers NoIndex, PDTool, DDQN, DDQN_SC)
    import repro.core.tuner  # noqa: F401  (registers MAB)


def registered_tuner_names() -> list[str]:
    """Primary display names of every registered tuner, registration order."""
    _ensure_builtin_tuners()
    return list(_PRIMARY_NAMES)


def create_tuner(name: str, database: "Database", spec: TunerSpec | None = None) -> Tuner:
    """Build a registered tuner by name for ``database``.

    Raises :class:`UnknownTunerError` (a ``ValueError``) naming the unknown
    tuner and listing every registered name.
    """
    _ensure_builtin_tuners()
    factory = _REGISTRY.get(_normalise(name))
    if factory is None:
        known = ", ".join(registered_tuner_names())
        raise UnknownTunerError(
            f"unknown tuner {name!r}; registered tuners: {known}"
        )
    return factory(database, spec if spec is not None else TunerSpec())
