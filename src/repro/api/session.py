"""Session-based tuning: drive one tuner round by round over any query stream.

:class:`TuningSession` owns the ``(Database, Tuner, Planner, Executor)``
quadruple and exposes the paper's round protocol as an explicit step cycle:

1. :meth:`TuningSession.recommend` — the tuner proposes the configuration for
   the upcoming (unseen) round;
2. :meth:`TuningSession.execute` — the database transitions to that
   configuration (creation time charged) and the caller's queries are planned
   and executed under it (execution time charged);
3. :meth:`TuningSession.observe` — the tuner receives the executed queries,
   their observed statistics and the configuration change, closing the round.

:meth:`TuningSession.step` runs one full cycle.  Because the caller supplies
the queries of each round at :meth:`execute` time, a session can serve a live
query stream — there is no requirement to pre-materialise a workload.
:func:`run_simulation` is exactly that: a thin loop stepping a session over a
list of :class:`~repro.workloads.generator.WorkloadRound` objects.

Each tuner gets its own database instance (constructed identically) so that
materialised indexes never leak between competitors, while a workload
sequence can be materialised once and shared so every tuner sees exactly the
same query instances.
"""

from __future__ import annotations

import time
from dataclasses import InitVar, dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Iterable, Protocol

from repro.core.config import _UNSET, _warn_legacy_scoring_knob
from repro.core.scoring import (
    ConfigurableScoring,
    ScoringConfig,
    ScoringNotSupportedError,
)
from repro.engine.backend import BackendProfile, PlacementLike, TieredBackend
from repro.engine.catalog import ConfigurationChange, Database
from repro.engine.execution import ExecutionResult, Executor
from repro.engine.query import Query
from repro.harness.metrics import RoundReport, RunReport
from repro.interface import Recommendation, Tuner
from repro.optimizer.planner import Planner

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.workloads.generator import WorkloadRound

__all__ = [
    "DatabaseEvent",
    "SimulationOptions",
    "SimulationTrace",
    "TuningSession",
    "execute_round",
    "run_simulation",
]


class DatabaseEvent(Protocol):
    """A workload-visible environment change applied to a session's database.

    The stress generators (:mod:`repro.workloads.stress`) attach frozen event
    specs — tier migrations, table growth — to
    :attr:`~repro.workloads.generator.WorkloadRound.events`; anything with an
    ``apply(database)`` method satisfies the protocol.
    """

    def apply(self, database: Database) -> object: ...  # pragma: no cover - protocol


@dataclass(frozen=True)
class SimulationOptions:
    """Execution-layer options for one session or simulation run.

    Attributes:
        noise_sigma: Relative noise applied to simulated execution times.
        executor_seed: Seed of the executor's noise stream (sessions built
            with the same options replay identically).
        benchmark_name: Label recorded in the resulting :class:`RunReport`.
        workload_type: Workload-regime label for the report (``static``,
            ``shifting`` or ``random``).
        on_round: Optional per-round callback receiving the
            :class:`RoundReport` and the round's execution results.  Not
            picklable across processes — incompatible with
            ``run_competition(workers>1)``.
        keep_results: Collect per-round execution results in the trace.
        scoring: Arm-pool scoring configuration
            (:class:`~repro.core.scoring.ScoringConfig`) installed on the
            tuner before the first round via its ``configure_scoring`` method
            (a lasting config change, like ``backend``).  ``None`` (the
            default) leaves the tuner's own scoring configuration untouched.
            Handing a ``scoring`` to a tuner that does not score a candidate
            pool — NoIndex, PDTool, the DDQN agents — raises
            :class:`~repro.core.scoring.ScoringNotSupportedError` instead of
            silently ignoring the options.
        shard_by: Deprecated spelling of ``scoring`` (``"table"`` or
            ``"hash"`` builds a default :class:`ScoringConfig` of that
            strategy; ``None`` keeps the legacy "leave the tuner untouched"
            no-op).  Kept for compatibility with one difference from
            ``scoring``: tuners without a ``configure_sharding`` method
            ignore the knob silently, as they always did.
        backend: Storage-backend profile applied to the session's database
            before the first round (a registered name such as ``"hdd"``,
            ``"ssd"``, ``"inmemory"``, ``"cloud"``, or a
            :class:`~repro.engine.BackendProfile` instance).  ``None`` keeps
            whatever backend the database was built with.  Like ``shard_by``
            this is a lasting change — the session calls
            :meth:`repro.engine.Database.set_backend` on *its* database —
            and both spellings pickle cleanly across
            ``run_competition(workers>1)`` boundaries.
        table_backends: Per-table placement applied to the session's database
            after ``backend`` (a ``{table: backend}`` mapping of overrides,
            or a :class:`~repro.engine.TieredBackend` hot/cold split that
            names both tiers itself — combining the latter with ``backend``
            raises ``ValueError``).  ``None`` keeps the database's current
            placement.
            Applied via :meth:`repro.engine.Database.set_table_backends` (a
            lasting change, like ``backend``); every spelling pickles across
            ``run_competition(workers>1)`` boundaries.
        apply_events: Whether :meth:`TuningSession.step_workload_round`
            applies a round's workload-visible environment events (tier
            migrations, table growth — see :mod:`repro.workloads.stress`)
            to the session's database before recommending.  Defaults to
            ``True``; disable to replay a stress sequence on a frozen
            environment.
    """

    noise_sigma: float = 0.03
    executor_seed: int = 11
    benchmark_name: str = "benchmark"
    workload_type: str = "static"
    #: Optional per-round callback (round report, execution results).
    # reprolint: disable=RL002 -- in-process observer, never pickled: run_competition rejects workers>1 when on_round is set
    on_round: Callable[[RoundReport, list[ExecutionResult]], None] | None = None
    #: Collect per-round execution results in the returned trace.
    keep_results: bool = False
    #: Deprecated spelling of :attr:`scoring` (``None`` = leave the tuner
    #: untouched); normalises into it with a :class:`DeprecationWarning`.
    shard_by: InitVar[Any] = _UNSET
    #: Storage-backend profile for the session's database (``None`` = keep).
    backend: "str | BackendProfile | None" = None
    #: Per-table placement for the session's database (``None`` = keep).
    table_backends: PlacementLike = None
    #: Apply :attr:`WorkloadRound.events <repro.workloads.generator.WorkloadRound.events>`
    #: (tier migrations, table growth — see :mod:`repro.workloads.stress`) to
    #: the session's database before each round's recommendation.  Disable to
    #: replay a stress sequence as plain queries on a frozen environment.
    apply_events: bool = True
    #: Arm-pool scoring configuration installed on the tuner (``None`` = keep).
    scoring: ScoringConfig | None = None
    #: Whether :attr:`scoring` came from the deprecated ``shard_by`` knob —
    #: the legacy spelling keeps its historical semantics (partial config
    #: update, silently ignored by non-pool tuners).
    scoring_from_shard_by: bool = field(default=False, repr=False, compare=False)

    def __post_init__(self, shard_by: Any) -> None:
        if self.scoring is not None:
            # "scoring wins": dataclasses.replace() re-feeds nothing here
            # (InitVar reads back as the _UNSET class default), but an
            # explicit ScoringConfig always beats the legacy knob.
            return
        if shard_by is _UNSET:
            return
        _warn_legacy_scoring_knob("SimulationOptions", "shard_by")
        if shard_by is None:
            # Legacy semantics: shard_by=None leaves the tuner untouched.
            return
        object.__setattr__(self, "scoring", ScoringConfig(strategy=shard_by))
        object.__setattr__(self, "scoring_from_shard_by", True)


@dataclass
class SimulationTrace:
    """Extended simulation output: the report plus optional per-round details."""

    report: RunReport
    results_by_round: list[list[ExecutionResult]] = field(default_factory=list)


def execute_round(
    database: Database,
    planner: Planner,
    executor: Executor,
    queries: list[Query],
) -> tuple[list[ExecutionResult], float]:
    """Plan and execute one round's queries under the materialised configuration.

    Args:
        database: The database whose current configuration the plans use.
        planner: Access-path planner bound to ``database``.
        executor: Executor bound to ``database`` (owns the noise stream).
        queries: The round's queries, executed in order.

    Returns:
        ``(results, total_seconds)`` — one :class:`ExecutionResult` per query
        and the summed model execution time.
    """
    results: list[ExecutionResult] = []
    total_seconds = 0.0
    for query in queries:
        plan = planner.plan(query)
        result = executor.execute(plan)
        results.append(result)
        total_seconds += result.total_seconds
    return results, total_seconds


class TuningSession:
    """One tuner driving one database, one round at a time.

    The session enforces the ``recommend -> execute -> observe`` cycle (a
    :class:`RuntimeError` names the expected phase on misuse) and accumulates
    a :class:`RunReport` identical in shape to the batch driver's, so
    sessions, :func:`run_simulation` and competitions all feed the same
    reporting and figure code.
    """

    def __init__(
        self,
        database: Database,
        tuner: Tuner,
        options: SimulationOptions | None = None,
    ) -> None:
        """Wire one tuner to one database.

        Args:
            database: The database the session tunes (the session owns its
                configuration from here on).
            tuner: Any :class:`~repro.interface.Tuner`; when
                ``options.scoring`` is set and the tuner satisfies the
                :class:`~repro.core.scoring.ConfigurableScoring` protocol
                (the MAB tuner does), the configuration is installed on the
                tuner before the first round (a lasting config change;
                ``options.scoring=None`` leaves the tuner's current scoring
                mode as-is).
            options: Execution-layer options; defaults are the paper's.

        Raises:
            repro.core.scoring.ScoringNotSupportedError: If
                ``options.scoring`` is set but the tuner does not score a
                candidate pool (NoIndex, PDTool, the DDQN agents).  The
                deprecated ``options.shard_by`` spelling keeps its historical
                silent-ignore behaviour for such tuners.
            ValueError: If ``options.scoring`` (or the deprecated
                ``options.shard_by``) names an unknown strategy, or if
                ``options.backend`` is combined with a
                :class:`~repro.engine.TieredBackend` placement (which names
                both tiers itself).
            repro.engine.UnknownBackendError: If ``options.backend`` or a
                backend inside ``options.table_backends`` names a profile
                nobody registered.
            repro.engine.UnknownPlacementTableError: If
                ``options.table_backends`` names a table the database does
                not have.
        """
        self.database = database
        self.tuner = tuner
        self.options = options or SimulationOptions()
        if self.options.backend is not None and isinstance(
            self.options.table_backends, TieredBackend
        ):
            # Mirror the Database constructor: a TieredBackend names both
            # tiers itself, so a separate backend would be silently dropped.
            raise ValueError(
                "a TieredBackend names both tiers itself; "
                "set options.backend or options.table_backends, not both"
            )
        if self.options.backend is not None:
            database.set_backend(self.options.backend)
        if self.options.table_backends is not None:
            database.set_table_backends(self.options.table_backends)
        scoring = self.options.scoring
        if scoring is not None:
            if self.options.scoring_from_shard_by:
                # The deprecated shard_by spelling: a *partial* update (only
                # the strategy changes; top-k/workers keep the tuner's own
                # values) that non-pool tuners ignore silently, exactly as
                # the legacy knob always behaved.
                configure_sharding = getattr(tuner, "configure_sharding", None)
                if configure_sharding is not None:
                    configure_sharding(scoring.shard_by)
            elif isinstance(tuner, ConfigurableScoring):
                tuner.configure_scoring(scoring)
            else:
                raise ScoringNotSupportedError(
                    f"tuner {tuner.name!r} does not score a candidate arm pool; "
                    "SimulationOptions(scoring=...) requires a tuner with "
                    "configure_scoring (the MAB tuner)"
                )
        self.planner = Planner(database)
        self.executor = Executor(
            database,
            noise_sigma=self.options.noise_sigma,
            seed=self.options.executor_seed,
        )
        self.report = RunReport(
            tuner_name=tuner.name,
            benchmark_name=self.options.benchmark_name,
            workload_type=self.options.workload_type,
        )
        self.results_by_round: list[list[ExecutionResult]] = []
        self.round_number = 0
        self._phase = "recommend"
        self._recommendation: Recommendation | None = None
        self._change: ConfigurationChange | None = None
        self._queries: list[Query] = []
        self._results: list[ExecutionResult] = []
        self._execution_seconds = 0.0
        self._wall_recommend = 0.0
        self._wall_apply = 0.0
        self._wall_execute = 0.0

    # ------------------------------------------------------------------ #
    # the step cycle
    # ------------------------------------------------------------------ #
    def _require_phase(self, phase: str) -> None:
        if self._phase != phase:
            raise RuntimeError(
                f"out-of-order session call: expected {self._phase}(), got {phase}()"
            )

    def recommend(
        self,
        training_queries: list[Query] | None = None,
        round_number: int | None = None,
    ) -> Recommendation:
        """Start a round: the tuner proposes the configuration to materialise.

        Args:
            training_queries: Only passed on rounds where the experiment
                protocol invokes an offline tool (PDTool); online tuners
                ignore it.
            round_number: Overrides the session's running counter (defaults
                to the next round).

        Returns:
            The tuner's :class:`~repro.interface.Recommendation`; the
            configuration is materialised by the following :meth:`execute`.

        Raises:
            RuntimeError: If the session is not in the ``recommend`` phase.
        """
        self._require_phase("recommend")
        self.round_number = (
            round_number if round_number is not None else self.round_number + 1
        )
        started = time.perf_counter()
        self._recommendation = self.tuner.recommend(
            self.round_number, training_queries=training_queries
        )
        self._wall_recommend = time.perf_counter() - started
        self._phase = "execute"
        return self._recommendation

    def adopt_recommendation(
        self,
        recommendation: Recommendation,
        round_number: int | None = None,
        wall_seconds: float = 0.0,
    ) -> Recommendation:
        """Start a round from a recommendation computed outside the session.

        The fleet's batched scoring pass drives the tuner through its pool
        protocol directly (one vectorised pass over many tenants) and then
        hands each tuner's finished :class:`~repro.interface.Recommendation`
        back to its session here, so the phase machine, round counter and
        report accounting stay exactly as if :meth:`recommend` had run.
        ``wall_seconds`` is the caller-attributed share of the batched pass's
        wall time (the fleet divides the stacked pass evenly across the
        tenants it scored).

        Raises:
            RuntimeError: If the session is not in the ``recommend`` phase.
        """
        self._require_phase("recommend")
        self.round_number = (
            round_number if round_number is not None else self.round_number + 1
        )
        self._recommendation = recommendation
        self._wall_recommend = wall_seconds
        self._phase = "execute"
        return self._recommendation

    def execute(self, queries: list[Query]) -> list[ExecutionResult]:
        """Materialise the pending recommendation, then run the round's queries.

        Args:
            queries: The round's workload — any query batch the caller
                produces (a live stream works; nothing is pre-materialised).

        Returns:
            One :class:`ExecutionResult` per query, in order.

        Raises:
            RuntimeError: If called before :meth:`recommend` (the session is
                not in the ``execute`` phase).
        """
        self._require_phase("execute")
        assert self._recommendation is not None
        started = time.perf_counter()
        self._change = self.database.apply_configuration(
            self._recommendation.configuration
        )
        after_apply = time.perf_counter()
        self._queries = list(queries)
        self._results, self._execution_seconds = execute_round(
            self.database, self.planner, self.executor, self._queries
        )
        self._wall_apply = after_apply - started
        self._wall_execute = time.perf_counter() - after_apply
        self._phase = "observe"
        return self._results

    def observe(self, is_shift_round: bool = False) -> RoundReport:
        """Close the round: feed observations back and account its costs.

        Args:
            is_shift_round: Marks the round as a known workload-shift
                boundary in the report (experiment bookkeeping only; tuners
                detect shifts themselves).

        Returns:
            The completed round's :class:`RoundReport`, also appended to
            :attr:`report`.

        Raises:
            RuntimeError: If called before :meth:`execute` (the session is
                not in the ``observe`` phase).
        """
        self._require_phase("observe")
        assert self._recommendation is not None and self._change is not None
        started = time.perf_counter()
        self.tuner.observe(self.round_number, self._queries, self._results, self._change)
        wall_observe = time.perf_counter() - started

        round_report = RoundReport(
            round_number=self.round_number,
            recommendation_seconds=self._recommendation.recommendation_seconds,
            creation_seconds=self._change.creation_seconds + self._change.drop_seconds,
            execution_seconds=self._execution_seconds,
            n_queries=len(self._queries),
            indexes_created=len(self._change.created),
            indexes_dropped=len(self._change.dropped),
            configuration_size=len(self.database.materialised_indexes),
            configuration_bytes=self.database.used_index_bytes,
            is_shift_round=is_shift_round,
            wall_recommend_seconds=self._wall_recommend,
            wall_apply_seconds=self._wall_apply,
            wall_execute_seconds=self._wall_execute,
            wall_observe_seconds=wall_observe,
        )
        self.report.rounds.append(round_report)
        if self.options.keep_results:
            self.results_by_round.append(self._results)
        if self.options.on_round is not None:
            self.options.on_round(round_report, self._results)

        self._recommendation = None
        self._change = None
        self._queries = []
        self._results = []
        self._phase = "recommend"
        return round_report

    def step(
        self,
        queries: list[Query],
        training_queries: list[Query] | None = None,
        is_shift_round: bool = False,
        round_number: int | None = None,
    ) -> RoundReport:
        """One full ``recommend -> execute -> observe`` cycle.

        Args:
            queries: The round's workload (see :meth:`execute`).
            training_queries: Offline-tool training workload, when the
                protocol provides one (see :meth:`recommend`).
            is_shift_round: Report bookkeeping (see :meth:`observe`).
            round_number: Overrides the running round counter.

        Returns:
            The completed round's :class:`RoundReport`.
        """
        self.recommend(training_queries, round_number=round_number)
        self.execute(queries)
        return self.observe(is_shift_round=is_shift_round)

    # ------------------------------------------------------------------ #
    # lifecycle and results
    # ------------------------------------------------------------------ #
    def apply_events(self, events: Iterable[DatabaseEvent]) -> None:
        """Apply workload-visible environment events to this session's database.

        Stress sequences (:mod:`repro.workloads.stress`) schedule tier
        migrations and table growth on their rounds; the driver applies them
        *before* the round's recommendation so the tuner faces the changed
        world immediately.  Only legal between rounds.

        Raises:
            RuntimeError: If called mid-round (the session must be in the
                ``recommend`` phase).
        """
        self._require_phase("recommend")
        for event in events:
            event.apply(self.database)

    def step_workload_round(self, workload_round: "WorkloadRound") -> RoundReport:
        """Step over one pre-materialised workload round (the batch protocol).

        When ``options.apply_events`` is set (the default) the round's
        :attr:`~repro.workloads.generator.WorkloadRound.events` are applied to
        the session's database first — see :meth:`apply_events`.
        """
        if self.options.apply_events and workload_round.events:
            self.apply_events(workload_round.events)
        training = (
            workload_round.pdtool_training_queries
            if workload_round.invoke_pdtool
            else None
        )
        return self.step(
            workload_round.queries,
            training_queries=training,
            is_shift_round=workload_round.is_shift_round,
            round_number=workload_round.round_number,
        )

    @property
    def trace(self) -> SimulationTrace:
        return SimulationTrace(report=self.report, results_by_round=self.results_by_round)

    def reset(self) -> None:
        """Forget everything: tuner state, materialised indexes and the report.

        After ``reset()`` the session replays from round 0 exactly as a fresh
        session over a fresh tuner would (the executor's noise stream restarts
        too).
        """
        self.tuner.reset()
        self.database.apply_configuration([])
        self.executor = Executor(
            self.database,
            noise_sigma=self.options.noise_sigma,
            seed=self.options.executor_seed,
        )
        self.report = RunReport(
            tuner_name=self.tuner.name,
            benchmark_name=self.options.benchmark_name,
            workload_type=self.options.workload_type,
        )
        self.results_by_round = []
        self.round_number = 0
        self._phase = "recommend"
        self._recommendation = None
        self._change = None
        self._queries = []
        self._results = []


def run_simulation(
    database: Database,
    tuner: Tuner,
    workload_rounds: "list[WorkloadRound]",
    options: SimulationOptions | None = None,
) -> SimulationTrace:
    """Run one tuner over a materialised workload sequence.

    A thin loop over :class:`TuningSession` — kept as the batch entry point
    for pre-materialised workloads and pinned by a parity test to reproduce
    the original driver's reports exactly.

    Args:
        database: The database to tune (typically built by a
            :class:`~repro.api.DatabaseSpec`).
        tuner: Any :class:`~repro.interface.Tuner` (see
            :func:`repro.api.create_tuner`).
        workload_rounds: Pre-materialised rounds (see
            :func:`repro.harness.build_workload_rounds` or the workload
            generators in :mod:`repro.workloads`).
        options: Execution-layer options (noise, seeds, labels, scoring).

    Returns:
        A :class:`SimulationTrace` with the run's :class:`RunReport` (and
        per-round results when ``options.keep_results`` is set).
    """
    session = TuningSession(database, tuner, options)
    for workload_round in workload_rounds:
        session.step_workload_round(workload_round)
    return session.trace
