"""DBA bandits reproduction: self-driving index tuning with multi-armed bandits.

This package reproduces the system described in "DBA bandits: Self-driving
index tuning under ad-hoc, analytical workloads with safety guarantees"
(ICDE 2021): a C²UCB contextual combinatorial bandit that selects secondary
indexes online from observed execution statistics, evaluated against a what-if
driven physical design tool (PDTool), a NoIndex baseline and DDQN
reinforcement-learning agents on TPC-H, TPC-H Skew, SSB, TPC-DS and IMDb/JOB
workloads.

Quick start::

    from repro import quickstart
    reports = quickstart()          # tiny TPC-H static experiment
    print(reports["MAB"].summary())

The supported programmatic surface is :mod:`repro.api` — sessions
(:class:`TuningSession`), the tuner registry (:func:`create_tuner` /
:func:`register_tuner`) and the simulation/competition drivers — re-exported
here for convenience.  See ``examples/`` for richer scenarios and
``benchmarks/`` for the scripts that regenerate every table and figure of the
paper.
"""

from __future__ import annotations

from .api import (
    DatabaseSpec,
    Recommendation,
    Tuner,
    TunerSpec,
    TuningSession,
    create_tuner,
    register_tuner,
    registered_tuner_names,
    run_competition,
    run_simulation,
)
from .core import C2UCB, MabConfig, MabTuner
from .engine import Database, IndexDefinition
from .harness import (
    ExperimentSettings,
    RunReport,
    run_workload_experiment,
    static_experiment,
)
from .workloads import get_benchmark

__version__ = "1.1.0"

__all__ = [
    "C2UCB",
    "Database",
    "DatabaseSpec",
    "ExperimentSettings",
    "IndexDefinition",
    "MabConfig",
    "MabTuner",
    "Recommendation",
    "RunReport",
    "Tuner",
    "TunerSpec",
    "TuningSession",
    "__version__",
    "create_tuner",
    "get_benchmark",
    "quickstart",
    "register_tuner",
    "registered_tuner_names",
    "run_competition",
    "run_simulation",
    "run_workload_experiment",
    "static_experiment",
]


def quickstart(benchmark_name: str = "tpch", rounds: int = 6) -> dict[str, RunReport]:
    """Run a small static experiment comparing NoIndex, PDTool and MAB.

    Intended as a two-line smoke test of the whole stack; see
    :mod:`repro.harness.experiments` for the full experiment entry points.
    """
    settings = ExperimentSettings.quick().with_overrides(static_rounds=rounds)
    return static_experiment(benchmark_name, settings)
