"""Compatibility re-export: the tuner interface lives in :mod:`repro.interface`.

It is defined at the top level of the package (rather than inside the harness)
so that the core tuner and the baselines can implement it without importing
the full experiment harness.
"""

from repro.interface import Recommendation, Tuner

__all__ = ["Recommendation", "Tuner"]
