"""Deprecated location of the tuner interface.

The tuner protocol is part of the public API: import
:class:`~repro.api.Tuner` and :class:`~repro.api.Recommendation` from
:mod:`repro.api` (their implementation home is :mod:`repro.interface`).
This shim re-exports them and warns.
"""

import warnings

from repro.interface import Recommendation, Tuner

warnings.warn(
    "repro.harness.interface is deprecated; import Tuner and Recommendation "
    "from repro.api instead",
    DeprecationWarning,
    stacklevel=2,
)

__all__ = ["Recommendation", "Tuner"]
