"""Human-readable reporting of experiment results.

Formats ASCII tables and CSV-like series that mirror the paper's tables and
figures: per-round convergence series (Figures 2, 4, 6, 8), total workload
time summaries (Figures 3, 5, 7), the time breakdown of Table I, the
database-size sweep of Table II, and the exploration-cost comparison of
Section V-B3.
"""

from __future__ import annotations

from .metrics import RunReport, speedup_percentage


def _format_row(cells: list[str], widths: list[int]) -> str:
    return " | ".join(cell.rjust(width) for cell, width in zip(cells, widths))


def format_table(headers: list[str], rows: list[list[str]]) -> str:
    """A minimal fixed-width ASCII table."""
    widths = [len(header) for header in headers]
    for row in rows:
        for position, cell in enumerate(row):
            widths[position] = max(widths[position], len(cell))
    lines = [_format_row(headers, widths)]
    lines.append("-+-".join("-" * width for width in widths))
    lines.extend(_format_row(row, widths) for row in rows)
    return "\n".join(lines)


def convergence_series(reports: dict[str, RunReport]) -> str:
    """Per-round total time series, one column per tuner (Figures 2/4/6)."""
    names = list(reports)
    n_rounds = max((reports[name].n_rounds for name in names), default=0)
    headers = ["round"] + names
    rows = []
    for position in range(n_rounds):
        row = [str(position + 1)]
        for name in names:
            rounds = reports[name].rounds
            value = rounds[position].total_seconds if position < len(rounds) else float("nan")
            row.append(f"{value:.1f}")
        rows.append(row)
    return format_table(headers, rows)


def totals_summary(reports: dict[str, RunReport]) -> str:
    """Total end-to-end workload time per tuner (Figures 3/5/7)."""
    headers = ["tuner", "total_s", "recommendation_s", "creation_s", "execution_s"]
    rows = []
    for name, report in reports.items():
        rows.append([
            name,
            f"{report.total_seconds:.1f}",
            f"{report.total_recommendation_seconds:.1f}",
            f"{report.total_creation_seconds:.1f}",
            f"{report.total_execution_seconds:.1f}",
        ])
    return format_table(headers, rows)


def speedup_summary(reports: dict[str, RunReport], candidate: str = "MAB",
                    baseline: str = "PDTool") -> str:
    """The paper's headline metric: candidate speed-up over the baseline."""
    if candidate not in reports or baseline not in reports:
        return "speed-up unavailable (missing tuner runs)"
    value = speedup_percentage(
        reports[baseline].total_seconds, reports[candidate].total_seconds
    )
    return f"{candidate} speed-up over {baseline}: {value:.1f}%"


def table1_breakdown(
    breakdown: dict[str, dict[str, dict[str, RunReport]]]
) -> str:
    """Table I: total time breakdown (minutes) per workload regime and benchmark.

    ``breakdown[workload_type][benchmark][tuner]`` -> :class:`RunReport`.
    """
    headers = [
        "setting", "workload",
        "rec_PDTool", "rec_MAB",
        "cre_PDTool", "cre_MAB",
        "exec_PDTool", "exec_MAB",
        "total_PDTool", "total_MAB",
    ]
    rows = []
    for workload_type, benchmarks in breakdown.items():
        for benchmark, reports in benchmarks.items():
            pdtool = reports.get("PDTool")
            mab = reports.get("MAB")
            if pdtool is None or mab is None:
                continue
            pdtool_minutes = pdtool.breakdown_minutes()
            mab_minutes = mab.breakdown_minutes()
            rows.append([
                workload_type, benchmark,
                f"{pdtool_minutes['recommendation']:.2f}", f"{mab_minutes['recommendation']:.2f}",
                f"{pdtool_minutes['creation']:.2f}", f"{mab_minutes['creation']:.2f}",
                f"{pdtool_minutes['execution']:.2f}", f"{mab_minutes['execution']:.2f}",
                f"{pdtool_minutes['total']:.2f}", f"{mab_minutes['total']:.2f}",
            ])
    return format_table(headers, rows)


def table2_database_size(results: dict[float, dict[str, RunReport]]) -> str:
    """Table II: static workload totals (minutes) under different scale factors."""
    headers = ["scale_factor", "PDTool_min", "MAB_min"]
    rows = []
    for scale_factor in sorted(results):
        reports = results[scale_factor]
        pdtool = reports.get("PDTool")
        mab = reports.get("MAB")
        rows.append([
            f"{scale_factor:g}",
            f"{pdtool.total_minutes():.2f}" if pdtool else "n/a",
            f"{mab.total_minutes():.2f}" if mab else "n/a",
        ])
    return format_table(headers, rows)


def exploration_cost_summary(reports: dict[str, RunReport]) -> str:
    """Section V-B3: recommendation + creation time ("exploration cost") per tuner."""
    headers = ["tuner", "exploration_cost_s", "execution_s", "total_s"]
    rows = []
    for name, report in reports.items():
        rows.append([
            name,
            f"{report.exploration_cost_seconds:.1f}",
            f"{report.total_execution_seconds:.1f}",
            f"{report.total_seconds:.1f}",
        ])
    return format_table(headers, rows)


def final_round_execution_comparison(reports: dict[str, RunReport]) -> str:
    """Last-round execution time per tuner (the paper's converged-quality check)."""
    headers = ["tuner", "final_round_execution_s"]
    rows = [
        [name, f"{report.final_round_execution_seconds():.2f}"]
        for name, report in reports.items()
    ]
    return format_table(headers, rows)
