"""One entry point per table/figure of the paper's evaluation section.

Every function below regenerates one experiment.  The paper's full parameters
(scale factor 10, 25/80 rounds, 10 RL repetitions) are the defaults of
:class:`ExperimentSettings`; :meth:`ExperimentSettings.quick` scales the
experiments down so the complete benchmark suite runs in minutes on a laptop
while preserving every qualitative comparison.

The experiments are built entirely on :mod:`repro.api`: tuners are resolved
through the registry (:func:`repro.api.create_tuner`) and every run is a
:class:`repro.api.TuningSession` driven by :func:`repro.api.run_competition`,
so ``workers > 1`` fans the tuners of one experiment out across processes.

Index of experiments (see DESIGN.md for the full mapping):

* Figures 2 & 3 — :func:`static_experiment`
* Figures 4 & 5 — :func:`shifting_experiment`
* Figures 6 & 7 — :func:`random_experiment`
* Table I        — :func:`table1_breakdown_experiment`
* Table II       — :func:`table2_database_size_experiment`
* Figure 8       — :func:`rl_comparison_experiment`
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, replace

import numpy as np

from repro.api.competition import DatabaseSpec, run_competition
from repro.api.registry import TunerSpec, create_tuner
from repro.api.session import SimulationOptions
from repro.engine.catalog import Database
from repro.interface import Tuner
from repro.workloads.base import Benchmark
from repro.workloads.generator import (
    RandomWorkload,
    ShiftingWorkload,
    StaticWorkload,
    WorkloadRound,
)
from repro.workloads.registry import get_benchmark

from .metrics import RunReport

#: Tuners shown in the paper's Figures 2-7.
DEFAULT_TUNERS = ("NoIndex", "PDTool", "MAB")


@dataclass(frozen=True)
class ExperimentSettings:
    """Knobs shared by every experiment entry point."""

    scale_factor: float = 10.0
    sample_rows: int = 4000
    seed: int = 7
    workload_seed: int = 13
    noise_sigma: float = 0.03
    memory_budget_multiplier: float = 1.0

    static_rounds: int = 25
    shifting_groups: int = 4
    shifting_rounds_per_group: int = 20
    random_rounds: int = 25
    random_repeat_rate: float = 0.5
    pdtool_every_random_rounds: int = 4

    rl_rounds: int = 100
    rl_repetitions: int = 10

    #: PDTool invocation-time cap applied to TPC-DS dynamic random (seconds),
    #: matching the paper's 1-hour restriction.
    tpcds_random_pdtool_limit_seconds: float = 3600.0

    @classmethod
    def quick(cls) -> "ExperimentSettings":
        """Reduced settings for the pytest-benchmark suite."""
        return cls(
            sample_rows=2000,
            static_rounds=8,
            shifting_groups=3,
            shifting_rounds_per_group=5,
            random_rounds=8,
            rl_rounds=16,
            rl_repetitions=2,
        )

    def with_overrides(self, **overrides: object) -> "ExperimentSettings":
        return replace(self, **overrides)

    def tuner_spec(self, benchmark_name: str = "", workload_type: str = "static") -> TunerSpec:
        """The :class:`repro.api.TunerSpec` these settings imply for one regime."""
        return TunerSpec(
            benchmark_name=benchmark_name,
            workload_type=workload_type,
            pdtool_invocation_limit_seconds=self.tpcds_random_pdtool_limit_seconds,
        )

    def database_spec(self, benchmark_name: str) -> DatabaseSpec:
        """A picklable factory for this experiment's databases."""
        return DatabaseSpec(
            benchmark_name=benchmark_name,
            scale_factor=self.scale_factor,
            sample_rows=self.sample_rows,
            seed=self.seed,
            memory_budget_multiplier=self.memory_budget_multiplier,
        )


# --------------------------------------------------------------------- #
# tuner and workload factories
# --------------------------------------------------------------------- #
def make_tuner(
    name: str,
    database: Database,
    benchmark_name: str = "",
    workload_type: str = "static",
    settings: ExperimentSettings | None = None,
) -> Tuner:
    """Deprecated: use :func:`repro.api.create_tuner` with a :class:`TunerSpec`."""
    warnings.warn(
        "make_tuner is deprecated; use repro.api.create_tuner(name, database, "
        "TunerSpec(...)) instead",
        DeprecationWarning,
        stacklevel=2,
    )
    settings = settings or ExperimentSettings()
    return create_tuner(
        name, database, settings.tuner_spec(benchmark_name, workload_type)
    )


def build_workload_rounds(
    benchmark: Benchmark,
    database: Database,
    workload_type: str,
    settings: ExperimentSettings,
    n_rounds_override: int | None = None,
) -> list[WorkloadRound]:
    """Materialise the workload sequence for one regime."""
    workload_type = workload_type.lower()
    if workload_type == "static":
        sequence = StaticWorkload(
            database,
            benchmark.templates,
            n_rounds=n_rounds_override or settings.static_rounds,
            seed=settings.workload_seed,
        )
    elif workload_type == "shifting":
        sequence = ShiftingWorkload(
            database,
            benchmark.templates,
            n_groups=settings.shifting_groups,
            rounds_per_group=settings.shifting_rounds_per_group,
            seed=settings.workload_seed,
        )
    elif workload_type == "random":
        sequence = RandomWorkload(
            database,
            benchmark.templates,
            n_rounds=n_rounds_override or settings.random_rounds,
            repeat_rate=settings.random_repeat_rate,
            pdtool_every=settings.pdtool_every_random_rounds,
            seed=settings.workload_seed,
        )
    else:
        raise KeyError(f"unknown workload type {workload_type!r}")
    return sequence.materialise()


# --------------------------------------------------------------------- #
# generic runner
# --------------------------------------------------------------------- #
def run_workload_experiment(
    benchmark_name: str,
    workload_type: str,
    tuners: tuple[str, ...] = DEFAULT_TUNERS,
    settings: ExperimentSettings | None = None,
    n_rounds_override: int | None = None,
    workers: int = 1,
) -> dict[str, RunReport]:
    """Run the named tuners over one benchmark/regime; returns reports by tuner.

    ``workers`` is forwarded to :func:`repro.api.run_competition`: each tuner
    already owns its database, so ``workers > 1`` runs them in parallel
    processes with an identical merged result.
    """
    settings = settings or ExperimentSettings()
    benchmark = get_benchmark(benchmark_name)
    database_spec = settings.database_spec(benchmark.name)
    workload_rounds = build_workload_rounds(
        benchmark, database_spec.create(), workload_type, settings, n_rounds_override
    )
    options = SimulationOptions(
        noise_sigma=settings.noise_sigma,
        benchmark_name=benchmark.name,
        workload_type=workload_type,
    )
    spec = settings.tuner_spec(benchmark.name, workload_type)
    return run_competition(
        database_spec,
        {name: (name, spec) for name in tuners},
        workload_rounds,
        options,
        workers=workers,
    )


# --------------------------------------------------------------------- #
# per-figure / per-table entry points
# --------------------------------------------------------------------- #
def static_experiment(
    benchmark_name: str,
    settings: ExperimentSettings | None = None,
    tuners: tuple[str, ...] = DEFAULT_TUNERS,
    workers: int = 1,
) -> dict[str, RunReport]:
    """Figures 2 and 3: static workload convergence and totals."""
    return run_workload_experiment(
        benchmark_name, "static", tuners, settings, workers=workers
    )


def shifting_experiment(
    benchmark_name: str,
    settings: ExperimentSettings | None = None,
    tuners: tuple[str, ...] = DEFAULT_TUNERS,
    workers: int = 1,
) -> dict[str, RunReport]:
    """Figures 4 and 5: dynamic shifting workload convergence and totals."""
    return run_workload_experiment(
        benchmark_name, "shifting", tuners, settings, workers=workers
    )


def random_experiment(
    benchmark_name: str,
    settings: ExperimentSettings | None = None,
    tuners: tuple[str, ...] = DEFAULT_TUNERS,
    workers: int = 1,
) -> dict[str, RunReport]:
    """Figures 6 and 7: dynamic random workload convergence and totals."""
    return run_workload_experiment(
        benchmark_name, "random", tuners, settings, workers=workers
    )


def table1_breakdown_experiment(
    benchmark_names: tuple[str, ...] = ("ssb", "tpch", "tpch_skew", "tpcds", "imdb"),
    workload_types: tuple[str, ...] = ("static", "shifting", "random"),
    settings: ExperimentSettings | None = None,
    tuners: tuple[str, ...] = ("PDTool", "MAB"),
    workers: int = 1,
) -> dict[str, dict[str, dict[str, RunReport]]]:
    """Table I: recommendation/creation/execution breakdown for all 15 cells."""
    breakdown: dict[str, dict[str, dict[str, RunReport]]] = {}
    for workload_type in workload_types:
        breakdown[workload_type] = {}
        for benchmark_name in benchmark_names:
            breakdown[workload_type][benchmark_name] = run_workload_experiment(
                benchmark_name, workload_type, tuners, settings, workers=workers
            )
    return breakdown


def table2_database_size_experiment(
    benchmark_names: tuple[str, ...] = ("tpch", "tpch_skew"),
    scale_factors: tuple[float, ...] = (1.0, 10.0, 100.0),
    settings: ExperimentSettings | None = None,
    tuners: tuple[str, ...] = ("PDTool", "MAB"),
    workers: int = 1,
) -> dict[str, dict[float, dict[str, RunReport]]]:
    """Table II: static TPC-H / TPC-H Skew at different database sizes."""
    settings = settings or ExperimentSettings()
    results: dict[str, dict[float, dict[str, RunReport]]] = {}
    for benchmark_name in benchmark_names:
        results[benchmark_name] = {}
        for scale_factor in scale_factors:
            scaled = settings.with_overrides(scale_factor=scale_factor)
            results[benchmark_name][scale_factor] = run_workload_experiment(
                benchmark_name, "static", tuners, scaled, workers=workers
            )
    return results


def rl_comparison_experiment(
    benchmark_name: str = "tpch",
    settings: ExperimentSettings | None = None,
    tuners: tuple[str, ...] = ("PDTool", "MAB", "DDQN", "DDQN_SC"),
    workers: int = 1,
) -> dict[str, list[RunReport]]:
    """Figure 8: MAB vs DDQN / DDQN-SC vs PDTool on static TPC-H (Skew).

    The randomised RL agents are repeated ``rl_repetitions`` times; every tuner
    returns a list of reports (deterministic tuners are run once and their
    report repeated for uniform downstream aggregation).
    """
    settings = settings or ExperimentSettings()
    repetition_reports: dict[str, list[RunReport]] = {name: [] for name in tuners}
    for repetition in range(settings.rl_repetitions):
        repetition_settings = settings.with_overrides(
            workload_seed=settings.workload_seed + repetition,
            seed=settings.seed + repetition,
        )
        reports = run_workload_experiment(
            benchmark_name,
            "static",
            tuners,
            repetition_settings,
            n_rounds_override=settings.rl_rounds,
            workers=workers,
        )
        for name in tuners:
            repetition_reports[name].append(reports[name])
    return repetition_reports


def aggregate_rl_series(reports: list[RunReport]) -> dict[str, list[float]]:
    """Mean, median and inter-quartile range of per-round totals across repetitions."""
    if not reports:
        return {"mean": [], "median": [], "q1": [], "q3": []}
    series = np.array([report.per_round_totals() for report in reports])
    return {
        "mean": series.mean(axis=0).tolist(),
        "median": np.median(series, axis=0).tolist(),
        "q1": np.percentile(series, 25, axis=0).tolist(),
        "q3": np.percentile(series, 75, axis=0).tolist(),
    }
