"""Compatibility re-exports: the simulation drivers live in :mod:`repro.api`.

:func:`repro.api.run_simulation` is a thin loop over
:class:`repro.api.TuningSession`; :func:`repro.api.run_competition` races
several sessions with optional process fan-out.  This module keeps the
historical ``repro.harness.simulation`` import path working.
"""

from repro.api.competition import run_competition
from repro.api.session import (
    SimulationOptions,
    SimulationTrace,
    TuningSession,
    execute_round,
    run_simulation,
)

__all__ = [
    "SimulationOptions",
    "SimulationTrace",
    "TuningSession",
    "execute_round",
    "run_competition",
    "run_simulation",
]
