"""The online tuning simulation driver.

:func:`run_simulation` drives one tuner over one workload sequence against one
database instance, charging recommendation, index-creation and query-execution
time per round exactly as the paper's protocol does:

1. the tuner recommends a configuration for the upcoming (unseen) round;
2. the database transitions to that configuration (creation time charged);
3. the round's queries are planned by the optimiser under the materialised
   configuration and timed by the executor (execution time charged);
4. the tuner observes the round's queries, execution statistics and
   configuration change.

Each tuner gets its own database instance (constructed identically) so that
materialised indexes never leak between competitors, while the workload
sequence is materialised once and shared so every tuner sees exactly the same
query instances.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

from repro.engine.catalog import Database
from repro.engine.execution import ExecutionResult, Executor
from repro.engine.query import Query
from repro.optimizer.planner import Planner
from repro.workloads.generator import WorkloadRound

from .interface import Tuner
from .metrics import RoundReport, RunReport


@dataclass
class SimulationOptions:
    """Execution-layer options for one simulation run."""

    noise_sigma: float = 0.03
    executor_seed: int = 11
    benchmark_name: str = "benchmark"
    workload_type: str = "static"
    #: Optional per-round callback (round report, execution results).
    on_round: Callable[[RoundReport, list[ExecutionResult]], None] | None = None
    #: Collect per-round execution results in the returned trace.
    keep_results: bool = False


@dataclass
class SimulationTrace:
    """Extended simulation output: the report plus optional per-round details."""

    report: RunReport
    results_by_round: list[list[ExecutionResult]] = field(default_factory=list)


def execute_round(
    database: Database,
    planner: Planner,
    executor: Executor,
    queries: list[Query],
) -> tuple[list[ExecutionResult], float]:
    """Plan and execute one round's queries under the materialised configuration."""
    results: list[ExecutionResult] = []
    total_seconds = 0.0
    for query in queries:
        plan = planner.plan(query)
        result = executor.execute(plan)
        results.append(result)
        total_seconds += result.total_seconds
    return results, total_seconds


def run_simulation(
    database: Database,
    tuner: Tuner,
    workload_rounds: list[WorkloadRound],
    options: SimulationOptions | None = None,
) -> SimulationTrace:
    """Run one tuner over a materialised workload sequence."""
    options = options or SimulationOptions()
    planner = Planner(database)
    executor = Executor(database, noise_sigma=options.noise_sigma, seed=options.executor_seed)
    report = RunReport(
        tuner_name=tuner.name,
        benchmark_name=options.benchmark_name,
        workload_type=options.workload_type,
    )
    trace = SimulationTrace(report=report)

    for workload_round in workload_rounds:
        round_number = workload_round.round_number
        training = (
            workload_round.pdtool_training_queries if workload_round.invoke_pdtool else None
        )
        phase_started = time.perf_counter()
        recommendation = tuner.recommend(round_number, training_queries=training)
        after_recommend = time.perf_counter()
        change = database.apply_configuration(recommendation.configuration)
        after_apply = time.perf_counter()
        results, execution_seconds = execute_round(
            database, planner, executor, workload_round.queries
        )
        after_execute = time.perf_counter()
        tuner.observe(round_number, workload_round.queries, results, change)
        after_observe = time.perf_counter()

        round_report = RoundReport(
            round_number=round_number,
            recommendation_seconds=recommendation.recommendation_seconds,
            creation_seconds=change.creation_seconds + change.drop_seconds,
            execution_seconds=execution_seconds,
            n_queries=len(workload_round.queries),
            indexes_created=len(change.created),
            indexes_dropped=len(change.dropped),
            configuration_size=len(database.materialised_indexes),
            configuration_bytes=database.used_index_bytes,
            is_shift_round=workload_round.is_shift_round,
            wall_recommend_seconds=after_recommend - phase_started,
            wall_apply_seconds=after_apply - after_recommend,
            wall_execute_seconds=after_execute - after_apply,
            wall_observe_seconds=after_observe - after_execute,
        )
        report.rounds.append(round_report)
        if options.keep_results:
            trace.results_by_round.append(results)
        if options.on_round is not None:
            options.on_round(round_report, results)
    return trace


def run_competition(
    database_factory: Callable[[], Database],
    tuner_factories: dict[str, Callable[[Database], Tuner]],
    workload_rounds: list[WorkloadRound],
    options: SimulationOptions | None = None,
) -> dict[str, RunReport]:
    """Run several tuners over the *same* workload, each on a fresh database.

    ``database_factory`` must build identically seeded databases so that every
    tuner faces the same data; ``workload_rounds`` should have been
    materialised once (against any of those identical databases).
    """
    options = options or SimulationOptions()
    reports: dict[str, RunReport] = {}
    for label, tuner_factory in tuner_factories.items():
        database = database_factory()
        tuner = tuner_factory(database)
        trace = run_simulation(database, tuner, workload_rounds, options)
        trace.report.tuner_name = label
        reports[label] = trace.report
    return reports
