"""Experiment harness: drives tuners over workloads and reproduces every
table and figure of the paper's evaluation section.

Public API note
---------------
The harness is the *paper-reproduction* layer.  The supported public surface
for driving tuners programmatically — sessions, the tuner registry, the
simulation and competition drivers — is :mod:`repro.api`; the names below are
re-exported from there (or implemented on top of it) so existing imports keep
working.

Attributes resolve lazily (PEP 562): the harness depends on :mod:`repro.api`
while the tuner implementations that register themselves with the API import
the registry back, and lazy resolution keeps that cycle unobservable.
"""

from __future__ import annotations

import importlib

#: name -> submodule that defines it (relative to this package).
_EXPORTS = {
    "DEFAULT_TUNERS": ".experiments",
    "ExperimentSettings": ".experiments",
    "aggregate_rl_series": ".experiments",
    "build_workload_rounds": ".experiments",
    "make_tuner": ".experiments",
    "random_experiment": ".experiments",
    "rl_comparison_experiment": ".experiments",
    "run_workload_experiment": ".experiments",
    "shifting_experiment": ".experiments",
    "static_experiment": ".experiments",
    "table1_breakdown_experiment": ".experiments",
    "table2_database_size_experiment": ".experiments",
    "Recommendation": "repro.interface",
    "Tuner": "repro.interface",
    "FleetSummary": ".metrics",
    "MissingBaselineError": ".metrics",
    "RoundReport": ".metrics",
    "RunReport": ".metrics",
    "SafetyReport": ".metrics",
    "rank_by_safety": ".metrics",
    "safety_reports": ".metrics",
    "speedup_percentage": ".metrics",
    "convergence_series": ".reporting",
    "exploration_cost_summary": ".reporting",
    "final_round_execution_comparison": ".reporting",
    "format_table": ".reporting",
    "speedup_summary": ".reporting",
    "table1_breakdown": ".reporting",
    "table2_database_size": ".reporting",
    "totals_summary": ".reporting",
    "SimulationOptions": "repro.api",
    "SimulationTrace": "repro.api",
    "TuningSession": "repro.api",
    "execute_round": "repro.api",
    "run_competition": "repro.api",
    "run_simulation": "repro.api",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str) -> object:
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    module = importlib.import_module(module_name, __name__)
    value = getattr(module, name)
    globals()[name] = value  # cache: resolve each name at most once
    return value


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(__all__))
