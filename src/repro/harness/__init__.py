"""Experiment harness: drives tuners over workloads and reproduces every
table and figure of the paper's evaluation section."""

from .experiments import (
    DEFAULT_TUNERS,
    ExperimentSettings,
    aggregate_rl_series,
    build_workload_rounds,
    make_tuner,
    random_experiment,
    rl_comparison_experiment,
    run_workload_experiment,
    shifting_experiment,
    static_experiment,
    table1_breakdown_experiment,
    table2_database_size_experiment,
)
from .interface import Recommendation, Tuner
from .metrics import RoundReport, RunReport, speedup_percentage
from .reporting import (
    convergence_series,
    exploration_cost_summary,
    final_round_execution_comparison,
    format_table,
    speedup_summary,
    table1_breakdown,
    table2_database_size,
    totals_summary,
)
from .simulation import SimulationOptions, SimulationTrace, execute_round, run_competition, run_simulation

__all__ = [
    "DEFAULT_TUNERS",
    "ExperimentSettings",
    "Recommendation",
    "RoundReport",
    "RunReport",
    "SimulationOptions",
    "SimulationTrace",
    "Tuner",
    "aggregate_rl_series",
    "build_workload_rounds",
    "convergence_series",
    "execute_round",
    "exploration_cost_summary",
    "final_round_execution_comparison",
    "format_table",
    "make_tuner",
    "random_experiment",
    "rl_comparison_experiment",
    "run_competition",
    "run_simulation",
    "run_workload_experiment",
    "shifting_experiment",
    "speedup_percentage",
    "speedup_summary",
    "static_experiment",
    "table1_breakdown",
    "table2_database_size",
    "table2_database_size_experiment",
    "table1_breakdown_experiment",
    "totals_summary",
]
