"""Per-round and per-run accounting of recommendation, creation and execution time.

These containers mirror the paper's metrics exactly: the total end-to-end
workload time ``C_tot = sum_t C_rec(t) + C_cre(t) + C_exc(t)`` (Section II),
its per-round series (the convergence figures), and its breakdown by component
(Table I).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping


@dataclass
class RoundReport:
    """Observed costs of one round for one tuner."""

    round_number: int
    recommendation_seconds: float = 0.0
    creation_seconds: float = 0.0
    execution_seconds: float = 0.0
    n_queries: int = 0
    indexes_created: int = 0
    indexes_dropped: int = 0
    configuration_size: int = 0
    configuration_bytes: int = 0
    is_shift_round: bool = False
    #: Real (wall-clock) time spent in each phase of the simulation loop, as
    #: opposed to the model-seconds above.  These measure *our* overhead —
    #: the paper's Table I claim is that recommendation stays negligible —
    #: and feed the perf-tracking benchmark.
    wall_recommend_seconds: float = 0.0
    wall_apply_seconds: float = 0.0
    wall_execute_seconds: float = 0.0
    wall_observe_seconds: float = 0.0

    @property
    def total_seconds(self) -> float:
        """The paper's per-round total (recommendation + creation + execution)."""
        return self.recommendation_seconds + self.creation_seconds + self.execution_seconds

    @property
    def wall_total_seconds(self) -> float:
        """Measured wall-clock time of the whole round loop body."""
        return (
            self.wall_recommend_seconds
            + self.wall_apply_seconds
            + self.wall_execute_seconds
            + self.wall_observe_seconds
        )


@dataclass
class RunReport:
    """All rounds of one (tuner, benchmark, workload-regime) run."""

    tuner_name: str
    benchmark_name: str
    workload_type: str
    rounds: list[RoundReport] = field(default_factory=list)

    # ------------------------------------------------------------------ #
    # aggregates
    # ------------------------------------------------------------------ #
    @property
    def n_rounds(self) -> int:
        return len(self.rounds)

    @property
    def total_recommendation_seconds(self) -> float:
        return sum(round_report.recommendation_seconds for round_report in self.rounds)

    @property
    def total_creation_seconds(self) -> float:
        return sum(round_report.creation_seconds for round_report in self.rounds)

    @property
    def total_execution_seconds(self) -> float:
        return sum(round_report.execution_seconds for round_report in self.rounds)

    @property
    def total_seconds(self) -> float:
        return sum(round_report.total_seconds for round_report in self.rounds)

    @property
    def exploration_cost_seconds(self) -> float:
        """Recommendation + creation time: the paper's "exploration cost"."""
        return self.total_recommendation_seconds + self.total_creation_seconds

    def total_minutes(self) -> float:
        return self.total_seconds / 60.0

    def wall_phase_totals(self) -> dict[str, float]:
        """Total measured wall-clock time per simulation phase."""
        totals = {"recommend": 0.0, "apply": 0.0, "execute": 0.0, "observe": 0.0}
        for round_report in self.rounds:
            totals["recommend"] += round_report.wall_recommend_seconds
            totals["apply"] += round_report.wall_apply_seconds
            totals["execute"] += round_report.wall_execute_seconds
            totals["observe"] += round_report.wall_observe_seconds
        totals["total"] = sum(totals.values())
        return totals

    # ------------------------------------------------------------------ #
    # series for the convergence figures
    # ------------------------------------------------------------------ #
    def per_round_totals(self) -> list[float]:
        return [round_report.total_seconds for round_report in self.rounds]

    def per_round_execution(self) -> list[float]:
        return [round_report.execution_seconds for round_report in self.rounds]

    def final_round_execution_seconds(self) -> float:
        return self.rounds[-1].execution_seconds if self.rounds else 0.0

    def breakdown_minutes(self) -> dict[str, float]:
        """Table I style breakdown in minutes."""
        return {
            "recommendation": self.total_recommendation_seconds / 60.0,
            "creation": self.total_creation_seconds / 60.0,
            "execution": self.total_execution_seconds / 60.0,
            "total": self.total_seconds / 60.0,
        }

    def summary(self) -> dict[str, object]:
        return {
            "tuner": self.tuner_name,
            "benchmark": self.benchmark_name,
            "workload_type": self.workload_type,
            "rounds": self.n_rounds,
            "total_seconds": round(self.total_seconds, 2),
            "recommendation_seconds": round(self.total_recommendation_seconds, 2),
            "creation_seconds": round(self.total_creation_seconds, 2),
            "execution_seconds": round(self.total_execution_seconds, 2),
        }


@dataclass
class FleetSummary:
    """Fleet-level rollup across many tenants' run reports.

    Throughput derives exclusively from the per-round ``wall_*`` fields that
    :class:`~repro.api.TuningSession` records (the sanctioned wall-clock
    instrumentation path) — fleet code itself never reads a clock, so
    reprolint's determinism allowlist stays exactly one file wide.
    """

    n_tenants: int = 0
    #: Total tenant-rounds completed (each round steps one session once).
    n_rounds: int = 0
    #: Summed model time (the paper's C_tot) across every tenant.
    model_seconds: float = 0.0
    #: Summed measured wall time of every round's loop body.
    wall_seconds: float = 0.0

    @property
    def rounds_per_second(self) -> float:
        """Tenant-rounds (session steps) completed per wall second."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.n_rounds / self.wall_seconds

    @property
    def wall_seconds_per_tenant(self) -> float:
        return self.wall_seconds / self.n_tenants if self.n_tenants else 0.0

    @classmethod
    def from_reports(cls, reports: "Mapping[str, RunReport]") -> "FleetSummary":
        """Aggregate one fleet's ``{tenant_id: RunReport}`` mapping."""
        summary = cls(n_tenants=len(reports))
        for report in reports.values():
            summary.n_rounds += report.n_rounds
            summary.model_seconds += report.total_seconds
            summary.wall_seconds += report.wall_phase_totals()["total"]
        return summary


# --------------------------------------------------------------------- #
# safety metrics: the paper's "no large regressions" story, quantified
# --------------------------------------------------------------------- #

#: A round counts as a *win* when the tuned configuration beats the NoIndex
#: baseline by at least this factor (QueryTorque's methodology).
WIN_THRESHOLD = 1.2
#: A round counts as a *regression* when the tuned configuration is slower
#: than doing nothing at all (speedup factor below 1.0).
REGRESSION_THRESHOLD = 1.0


class MissingBaselineError(KeyError, ValueError):
    """Raised when safety metrics are requested without a NoIndex baseline.

    Subclasses both ``KeyError`` and ``ValueError`` (registry style) and
    names the reports that *are* available.
    """


@dataclass
class SafetyReport:
    """Safety metrics of one tuner's run against the NoIndex baseline.

    The paper's pitch is that bandit tuning is *safe*: it may explore, but it
    must not leave the workload materially worse than not tuning at all.
    This report quantifies that claim from a paired ``(candidate, baseline)``
    run over the identical round stream:

    * ``per_round_regret`` — ``candidate_t - baseline_t`` seconds per round
      (positive regret = the tuner made that round slower than NoIndex);
    * ``worst_round_regression_ratio`` — the minimum per-round speedup factor
      ``baseline_t / candidate_t`` (how bad the single worst round got);
    * ``regression_rounds`` — rounds with speedup below 1.0x;
    * ``win_rounds`` — rounds with speedup at or above 1.2x;
    * ``rollback_count`` — rounds where the tuner dropped indexes, i.e.
      walked back part of its own configuration.
    """

    tuner_name: str
    baseline_name: str
    per_round_regret: list[float] = field(default_factory=list)
    per_round_speedup: list[float] = field(default_factory=list)
    rollback_count: int = 0

    @classmethod
    def from_reports(cls, candidate: RunReport, baseline: RunReport) -> "SafetyReport":
        """Pair a candidate run against its NoIndex baseline round-by-round."""
        if candidate.n_rounds != baseline.n_rounds:
            raise ValueError(
                f"cannot pair runs of different lengths: {candidate.tuner_name} has "
                f"{candidate.n_rounds} rounds, {baseline.tuner_name} has {baseline.n_rounds}"
            )
        regrets: list[float] = []
        speedups: list[float] = []
        rollbacks = 0
        for candidate_round, baseline_round in zip(candidate.rounds, baseline.rounds):
            candidate_seconds = candidate_round.total_seconds
            baseline_seconds = baseline_round.total_seconds
            regrets.append(candidate_seconds - baseline_seconds)
            if candidate_seconds > 0:
                speedups.append(baseline_seconds / candidate_seconds)
            else:
                # A zero-cost candidate round can only be a (degenerate) win.
                speedups.append(float("inf") if baseline_seconds > 0 else 1.0)
            if candidate_round.indexes_dropped > 0:
                rollbacks += 1
        return cls(
            tuner_name=candidate.tuner_name,
            baseline_name=baseline.tuner_name,
            per_round_regret=regrets,
            per_round_speedup=speedups,
            rollback_count=rollbacks,
        )

    # ------------------------------------------------------------------ #
    # aggregates
    # ------------------------------------------------------------------ #
    @property
    def n_rounds(self) -> int:
        return len(self.per_round_regret)

    @property
    def total_regret_seconds(self) -> float:
        return sum(self.per_round_regret)

    @property
    def worst_round_regression_ratio(self) -> float:
        """Minimum per-round speedup factor; 1.0 for an empty run."""
        return min(self.per_round_speedup) if self.per_round_speedup else 1.0

    @property
    def regression_rounds(self) -> list[int]:
        """1-based round positions slower than the baseline (<1.0x)."""
        return [
            position
            for position, speedup in enumerate(self.per_round_speedup, start=1)
            if speedup < REGRESSION_THRESHOLD
        ]

    @property
    def regression_count(self) -> int:
        return len(self.regression_rounds)

    @property
    def win_count(self) -> int:
        """Rounds at or above the 1.2x win bar."""
        return sum(1 for speedup in self.per_round_speedup if speedup >= WIN_THRESHOLD)

    @property
    def safety_key(self) -> tuple[float, float, float, float]:
        """Sort key: safest first.

        Safety is *bounded worst-case harm*, so the worst-round regression
        ratio leads: a tuner whose single worst round runs at 0.9x of the
        baseline is safer than one with a lone 0.1x catastrophe, however few
        regressions the latter totals (this is precisely the paper's case
        against offline tools, whose invocation rounds blow up).  Regression
        count, total regret and win count break ties.
        """
        return (
            -self.worst_round_regression_ratio,
            float(self.regression_count),
            self.total_regret_seconds,
            -float(self.win_count),
        )

    def summary(self) -> dict[str, object]:
        return {
            "tuner": self.tuner_name,
            "baseline": self.baseline_name,
            "rounds": self.n_rounds,
            "total_regret_seconds": round(self.total_regret_seconds, 3),
            "worst_round_regression_ratio": round(self.worst_round_regression_ratio, 4),
            "regression_rounds": self.regression_count,
            "win_rounds": self.win_count,
            "rollback_count": self.rollback_count,
        }


def safety_reports(
    reports: Mapping[str, RunReport], baseline_name: str = "NoIndex"
) -> dict[str, SafetyReport]:
    """Pair every non-baseline run in ``reports`` against the baseline.

    Raises :class:`MissingBaselineError` naming the available reports when
    ``baseline_name`` is absent.
    """
    if baseline_name not in reports:
        raise MissingBaselineError(
            f"no {baseline_name!r} baseline among the runs; available: "
            f"{', '.join(sorted(reports))}"
        )
    baseline = reports[baseline_name]
    return {
        name: SafetyReport.from_reports(report, baseline)
        for name, report in reports.items()
        if name != baseline_name
    }


def rank_by_safety(reports: Mapping[str, SafetyReport]) -> list[str]:
    """Tuner names ordered safest-first (ties broken by name for stability)."""
    return sorted(reports, key=lambda name: (reports[name].safety_key, name))


def speedup_percentage(baseline_seconds: float, candidate_seconds: float) -> float:
    """The paper's speed-up metric: how much faster the candidate is vs the baseline.

    Positive values mean the candidate (e.g. MAB) improves over the baseline
    (e.g. PDTool); ``speedup = (baseline - candidate) / baseline * 100``.
    """
    if baseline_seconds <= 0:
        return 0.0
    return (baseline_seconds - candidate_seconds) / baseline_seconds * 100.0
