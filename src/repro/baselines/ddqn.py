"""DDQN and DDQN-SC: the general reinforcement-learning baselines (Section V-C).

The paper compares the bandit against a double deep Q-network agent configured
as in prior work on RL-driven index selection: 4 hidden layers of 8 neurons,
discount factor 0.99, and an exploration rate decaying exponentially from 1 to
0.01 by the 2,400th sample (one sample = one index chosen).  For a fair
comparison the agent is given the same candidate indexes as the MAB and its
state combines the MAB arms' contexts.  DDQN-SC restricts candidates to
single-column indexes, as originally proposed.

Because the candidate set changes between rounds, the Q-network scores
(state, action) feature vectors — the round's aggregate context concatenated
with the candidate arm's context — which lets the same network evaluate
actions it has never seen, while remaining a faithful double Q-learner.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.api.registry import TunerSpec, register_tuner
from repro.core.arms import Arm, ArmGenerator
from repro.core.config import MabConfig
from repro.core.context import ContextBuilder
from repro.core.query_store import QueryStore
from repro.core.rewards import compute_round_rewards
from repro.engine.catalog import ConfigurationChange, Database
from repro.engine.execution import ExecutionResult
from repro.engine.query import Query
from repro.interface import Recommendation, Tuner

from .neural import MLP, MLPConfig
from .replay import ReplayBuffer, Transition


@dataclass
class DDQNConfig:
    """Hyper-parameters matching the paper's experimental setup."""

    hidden_layers: tuple[int, ...] = (8, 8, 8, 8)
    discount_factor: float = 0.99
    #: Exploration schedule: epsilon decays exponentially from 1.0 towards
    #: ``epsilon_end``, reaching 0.01 at sample 2400.
    epsilon_start: float = 1.0
    epsilon_end: float = 0.01
    epsilon_decay_samples: int = 2400
    learning_rate: float = 1e-3
    batch_size: int = 32
    train_steps_per_round: int = 8
    target_update_rounds: int = 5
    replay_capacity: int = 10_000
    #: Restrict candidates to single-column indexes (the DDQN-SC variant).
    single_column_only: bool = False
    #: Maximum number of indexes chosen per round (on top of the memory budget).
    max_actions_per_round: int = 12
    seed: int = 31

    def epsilon_at(self, samples_seen: int) -> float:
        """Exploration probability after ``samples_seen`` index choices."""
        if self.epsilon_decay_samples <= 0:
            return self.epsilon_end
        rate = math.log(self.epsilon_start / self.epsilon_end) / self.epsilon_decay_samples
        value = self.epsilon_start * math.exp(-rate * samples_seen)
        return max(self.epsilon_end, min(self.epsilon_start, value))


@register_tuner("DDQN")
class DDQNTuner(Tuner):
    """Double-DQN agent for online index selection."""

    name = "DDQN"

    def __init__(self, database: Database, config: DDQNConfig | None = None) -> None:
        self.database = database
        self.config = config or DDQNConfig()
        if self.config.single_column_only:
            self.name = "DDQN_SC"
        arm_config = MabConfig()
        if self.config.single_column_only:
            arm_config = MabConfig(max_index_width=1, include_covering_arms=False)
        self.arm_generator = ArmGenerator(arm_config)
        self.context_builder = ContextBuilder(database.schema)
        self.query_store = QueryStore()
        feature_dim = 2 * self.context_builder.dimension
        network_config = MLPConfig(
            input_dim=feature_dim,
            hidden_layers=self.config.hidden_layers,
            output_dim=1,
            learning_rate=self.config.learning_rate,
            seed=self.config.seed,
        )
        self.online_network = MLP(network_config)
        self.target_network = MLP(network_config)
        self.target_network.copy_from(self.online_network)
        self.replay = ReplayBuffer(self.config.replay_capacity, seed=self.config.seed)
        self._rng = np.random.default_rng(self.config.seed)
        self.samples_seen = 0
        self._rounds_since_target_update = 0
        #: (arm, state-action features) chosen in the latest recommend call.
        self._pending_actions: list[tuple[Arm, np.ndarray]] = []
        self._pending_candidate_features: np.ndarray | None = None

    # ------------------------------------------------------------------ #
    # Tuner interface
    # ------------------------------------------------------------------ #
    def recommend(
        self,
        round_number: int,
        training_queries: list[Query] | None = None,
    ) -> Recommendation:
        del training_queries  # the RL agent, like the bandit, is online-only
        queries_of_interest = self.query_store.queries_of_interest(round_number, window_rounds=2)
        if not queries_of_interest:
            # Same contract as the MAB tuner: with no queries of interest,
            # retain the current configuration instead of dropping every
            # materialised index.
            self._pending_actions = []
            self._pending_candidate_features = None
            return Recommendation(
                configuration=list(self.database.materialised_indexes),
                recommendation_seconds=0.0,
            )

        arms = list(self.arm_generator.generate(queries_of_interest).values())
        contexts = self.context_builder.build_matrix(arms, queries_of_interest, self.database)
        state = contexts.mean(axis=0) if len(contexts) else np.zeros(self.context_builder.dimension)
        candidate_features = np.hstack([np.tile(state, (len(arms), 1)), contexts])
        self._pending_candidate_features = candidate_features

        explore = self._rng.random() < self.config.epsilon_at(self.samples_seen)
        chosen = self._choose_actions(arms, candidate_features, explore)
        self._pending_actions = chosen
        configuration = [arm.index for arm, _ in chosen]
        return Recommendation(configuration=configuration, recommendation_seconds=0.0)

    def observe(
        self,
        round_number: int,
        queries: list[Query],
        results: list[ExecutionResult],
        change: ConfigurationChange,
    ) -> None:
        self.query_store.add_round(queries, round_number)
        rewards = compute_round_rewards(results, change)
        next_features = (
            self._pending_candidate_features
            if self._pending_candidate_features is not None
            else np.zeros((0, 2 * self.context_builder.dimension))
        )
        for arm, features in self._pending_actions:
            self.replay.add(Transition(
                features=features,
                reward=rewards.reward_for(arm.index_id),
                next_candidate_features=next_features,
                done=False,
            ))
        self._pending_actions = []
        self._train()
        self._rounds_since_target_update += 1
        if self._rounds_since_target_update >= self.config.target_update_rounds:
            self.target_network.copy_from(self.online_network)
            self._rounds_since_target_update = 0

    def reset(self) -> None:
        self.query_store.clear()
        self.replay.clear()
        self.samples_seen = 0
        self._rounds_since_target_update = 0
        self._rng = np.random.default_rng(self.config.seed)
        self._pending_actions = []
        self._pending_candidate_features = None
        self.online_network = MLP(self.online_network.config)
        self.target_network = MLP(self.target_network.config)
        self.target_network.copy_from(self.online_network)

    # ------------------------------------------------------------------ #
    # action selection
    # ------------------------------------------------------------------ #
    def _choose_actions(
        self,
        arms: list[Arm],
        candidate_features: np.ndarray,
        explore: bool,
    ) -> list[tuple[Arm, np.ndarray]]:
        """Pick a set of indexes within the memory budget.

        During exploration the whole round's set is chosen at random, as in
        the paper's setup; during exploitation arms are picked greedily by
        their Q-value.
        """
        budget = self.database.memory_budget_bytes
        remaining = budget if budget is not None else None
        order: list[int]
        if explore:
            order = list(self._rng.permutation(len(arms)))
        else:
            q_values = self.online_network.predict(candidate_features).reshape(-1)
            order = list(np.argsort(-q_values))
        chosen: list[tuple[Arm, np.ndarray]] = []
        for position in order:
            if len(chosen) >= self.config.max_actions_per_round:
                break
            arm = arms[int(position)]
            if not explore:
                q_value = self.online_network.predict(
                    candidate_features[int(position)].reshape(1, -1)
                ).item()
                if q_value <= 0 and chosen:
                    break
            size = self.database.index_size_bytes(arm.index)
            if remaining is not None and size > remaining:
                continue
            chosen.append((arm, candidate_features[int(position)]))
            if remaining is not None:
                remaining -= size
            self.samples_seen += 1
        return chosen

    # ------------------------------------------------------------------ #
    # learning
    # ------------------------------------------------------------------ #
    def _train(self) -> None:
        if len(self.replay) < self.config.batch_size:
            return
        for _ in range(self.config.train_steps_per_round):
            batch = self.replay.sample(self.config.batch_size)
            features = np.vstack([transition.features for transition in batch])
            targets = np.array([self._target_for(transition) for transition in batch])
            self.online_network.train_step(features, targets.reshape(-1, 1))

    def _target_for(self, transition: Transition) -> float:
        """Double-Q target: online net picks the next action, target net values it."""
        if transition.done or len(transition.next_candidate_features) == 0:
            return transition.reward
        online_q = self.online_network.predict(transition.next_candidate_features).reshape(-1)
        best_action = int(np.argmax(online_q))
        target_q = float(
            self.target_network.predict(
                transition.next_candidate_features[best_action].reshape(1, -1)
            ).item()
        )
        return transition.reward + self.config.discount_factor * target_q


def build_ddqn_sc(database: Database, config: DDQNConfig | None = None) -> DDQNTuner:
    """Convenience constructor for the single-column (DDQN-SC) variant."""
    base = config or DDQNConfig()
    sc_config = DDQNConfig(**{**base.__dict__, "single_column_only": True})
    return DDQNTuner(database, sc_config)


def _ddqn_sc_from_spec(database: Database, spec: TunerSpec) -> DDQNTuner:
    del spec  # the SC variant differs only in its candidate space
    return build_ddqn_sc(database)


register_tuner("DDQN_SC", "DDQN-SC", factory=_ddqn_sc_from_spec)
