"""Baseline tuners the paper compares the bandit against."""

from .ddqn import DDQNConfig, DDQNTuner, build_ddqn_sc
from .neural import MLP, MLPConfig
from .noindex import NoIndexTuner
from .pdtool import PDToolConfig, PDToolTuner
from .replay import ReplayBuffer, Transition

__all__ = [
    "DDQNConfig",
    "DDQNTuner",
    "MLP",
    "MLPConfig",
    "NoIndexTuner",
    "PDToolConfig",
    "PDToolTuner",
    "ReplayBuffer",
    "Transition",
    "build_ddqn_sc",
]
