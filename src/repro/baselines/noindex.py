"""The NoIndex baseline: never materialises any secondary index.

Every experiment in the paper reports NoIndex as the reference line: it shows
the raw cost of the workload with only the primary/foreign-key structures, and
it is occasionally *better* than PDTool when the optimiser's misestimates lead
to index overuse (IMDb).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.api.registry import register_tuner
from repro.engine.catalog import ConfigurationChange
from repro.engine.execution import ExecutionResult
from repro.engine.query import Query
from repro.interface import Recommendation, Tuner

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.registry import TunerSpec
    from repro.engine.catalog import Database


@register_tuner("NoIndex")
class NoIndexTuner(Tuner):
    """A tuner that always recommends the empty configuration."""

    name = "NoIndex"

    def recommend(
        self,
        round_number: int,
        training_queries: list[Query] | None = None,
    ) -> Recommendation:
        del round_number, training_queries
        return Recommendation(configuration=[], recommendation_seconds=0.0)

    def observe(
        self,
        round_number: int,
        queries: list[Query],
        results: list[ExecutionResult],
        change: ConfigurationChange,
    ) -> None:
        del round_number, queries, results, change

    def reset(self) -> None:
        """NoIndex keeps no state."""

    @classmethod
    def from_spec(cls, database: "Database", spec: "TunerSpec") -> "NoIndexTuner":
        del database, spec  # the empty configuration needs neither
        return cls()
