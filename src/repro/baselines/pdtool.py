"""PDTool: an AutoAdmin-style, what-if-driven physical design tool.

This re-implements the behaviour that defines the paper's commercial baseline:

* it is **invoked** with a DBA-supplied training workload (the experiment
  protocol decides when and with which queries);
* it generates candidate indexes from that workload, including merged
  (wider) candidates, and compares configurations exclusively through the
  optimiser's **what-if** estimates — it never observes actual run times;
* it greedily selects the configuration with the best estimated
  benefit-per-byte within the memory budget;
* its recommendation time grows with (training-workload size x candidate
  count), which the paper measures directly (Table I) and which we model as a
  per-what-if-call cost, optionally clipped by an invocation time limit.

Between invocations the recommended configuration is kept unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.api.registry import TunerSpec, register_tuner
from repro.core.arms import ArmGenerator
from repro.core.config import MabConfig
from repro.engine.catalog import ConfigurationChange, Database
from repro.engine.execution import ExecutionResult
from repro.engine.indexes import IndexDefinition, deduplicate
from repro.engine.query import Query
from repro.interface import Recommendation, Tuner
from repro.optimizer.whatif import WhatIfOptimizer


@dataclass
class PDToolConfig:
    """Knobs of the PDTool baseline."""

    #: Modelled cost of one what-if optimiser call (model-seconds).  0.15 s per
    #: call reproduces the paper's observed invocation times (minutes for
    #: 100-query TPC-H, about an hour for 400-query TPC-DS workloads).
    what_if_call_seconds: float = 0.15
    #: Fixed per-invocation overhead (candidate generation, setup).
    invocation_overhead_seconds: float = 20.0
    #: Optional cap on a single invocation's modelled running time (the paper
    #: caps TPC-DS dynamic random invocations at one hour).
    invocation_time_limit_seconds: float | None = None
    #: Maximum number of candidate indexes evaluated per invocation.
    max_candidates: int = 4000
    #: Whether merged (wider) candidate indexes are generated; the commercial
    #: tool's index-merging phase is what wins static uniform TPC-H.
    enable_index_merging: bool = True
    #: A query counts as "served" by a selected index once that index provides
    #: at least this fraction of the query's best single-index benefit.
    served_benefit_fraction: float = 0.5


@dataclass
class _Candidate:
    """A candidate index with its per-query estimated benefits."""

    index: IndexDefinition
    size_bytes: int
    #: template id -> estimated benefit (weighted by template frequency).
    benefits: dict[str, float] = field(default_factory=dict)

    @property
    def total_benefit(self) -> float:
        return sum(self.benefits.values())


@register_tuner("PDTool")
class PDToolTuner(Tuner):
    """What-if-driven index advisor invoked with a training workload."""

    name = "PDTool"

    @classmethod
    def from_spec(cls, database: Database, spec: TunerSpec) -> "PDToolTuner":
        config = PDToolConfig()
        if spec.benchmark_name == "tpcds" and spec.workload_type == "random":
            # The paper caps each TPC-DS dynamic-random invocation at an hour.
            config = PDToolConfig(
                invocation_time_limit_seconds=spec.pdtool_invocation_limit_seconds
            )
        return cls(database, config)

    def __init__(self, database: Database, config: PDToolConfig | None = None) -> None:
        self.database = database
        self.config = config or PDToolConfig()
        self.what_if = WhatIfOptimizer(database)
        # Candidate generation reuses the same workload-driven generator as the
        # bandit so both tools search comparable candidate spaces.
        self._candidate_generator = ArmGenerator(MabConfig())
        self._current_configuration: list[IndexDefinition] = []
        #: Diagnostics: per-invocation (round, modelled seconds, candidate count).
        self.invocations: list[tuple[int, float, int]] = []

    # ------------------------------------------------------------------ #
    # Tuner interface
    # ------------------------------------------------------------------ #
    def recommend(
        self,
        round_number: int,
        training_queries: list[Query] | None = None,
    ) -> Recommendation:
        if not training_queries:
            # Not an invocation round: keep the previous recommendation.
            return Recommendation(
                configuration=list(self._current_configuration),
                recommendation_seconds=0.0,
            )
        configuration, modelled_seconds, n_candidates = self._run_advisor(training_queries)
        self._current_configuration = configuration
        self.invocations.append((round_number, modelled_seconds, n_candidates))
        return Recommendation(
            configuration=list(configuration),
            recommendation_seconds=modelled_seconds,
        )

    def observe(
        self,
        round_number: int,
        queries: list[Query],
        results: list[ExecutionResult],
        change: ConfigurationChange,
    ) -> None:
        # PDTool trusts the optimiser: observed run times are never fed back.
        del round_number, queries, results, change

    def reset(self) -> None:
        self._current_configuration = []
        self.invocations = []

    # ------------------------------------------------------------------ #
    # the advisor
    # ------------------------------------------------------------------ #
    def _run_advisor(
        self, training_queries: list[Query]
    ) -> tuple[list[IndexDefinition], float, int]:
        representatives, weights = self._representative_queries(training_queries)
        candidates = self._generate_candidates(representatives)
        what_if_calls = self._estimate_benefits(candidates, representatives, weights)
        selected = self._greedy_select(candidates, representatives)
        modelled_seconds = self._modelled_recommendation_seconds(
            len(training_queries), len(representatives), what_if_calls
        )
        return selected, modelled_seconds, len(candidates)

    @staticmethod
    def _representative_queries(
        training_queries: list[Query],
    ) -> tuple[list[Query], dict[str, int]]:
        """One representative instance per template, with template frequencies."""
        representatives: dict[str, Query] = {}
        weights: dict[str, int] = {}
        for query in training_queries:
            representatives.setdefault(query.template_id, query)
            weights[query.template_id] = weights.get(query.template_id, 0) + 1
        ordered = [representatives[template] for template in sorted(representatives)]
        return ordered, weights

    def _generate_candidates(self, queries: list[Query]) -> list[_Candidate]:
        arms = self._candidate_generator.generate(queries)
        indexes = [arm.index for arm in arms.values()]
        if self.config.enable_index_merging:
            indexes.extend(self._merged_candidates(indexes))
        indexes = deduplicate(indexes)[: self.config.max_candidates]
        return [
            _Candidate(index=index, size_bytes=self.database.index_size_bytes(index))
            for index in indexes
        ]

    @staticmethod
    def _merged_candidates(indexes: list[IndexDefinition]) -> list[IndexDefinition]:
        """Index merging: combine candidates on the same table that share a
        leading key column into one wider index serving both."""
        merged: list[IndexDefinition] = []
        by_leading: dict[tuple[str, str], list[IndexDefinition]] = {}
        for index in indexes:
            by_leading.setdefault((index.table, index.leading_column()), []).append(index)
        for (table, _leading), group in by_leading.items():
            if len(group) < 2:
                continue
            longest = max(group, key=lambda ix: len(ix.key_columns))
            key_columns = list(longest.key_columns)
            include_candidates: list[str] = []
            for other in group:
                for column in other.key_columns:
                    if column not in key_columns:
                        key_columns.append(column)
                for column in other.include_columns:
                    if column not in include_candidates:
                        include_candidates.append(column)
            include_columns = tuple(
                column for column in include_candidates if column not in key_columns
            )
            merged.append(
                IndexDefinition(table, tuple(key_columns), include_columns)
            )
        return merged

    def _estimate_benefits(
        self,
        candidates: list[_Candidate],
        queries: list[Query],
        weights: dict[str, int],
    ) -> int:
        """Fill per-query benefits via what-if calls; returns the number of calls."""
        calls = 0
        baseline_costs: dict[str, float] = {}
        for query in queries:
            baseline_costs[query.query_id] = self.what_if.plan_query(query, []).estimated_seconds
            calls += 1
        for candidate in candidates:
            for query in queries:
                if not self._is_relevant(candidate.index, query):
                    continue
                cost = self.what_if.plan_query(query, [candidate.index]).estimated_seconds
                calls += 1
                benefit = baseline_costs[query.query_id] - cost
                if benefit <= 0:
                    continue
                weight = weights.get(query.template_id, 1)
                candidate.benefits[query.template_id] = (
                    candidate.benefits.get(query.template_id, 0.0) + benefit * weight
                )
        return calls

    @staticmethod
    def _is_relevant(index: IndexDefinition, query: Query) -> bool:
        """Cheap relevance pre-filter: the index's table and leading column must
        matter to the query (standard candidate pruning in what-if tools)."""
        if index.table not in query.tables:
            return False
        interesting = set(query.predicate_columns_for(index.table))
        interesting.update(query.join_columns_for(index.table))
        interesting.update(query.payload_columns_for(index.table))
        return index.leading_column() in interesting

    def _greedy_select(
        self, candidates: list[_Candidate], queries: list[Query]
    ) -> list[IndexDefinition]:
        """Benefit-per-byte greedy selection within the memory budget."""
        budget = self.database.memory_budget_bytes
        remaining = budget if budget is not None else None
        pool = [candidate for candidate in candidates if candidate.total_benefit > 0]
        best_per_template: dict[str, float] = {}
        for candidate in pool:
            for template_id, benefit in candidate.benefits.items():
                best_per_template[template_id] = max(
                    best_per_template.get(template_id, 0.0), benefit
                )
        served_templates: set[str] = set()
        selected: list[IndexDefinition] = []
        selected_key_sets: set[tuple[str, frozenset[str]]] = set()
        del queries

        def effective_benefit(candidate: _Candidate) -> float:
            # Reads the live `served_templates` set, so the benefit shrinks
            # as earlier picks serve a candidate's templates.
            return sum(
                benefit
                for template_id, benefit in candidate.benefits.items()
                if template_id not in served_templates
            )

        while pool:
            pool.sort(
                key=lambda candidate: effective_benefit(candidate) / max(1, candidate.size_bytes),
                reverse=True,
            )
            chosen = None
            for candidate in pool:
                key_signature = (candidate.index.table, frozenset(candidate.index.key_columns))
                if key_signature in selected_key_sets:
                    continue  # a permutation of an already selected key set
                if remaining is None or candidate.size_bytes <= remaining:
                    chosen = candidate
                    break
            if chosen is None or effective_benefit(chosen) <= 0:
                break
            pool.remove(chosen)
            selected.append(chosen.index)
            selected_key_sets.add((chosen.index.table, frozenset(chosen.index.key_columns)))
            if remaining is not None:
                remaining -= chosen.size_bytes
            for template_id, benefit in chosen.benefits.items():
                threshold = self.config.served_benefit_fraction * best_per_template.get(template_id, 0.0)
                if benefit >= threshold:
                    served_templates.add(template_id)
        return selected

    def _modelled_recommendation_seconds(
        self, n_training_queries: int, n_representatives: int, what_if_calls: int
    ) -> float:
        """Model the invocation's running time from its what-if workload.

        The tool would evaluate every training query (not just one per
        template), so the call count is scaled back up by the duplication
        factor before being priced.
        """
        duplication = n_training_queries / max(1, n_representatives)
        modelled_calls = what_if_calls * duplication
        seconds = (
            self.config.invocation_overhead_seconds
            + modelled_calls * self.config.what_if_call_seconds
        )
        limit = self.config.invocation_time_limit_seconds
        if limit is not None:
            seconds = min(seconds, limit)
        return seconds
