"""A small fully connected neural network on numpy.

Used by the DDQN baseline (Section V-C): the paper's agent has 4 hidden layers
of 8 neurons each.  The implementation supports ReLU activations, mean squared
error loss and Adam updates, which is everything double Q-learning needs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class _AdamState:
    """Per-parameter Adam accumulator."""

    m: np.ndarray
    v: np.ndarray


@dataclass
class MLPConfig:
    """Architecture and optimiser settings."""

    input_dim: int
    hidden_layers: tuple[int, ...] = (8, 8, 8, 8)
    output_dim: int = 1
    learning_rate: float = 1e-3
    adam_beta1: float = 0.9
    adam_beta2: float = 0.999
    adam_epsilon: float = 1e-8
    seed: int = 23

    def __post_init__(self) -> None:
        if self.input_dim <= 0 or self.output_dim <= 0:
            raise ValueError("input_dim and output_dim must be positive")
        if any(width <= 0 for width in self.hidden_layers):
            raise ValueError("hidden layer widths must be positive")
        if self.learning_rate <= 0:
            raise ValueError("learning_rate must be positive")


class MLP:
    """A ReLU multilayer perceptron trained with Adam on squared error."""

    def __init__(self, config: MLPConfig) -> None:
        self.config = config
        rng = np.random.default_rng(config.seed)
        sizes = [config.input_dim, *config.hidden_layers, config.output_dim]
        self.weights: list[np.ndarray] = []
        self.biases: list[np.ndarray] = []
        for fan_in, fan_out in zip(sizes, sizes[1:]):
            scale = np.sqrt(2.0 / fan_in)
            self.weights.append(rng.normal(0.0, scale, size=(fan_in, fan_out)))
            self.biases.append(np.zeros(fan_out))
        self._adam_w = [_AdamState(np.zeros_like(w), np.zeros_like(w)) for w in self.weights]
        self._adam_b = [_AdamState(np.zeros_like(b), np.zeros_like(b)) for b in self.biases]
        self._steps = 0

    # ------------------------------------------------------------------ #
    # inference
    # ------------------------------------------------------------------ #
    def forward(self, inputs: np.ndarray) -> tuple[np.ndarray, list[np.ndarray]]:
        """Return outputs and the per-layer activations needed for backprop."""
        inputs = np.atleast_2d(np.asarray(inputs, dtype=float))
        activations = [inputs]
        current = inputs
        last = len(self.weights) - 1
        for layer, (weight, bias) in enumerate(zip(self.weights, self.biases)):
            current = current @ weight + bias
            if layer != last:
                current = np.maximum(current, 0.0)
            activations.append(current)
        return current, activations

    def predict(self, inputs: np.ndarray) -> np.ndarray:
        outputs, _ = self.forward(inputs)
        return outputs

    # ------------------------------------------------------------------ #
    # training
    # ------------------------------------------------------------------ #
    def train_step(self, inputs: np.ndarray, targets: np.ndarray) -> float:
        """One Adam step on mean squared error; returns the batch loss."""
        targets = np.atleast_2d(np.asarray(targets, dtype=float))
        outputs, activations = self.forward(inputs)
        if targets.shape != outputs.shape:
            targets = targets.reshape(outputs.shape)
        batch = outputs.shape[0]
        error = outputs - targets
        loss = float(np.mean(error ** 2))

        gradient = 2.0 * error / batch
        weight_gradients: list[np.ndarray] = [np.zeros(0)] * len(self.weights)
        bias_gradients: list[np.ndarray] = [np.zeros(0)] * len(self.biases)
        for layer in reversed(range(len(self.weights))):
            layer_input = activations[layer]
            weight_gradients[layer] = layer_input.T @ gradient
            bias_gradients[layer] = gradient.sum(axis=0)
            if layer > 0:
                gradient = gradient @ self.weights[layer].T
                gradient = gradient * (activations[layer] > 0)

        self._steps += 1
        for layer in range(len(self.weights)):
            self._adam_update(self.weights[layer], weight_gradients[layer], self._adam_w[layer])
            self._adam_update(self.biases[layer], bias_gradients[layer], self._adam_b[layer])
        return loss

    def _adam_update(self, parameter: np.ndarray, gradient: np.ndarray, state: _AdamState) -> None:
        beta1 = self.config.adam_beta1
        beta2 = self.config.adam_beta2
        state.m = beta1 * state.m + (1 - beta1) * gradient
        state.v = beta2 * state.v + (1 - beta2) * gradient ** 2
        m_hat = state.m / (1 - beta1 ** self._steps)
        v_hat = state.v / (1 - beta2 ** self._steps)
        parameter -= self.config.learning_rate * m_hat / (np.sqrt(v_hat) + self.config.adam_epsilon)

    # ------------------------------------------------------------------ #
    # parameter transfer (for the target network)
    # ------------------------------------------------------------------ #
    def get_parameters(self) -> list[np.ndarray]:
        return [w.copy() for w in self.weights] + [b.copy() for b in self.biases]

    def set_parameters(self, parameters: list[np.ndarray]) -> None:
        n_layers = len(self.weights)
        if len(parameters) != 2 * n_layers:
            raise ValueError("parameter list does not match the network architecture")
        for layer in range(n_layers):
            self.weights[layer] = parameters[layer].copy()
            self.biases[layer] = parameters[n_layers + layer].copy()

    def copy_from(self, other: "MLP") -> None:
        self.set_parameters(other.get_parameters())
