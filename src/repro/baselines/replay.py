"""Experience replay buffer for the DDQN baseline."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class Transition:
    """One (state-action features, reward, next candidate features, done) sample.

    Because the action space (candidate indexes) is dynamic, a transition
    stores the feature vector of the *chosen* state-action pair and the
    feature matrix of the candidate actions available in the next round, which
    is what double Q-learning needs to form its bootstrapped target.
    """

    features: np.ndarray
    reward: float
    next_candidate_features: np.ndarray
    done: bool


class ReplayBuffer:
    """Fixed-capacity FIFO replay buffer with uniform sampling."""

    def __init__(self, capacity: int = 10_000, seed: int = 29) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.seed = seed
        self._storage: list[Transition] = []
        self._position = 0
        self._rng = np.random.default_rng(seed)

    def __len__(self) -> int:
        return len(self._storage)

    def add(self, transition: Transition) -> None:
        if len(self._storage) < self.capacity:
            self._storage.append(transition)
        else:
            self._storage[self._position] = transition
        self._position = (self._position + 1) % self.capacity

    def sample(self, batch_size: int) -> list[Transition]:
        if not self._storage:
            return []
        batch_size = min(batch_size, len(self._storage))
        positions = self._rng.choice(len(self._storage), size=batch_size, replace=False)
        return [self._storage[int(i)] for i in positions]

    def clear(self) -> None:
        """Drop every stored transition and restart the sampling stream.

        Restarting the rng keeps a cleared buffer bit-identical to a fresh
        one, which ``Tuner.reset()`` relies on for reproducible repetitions.
        """
        self._storage.clear()
        self._position = 0
        self._rng = np.random.default_rng(self.seed)
