"""Greedy super-arm oracle with diversity filtering (Section IV).

The super-arm reward is a sum of individual arm rewards under a knapsack
(memory) constraint, a monotone submodular objective for which the greedy
algorithm is a (1 - 1/e)-approximation oracle.  The implementation follows the
paper's refinement:

1. arms with negative scores are pruned;
2. selection and filtering steps alternate until the memory budget is
   exhausted — after selecting the best remaining arm, arms that no longer fit
   the remaining budget, arms whose key is a prefix of an already selected arm
   (redundant seek capability), and — when a covering index was selected for a
   query — all other arms generated for that query, are filtered out.

Filtering is per-round only; pruned arms return in later rounds.
"""

from __future__ import annotations

from dataclasses import dataclass

from .arms import Arm


@dataclass
class ScoredArm:
    """An arm together with its UCB score and its materialisation size."""

    arm: Arm
    score: float
    size_bytes: int
    #: Position of the arm in the round's pool ordering.  Lets sharded
    #: scoring merge per-shard candidate lists back into pool order, so the
    #: oracle sees the surviving arms in the same order (and hence breaks any
    #: exact ties the same way) as a monolithic scoring pass would.
    position: int = 0

    @property
    def index_id(self) -> str:
        return self.arm.index_id


@dataclass
class OracleResult:
    """Outcome of one oracle invocation."""

    selected: list[ScoredArm]
    total_size_bytes: int
    total_score: float

    @property
    def selected_arms(self) -> list[Arm]:
        return [scored.arm for scored in self.selected]

    @property
    def selected_index_ids(self) -> set[str]:
        return {scored.index_id for scored in self.selected}


def _pareto_survivors(candidates: list[ScoredArm]) -> set[int]:
    """Positions of the arms :class:`GreedyOracle` could possibly select.

    Arms are grouped by ``(table, leading column, source templates)``.  The
    oracle's pick from each group is always on the group's score-vs-size
    Pareto frontier: a same-group dominator (score strictly higher, size no
    larger) is popped earlier in score order, is budget-feasible whenever the
    dominated arm is (the remaining budget only shrinks), is hit by the
    covering filter at exactly the same filter passes (same motivating
    templates) and is not prefix-filtered before the group's first selection
    — so the dominator would have been selected instead.  Keeping every
    group's frontier therefore makes a shard-local cut selection-preserving:
    only arms that provably cannot win are dropped.
    """
    by_group: dict[tuple[str, str | None, frozenset[str]], list[ScoredArm]] = {}
    for scored in candidates:
        key = (
            scored.arm.index.table,
            scored.arm.index.leading_column(),
            frozenset(scored.arm.source_templates),
        )
        by_group.setdefault(key, []).append(scored)
    survivors: set[int] = set()
    for group in by_group.values():
        group.sort(key=lambda scored: scored.score, reverse=True)
        smallest_so_far: int | None = None
        for scored in group:
            if smallest_so_far is None or scored.size_bytes < smallest_so_far:
                survivors.add(scored.position)
                smallest_so_far = scored.size_bytes
    return survivors


def merge_shard_candidates(
    candidates_by_shard: list[list[ScoredArm]],
    top_k: int | None,
) -> list[ScoredArm]:
    """Merge per-shard scored arms into one oracle candidate list.

    Each shard forwards its ``top_k`` highest-scored arms *plus* every arm on
    a ``(table, leading column, source templates)`` score-vs-size Pareto
    frontier (see :func:`_pareto_survivors`); the merged survivors are
    re-ordered by pool position so the knapsack oracle receives them exactly
    as a monolithic scoring pass would have — minus arms that provably cannot
    be selected.  The cut is therefore *selection-preserving*: the sharded
    pass picks the same configuration as a monolithic pass at matched seeds,
    while the oracle's candidate list shrinks to the arms that still matter.
    ``top_k=None`` skips the cut entirely and forwards whole shards.

    Args:
        candidates_by_shard: One scored-arm list per shard, each in pool
            order.  Empty shard lists are skipped.
        top_k: Score-ranked candidates each shard may forward beyond its
            Pareto frontiers (``None`` = all).

    Returns:
        The merged candidate list, sorted by :attr:`ScoredArm.position`.

    Raises:
        ValueError: If ``top_k`` is given but smaller than 1.
    """
    if top_k is not None and top_k < 1:
        raise ValueError("top_k must be at least 1 (or None to keep every arm)")
    merged: list[ScoredArm] = []
    for candidates in candidates_by_shard:
        if not candidates:
            continue
        if top_k is None or len(candidates) <= top_k:
            merged.extend(candidates)
            continue
        ranked = sorted(candidates, key=lambda scored: scored.score, reverse=True)
        keep = {scored.position for scored in ranked[:top_k]}
        keep |= _pareto_survivors(candidates)
        merged.extend(scored for scored in candidates if scored.position in keep)
    merged.sort(key=lambda scored: scored.position)
    return merged


class GreedyOracle:
    """Greedy knapsack oracle with prefix/covering diversity filtering."""

    def __init__(self, prune_negative_scores: bool = True) -> None:
        self.prune_negative_scores = prune_negative_scores

    def select(
        self,
        scored_arms: list[ScoredArm],
        memory_budget_bytes: int | None,
    ) -> OracleResult:
        """Pick a super arm within ``memory_budget_bytes``.

        ``None`` means no budget constraint (every positively scored arm that
        survives filtering is selected).
        """
        candidates = list(scored_arms)
        if self.prune_negative_scores:
            candidates = [scored for scored in candidates if scored.score > 0]
        candidates.sort(key=lambda scored: scored.score, reverse=True)

        remaining_budget = memory_budget_bytes
        selected: list[ScoredArm] = []
        covered_templates: set[str] = set()

        while candidates:
            chosen = candidates.pop(0)
            if remaining_budget is not None and chosen.size_bytes > remaining_budget:
                # The greedy step only considers cost-feasible arms; skip and
                # keep looking for a smaller one.
                continue
            selected.append(chosen)
            if remaining_budget is not None:
                remaining_budget -= chosen.size_bytes
            if chosen.arm.covering_for_queries:
                covered_templates |= chosen.arm.source_templates
            candidates = self._filter(candidates, selected, covered_templates, remaining_budget)

        total_size = sum(scored.size_bytes for scored in selected)
        total_score = sum(scored.score for scored in selected)
        return OracleResult(selected=selected, total_size_bytes=total_size, total_score=total_score)

    # ------------------------------------------------------------------ #
    # filtering
    # ------------------------------------------------------------------ #
    def _filter(
        self,
        candidates: list[ScoredArm],
        selected: list[ScoredArm],
        covered_templates: set[str],
        remaining_budget: int | None,
    ) -> list[ScoredArm]:
        surviving: list[ScoredArm] = []
        for scored in candidates:
            if remaining_budget is not None and scored.size_bytes > remaining_budget:
                continue
            if self._is_prefix_of_selected(scored, selected):
                continue
            if self._covered_by_covering_index(scored, covered_templates):
                continue
            surviving.append(scored)
        return surviving

    @staticmethod
    def _is_prefix_of_selected(scored: ScoredArm, selected: list[ScoredArm]) -> bool:
        """Prefix-matching diversity filter.

        An arm is redundant for the current round when a selected arm on the
        same table already starts with the same leading key column: the
        selected index provides the same (or better) seek capability, so
        materialising both would mostly waste the memory budget.  The filter
        is per-round only; the arm competes again next round.
        """
        return any(
            scored.arm.index.table == chosen.arm.index.table
            and scored.arm.index.leading_column() == chosen.arm.index.leading_column()
            for chosen in selected
        )

    @staticmethod
    def _covered_by_covering_index(scored: ScoredArm, covered_templates: set[str]) -> bool:
        """Once a covering index is selected for a query, its other arms are dropped.

        An arm is filtered only when *every* template that motivated it is
        already served by a selected covering index; arms that also serve
        not-yet-covered templates stay in play.
        """
        if not covered_templates:
            return False
        motivating = scored.arm.source_templates
        return bool(motivating) and motivating <= covered_templates
