"""Query store: workload summarisation by template (Algorithm 2, lines 1-11).

The store tracks, per query template, how often and how recently it was seen,
and keeps the most recent instance so that arms and contexts can be generated
for the *queries of interest* (QoI) — the templates observed in a recent
window of rounds.  It also measures the round's shift intensity (fraction of
previously unseen templates), which the tuner uses to decide how much learned
knowledge to forget.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engine.query import Query


@dataclass
class TemplateRecord:
    """Aggregated information about one query template."""

    template_id: str
    frequency: int = 0
    first_seen_round: int = 0
    last_seen_round: int = 0
    #: The most recent instances of the template (bounded history).
    recent_instances: list[Query] = field(default_factory=list)

    def latest_instance(self) -> Query | None:
        return self.recent_instances[-1] if self.recent_instances else None


@dataclass
class RoundSummary:
    """What the store learned from one round of queries."""

    round_number: int
    total_queries: int
    new_templates: int
    known_templates: int

    @property
    def shift_intensity(self) -> float:
        """Fraction of the round's templates that were previously unseen."""
        seen = self.new_templates + self.known_templates
        return self.new_templates / seen if seen else 0.0


class QueryStore:
    """Keeps per-template statistics across rounds."""

    def __init__(self, max_instances_per_template: int = 3) -> None:
        if max_instances_per_template < 1:
            raise ValueError("max_instances_per_template must be at least 1")
        self.max_instances_per_template = max_instances_per_template
        self._templates: dict[str, TemplateRecord] = {}

    # ------------------------------------------------------------------ #
    # ingestion
    # ------------------------------------------------------------------ #
    def add_round(self, queries: list[Query], round_number: int) -> RoundSummary:
        """Record one executed round and return its shift summary."""
        new_templates = 0
        known_templates = 0
        seen_this_round: set[str] = set()
        for query in queries:
            record = self._templates.get(query.template_id)
            if record is None:
                record = TemplateRecord(
                    template_id=query.template_id, first_seen_round=round_number
                )
                self._templates[query.template_id] = record
                if query.template_id not in seen_this_round:
                    new_templates += 1
            else:
                if query.template_id not in seen_this_round:
                    known_templates += 1
            seen_this_round.add(query.template_id)
            record.frequency += 1
            record.last_seen_round = round_number
            record.recent_instances.append(query)
            if len(record.recent_instances) > self.max_instances_per_template:
                record.recent_instances.pop(0)
        return RoundSummary(
            round_number=round_number,
            total_queries=len(queries),
            new_templates=new_templates,
            known_templates=known_templates,
        )

    # ------------------------------------------------------------------ #
    # lookups
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._templates)

    def template(self, template_id: str) -> TemplateRecord | None:
        return self._templates.get(template_id)

    def known_template_ids(self) -> set[str]:
        return set(self._templates)

    def queries_of_interest(self, current_round: int, window_rounds: int = 2) -> list[Query]:
        """Latest instance of every template seen within the recency window.

        The window spans the last ``window_rounds`` *completed* rounds: when
        recommending for ``current_round``, templates last seen in rounds
        ``current_round - window_rounds`` through ``current_round - 1`` are of
        interest.  ``window_rounds`` = 1 restricts the QoI to the immediately
        preceding round; larger windows keep recently-seen templates relevant,
        which helps under partially repeating (dynamic random) workloads.
        """
        horizon = current_round - window_rounds
        queries: list[Query] = []
        for record in self._templates.values():
            if record.last_seen_round < horizon:
                continue
            instance = record.latest_instance()
            if instance is not None:
                queries.append(instance)
        queries.sort(key=lambda query: query.template_id)
        return queries

    def evict_stale(self, current_round: int, max_idle_rounds: int) -> int:
        """Drop templates not seen for ``max_idle_rounds`` rounds; returns the count."""
        stale = [
            template_id
            for template_id, record in self._templates.items()
            if current_round - record.last_seen_round > max_idle_rounds
        ]
        for template_id in stale:
            del self._templates[template_id]
        return len(stale)

    def clear(self) -> None:
        self._templates.clear()
