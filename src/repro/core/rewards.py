"""Reward shaping from observed execution statistics (Section IV).

The reward of arm *i* in round *t* is::

    r_t(i) = G_t(i, w_t, s_t) - C_cre(s_{t-1}, {i})

where the gain ``G`` sums, over the round's queries, the difference between
the table's full-scan time and the observed access time through index *i*
whenever the optimiser actually used *i* (and 0 otherwise), and the creation
cost is charged only in the round in which the index was materialised.
Negative rewards are possible — an index whose use regresses a query (e.g. an
index-nested-loop blow-up) is punished, which is how the bandit recovers from
optimiser mistakes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engine.catalog import ConfigurationChange
from repro.engine.execution import ExecutionResult


@dataclass
class RoundRewards:
    """Per-arm rewards for one round, plus the components for reporting."""

    gains: dict[str, float] = field(default_factory=dict)
    creation_costs: dict[str, float] = field(default_factory=dict)
    used_index_ids: set[str] = field(default_factory=set)

    def reward_for(self, index_id: str) -> float:
        return self.gains.get(index_id, 0.0) - self.creation_costs.get(index_id, 0.0)

    @property
    def rewarded_index_ids(self) -> set[str]:
        return set(self.gains) | set(self.creation_costs)

    def as_dict(self) -> dict[str, float]:
        return {index_id: self.reward_for(index_id) for index_id in self.rewarded_index_ids}


def compute_round_rewards(
    results: list[ExecutionResult],
    change: ConfigurationChange,
    creation_cost_weight: float = 1.0,
) -> RoundRewards:
    """Shape per-arm rewards from a round's execution results.

    Parameters
    ----------
    results:
        Observed execution statistics of every query in the round.
    change:
        The configuration change applied before the round, carrying per-index
        creation times.
    creation_cost_weight:
        Multiplier on the creation-cost penalty (1.0 reproduces the paper).
    """
    rewards = RoundRewards()
    for result in results:
        for access in result.access_results:
            if access.index_id is None:
                continue
            rewards.used_index_ids.add(access.index_id)
            rewards.gains[access.index_id] = (
                rewards.gains.get(access.index_id, 0.0) + access.index_gain_seconds
            )
    for index_id, seconds in change.creation_seconds_by_index.items():
        rewards.creation_costs[index_id] = creation_cost_weight * seconds
    return rewards


def super_arm_reward(rewards: RoundRewards, configuration_index_ids: set[str]) -> float:
    """The round's super-arm reward: the sum of per-arm rewards of played arms."""
    return sum(rewards.reward_for(index_id) for index_id in configuration_index_ids)
