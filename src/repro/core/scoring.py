"""The packed scoring core: flat arrays, blocked GEMMs, shared-memory workers.

This module is the single home of the C²UCB scoring math and of the
machinery that makes it fast at pool scale:

* **kernels** — :func:`expected_rewards`, :func:`exploration_bonus` and
  :func:`ucb_scores` are the only implementations of the paper's
  ``theta' x + alpha * sqrt(x' V^{-1} x)`` score.  The live learner
  (:class:`~repro.core.linear_bandit.C2UCB`), its frozen
  :class:`~repro.core.linear_bandit.LinearScorer` snapshots and the fleet's
  batched pass all route through them, so "bit-identical by construction"
  is a property of one function, not a promise kept in four places;
* **packing** — :func:`pack_arm_pool` lays the arm pool's static context
  features out as one C-contiguous ``(n_arms, dimension)`` matrix plus two
  numpy structured arrays (per-arm metadata, per-shard row ranges).  Shard
  boundaries become row slices of the packed matrix, so the per-shard
  python scoring loops collapse into one blocked GEMM
  (:func:`score_packed`);
* **process workers** — with ``ScoringConfig.workers > 1`` the packed
  arrays (contexts, θ, V⁻¹, the scores output) are published as
  :mod:`multiprocessing.shared_memory` buffers that worker processes attach
  zero-copy — no fork-pickling of specs or context matrices.  Buffers are
  unlinked in a ``finally`` block even when a worker dies mid-round
  (:class:`~concurrent.futures.process.BrokenProcessPool` falls back to the
  serial path), so no ``/dev/shm`` residue survives a crash;
* **the config surface** — :class:`ScoringConfig` is the one spelling of
  scoring behaviour, accepted by ``MabConfig(scoring=...)``,
  ``SimulationOptions(scoring=...)`` and ``FleetConfig(scoring=...)``.  The
  legacy knobs (``shard_by``/``shard_top_k``/``shard_workers``/
  ``batch_scoring``) live on as ``DeprecationWarning`` shims that normalise
  into it.

Determinism contract: every block of the packed matrix is scored by the
exact 2-D operations the legacy per-shard pass used (same shapes, same
C-contiguous layouts), so packed scores are bit-identical to the per-shard
scores at any worker count — block boundaries depend only on the pool, never
on scheduling.  A single-block pool reduces to the monolithic pass
bit-for-bit.
"""

from __future__ import annotations

import atexit
import itertools
import os
import sys
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Protocol, Sequence, runtime_checkable

import numpy as np

__all__ = [
    "ARM_META_DTYPE",
    "BLOCK_RANGE_DTYPE",
    "ConfigurableScoring",
    "PackedPool",
    "PackedScoreResult",
    "SCORING_STRATEGIES",
    "ScoringConfig",
    "ScoringNotSupportedError",
    "ScoringStats",
    "UnknownScoringStrategyError",
    "exploration_bonus",
    "expected_rewards",
    "pack_arm_pool",
    "score_packed",
    "ucb_scores",
]

#: Valid :attr:`ScoringConfig.strategy` spellings.  ``"monolithic"`` scores
#: the whole pool as one block; ``"table"``/``"hash"`` partition it with
#: :func:`repro.core.arms.shard_arms` first (one block per shard).
SCORING_STRATEGIES = ("monolithic", "table", "hash")


class UnknownScoringStrategyError(KeyError, ValueError):
    """Raised for a scoring strategy nobody defined.

    Subclasses both :class:`KeyError` and :class:`ValueError`, mirroring the
    registry errors (:class:`~repro.api.UnknownTunerError`), so both
    historical ``except`` spellings keep working.
    """

    # KeyError.__str__ reprs the message (extra quotes); render it plainly.
    __str__ = Exception.__str__


class ScoringNotSupportedError(TypeError, ValueError):
    """Raised when scoring options are given to a tuner that cannot honour them.

    Only pool-scoring tuners (the MAB) expose ``configure_scoring``; handing
    ``SimulationOptions(scoring=...)`` to NoIndex/PDTool/DDQN is a caller
    error, not something to ignore silently.
    """


@dataclass(frozen=True)
class ScoringConfig:
    """The single spelling of arm-pool scoring behaviour.

    Frozen and picklable: it rides inside ``MabConfig``,
    ``SimulationOptions`` and ``FleetConfig`` across
    ``run_competition(workers>1)`` process boundaries.

    Attributes:
        strategy: ``"monolithic"`` (one block, the default), ``"table"``
            (one block per indexed table, cross-table arms hash-bucketed) or
            ``"hash"`` (``n_hash_shards`` stable-hash buckets).  Partitioning
            affects *scoring only* — the C²UCB state stays global.
        top_k: Candidates each block forwards to the knapsack oracle (its
            local top-k by score, plus the per-group Pareto frontiers that
            make the merge selection-preserving); ``None`` forwards every
            arm.  Ignored by the monolithic strategy.
        workers: Process count for the blocked scoring pass: ``1`` scores
            blocks serially (default), ``> 1`` fans them out over a process
            pool attached to the packed pool's shared-memory buffers, ``0``
            uses one process per CPU.  Scores are bit-identical at any
            worker count (block boundaries never depend on scheduling).
        batch: Whether a :class:`~repro.fleet.TuningFleet` may fuse this
            tuner's rounds into its vectorized cross-tenant scoring pass.
        n_hash_shards: Bucket count for ``"hash"`` partitioning (and the
            cross-table fallback of ``"table"``).

    Raises:
        UnknownScoringStrategyError: For a strategy outside
            :data:`SCORING_STRATEGIES`.
        ValueError: For out-of-range ``top_k``/``workers``/``n_hash_shards``.
    """

    strategy: str = "monolithic"
    top_k: int | None = 16
    workers: int = 1
    batch: bool = True
    n_hash_shards: int = 8

    def __post_init__(self) -> None:
        strategy = self.strategy.strip().lower() if isinstance(self.strategy, str) else self.strategy
        if strategy not in SCORING_STRATEGIES:
            raise UnknownScoringStrategyError(
                f"unknown scoring strategy {self.strategy!r}; valid strategies: "
                f"{', '.join(SCORING_STRATEGIES)}"
            )
        object.__setattr__(self, "strategy", strategy)
        if self.top_k is not None and self.top_k < 1:
            raise ValueError("top_k must be at least 1 (or None)")
        if self.workers < 0:
            raise ValueError("workers must be >= 0 (0 = one per CPU)")
        if self.n_hash_shards < 1:
            raise ValueError("n_hash_shards must be at least 1")

    @property
    def shard_by(self) -> str | None:
        """The legacy ``shard_by`` equivalent of :attr:`strategy`."""
        return None if self.strategy == "monolithic" else self.strategy

    def resolved_workers(self, n_blocks: int) -> int:
        """Actual process count for a pool of ``n_blocks`` blocks."""
        workers = self.workers
        if workers == 0:
            workers = os.cpu_count() or 1
        return max(1, min(workers, n_blocks))


@runtime_checkable
class ConfigurableScoring(Protocol):
    """A tuner whose arm-pool scoring pass accepts a :class:`ScoringConfig`."""

    def configure_scoring(self, scoring: ScoringConfig) -> None: ...  # pragma: no cover - protocol


@dataclass(frozen=True)
class ScoringStats:
    """Diagnostics of one packed scoring pass (``MabTuner.last_scoring_stats``)."""

    #: Strategy the pass ran under (``"table"`` or ``"hash"``).
    strategy: str
    #: Arms in the round's pool before partitioning.
    n_arms: int
    #: Non-empty blocks (shards) the packed pool split into.
    n_shards: int
    #: Rows of the largest block — the critical path of a parallel pass.
    max_shard_size: int
    #: Merged survivors handed to the knapsack oracle after the top-k cut.
    n_candidates: int
    #: Worker processes the pass was configured to use.
    workers: int
    #: Whether the shared-memory process pool actually scored the pass
    #: (``False`` for serial passes and for the crash-recovery fallback).
    used_processes: bool
    #: Bytes published as shared-memory buffers (0 for serial passes).
    shared_memory_bytes: int


# --------------------------------------------------------------------- #
# kernels — the single implementation of the C²UCB score
# --------------------------------------------------------------------- #
def expected_rewards(theta: np.ndarray, contexts: np.ndarray) -> np.ndarray:
    """Point estimates ``theta' x_i`` for each context row."""
    return contexts @ theta


def exploration_bonus(v_inverse: np.ndarray, contexts: np.ndarray) -> np.ndarray:
    """Confidence widths ``sqrt(x' V^{-1} x)`` for each context row."""
    # (X @ V^{-1}) * X summed by row == diag(X V^{-1} X'), via BLAS.
    widths = np.einsum("ij,ij->i", contexts @ v_inverse, contexts)
    return np.sqrt(np.maximum(widths, 0.0))


def ucb_scores(
    theta: np.ndarray,
    v_inverse: np.ndarray,
    contexts: np.ndarray,
    alpha: float,
) -> np.ndarray:
    """UCB scores ``theta' x + alpha * sqrt(x' V^{-1} x)`` per context row.

    The exact operation sequence every scoring surface performs — changing
    it changes the low-order bits of every recommendation in the repo.
    """
    return expected_rewards(theta, contexts) + alpha * exploration_bonus(
        v_inverse, contexts
    )


# --------------------------------------------------------------------- #
# the packed pool
# --------------------------------------------------------------------- #
#: Per-arm metadata packed alongside the context matrix (one record per row,
#: same order): the arm's position in the original pool order and its
#: hypothetical index size.
ARM_META_DTYPE = np.dtype([("position", np.int64), ("size_bytes", np.int64)])

#: Per-block row ranges of the packed matrix (``[start, stop)`` slices).
BLOCK_RANGE_DTYPE = np.dtype([("start", np.int64), ("stop", np.int64)])


@dataclass
class PackedPool:
    """One arm pool packed into flat arrays for blocked scoring.

    ``contexts`` is the pool's context matrix in *block-grouped* order (all
    of block 0's rows, then block 1's, ...), C-contiguous so every block is
    a zero-copy row slice with the same memory layout a standalone per-shard
    matrix would have — the property that keeps blocked scores bit-identical
    to the legacy per-shard pass.  ``meta`` and ``blocks`` are numpy
    structured arrays (see :data:`ARM_META_DTYPE`,
    :data:`BLOCK_RANGE_DTYPE`); ``block_keys`` carries the shard keys for
    diagnostics.
    """

    contexts: np.ndarray
    meta: np.ndarray
    blocks: np.ndarray
    block_keys: tuple[str, ...]

    @property
    def n_arms(self) -> int:
        return int(self.contexts.shape[0])

    @property
    def dimension(self) -> int:
        return int(self.contexts.shape[1])

    @property
    def n_blocks(self) -> int:
        return int(len(self.blocks))

    @property
    def max_block_size(self) -> int:
        if self.n_blocks == 0:
            return 0
        return int((self.blocks["stop"] - self.blocks["start"]).max())

    def block_slices(self) -> list[tuple[int, int]]:
        """The ``[start, stop)`` row ranges as plain ints (picklable)."""
        return [(int(start), int(stop)) for start, stop in self.blocks]


def pack_arm_pool(
    context_blocks: Sequence[np.ndarray],
    positions: Sequence[Sequence[int]],
    size_bytes: Sequence[Sequence[int]],
    keys: Sequence[str],
) -> PackedPool:
    """Pack per-shard context blocks into one flat, sliceable pool.

    Args:
        context_blocks: One ``(k_b, dimension)`` context matrix per block
            (shard), in merge order.
        positions: Per block, each row's position in the original pool order.
        size_bytes: Per block, each row's hypothetical index size.
        keys: One shard key per block (diagnostics only).

    Returns:
        A :class:`PackedPool` whose ``contexts[start:stop]`` slices are
        byte-compatible with the original per-shard matrices.
    """
    if not (len(context_blocks) == len(positions) == len(size_bytes) == len(keys)):
        raise ValueError("context_blocks, positions, size_bytes and keys must align")
    if not context_blocks:
        return PackedPool(
            contexts=np.empty((0, 0), dtype=float),
            meta=np.empty(0, dtype=ARM_META_DTYPE),
            blocks=np.empty(0, dtype=BLOCK_RANGE_DTYPE),
            block_keys=(),
        )
    # Normalised to C-contiguous float64: exactly the dtype LinearScorer's
    # own ``asarray(dtype=float)`` conversion scores, for any input dtype
    # (widening is exact), and the layout the shared-memory path publishes —
    # so serial, process-pool and monolithic scores share one numeric path.
    contexts = np.ascontiguousarray(np.vstack(context_blocks), dtype=np.float64)
    n_arms = contexts.shape[0]
    meta = np.empty(n_arms, dtype=ARM_META_DTYPE)
    blocks = np.empty(len(context_blocks), dtype=BLOCK_RANGE_DTYPE)
    row = 0
    for index, (block, block_positions, block_sizes) in enumerate(
        zip(context_blocks, positions, size_bytes)
    ):
        stop = row + len(block)
        if not (len(block) == len(block_positions) == len(block_sizes)):
            raise ValueError(f"block {index}: rows, positions and sizes must align")
        blocks[index] = (row, stop)
        meta["position"][row:stop] = np.asarray(block_positions, dtype=np.int64)
        meta["size_bytes"][row:stop] = np.asarray(block_sizes, dtype=np.int64)
        row = stop
    return PackedPool(
        contexts=contexts, meta=meta, blocks=blocks, block_keys=tuple(keys)
    )


# --------------------------------------------------------------------- #
# blocked scoring (serial and shared-memory process pool)
# --------------------------------------------------------------------- #
@dataclass
class PackedScoreResult:
    """Scores of one packed pass plus how it was computed."""

    #: Scores in packed row order (one per ``PackedPool`` row).
    scores: np.ndarray
    #: Whether the shared-memory process pool computed them.
    used_processes: bool
    #: Bytes published as shared-memory buffers (0 when serial).
    shared_memory_bytes: int


def _score_blocks_serial(
    pool: PackedPool,
    theta: np.ndarray,
    v_inverse: np.ndarray,
    alpha: float,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """One blocked pass over the packed matrix on the calling thread."""
    scores = np.empty(pool.n_arms, dtype=float) if out is None else out
    for start, stop in pool.block_slices():
        scores[start:stop] = ucb_scores(
            theta, v_inverse, pool.contexts[start:stop], alpha
        )
    return scores


def score_packed(
    pool: PackedPool,
    theta: np.ndarray,
    v_inverse: np.ndarray,
    alpha: float,
    workers: int = 1,
) -> PackedScoreResult:
    """Score every row of a packed pool with a blocked UCB pass.

    Each block is scored by the same 2-D kernel call (:func:`ucb_scores`)
    regardless of worker count or scheduling, so the result is bit-identical
    for every ``workers`` value; ``workers > 1`` publishes the packed
    arrays as shared-memory buffers and fans the blocks out over a process
    pool (zero-copy attach, guaranteed unlink).  A worker crash
    (:class:`~concurrent.futures.process.BrokenProcessPool`) or an
    environment without shared memory degrades to the serial pass — same
    scores, no residue.
    """
    if pool.n_arms == 0:
        return PackedScoreResult(
            scores=np.empty(0, dtype=float), used_processes=False, shared_memory_bytes=0
        )
    if workers > 1 and pool.n_blocks > 1:
        result = _score_blocks_processes(pool, theta, v_inverse, alpha, workers)
        if result is not None:
            return result
    return PackedScoreResult(
        scores=_score_blocks_serial(pool, theta, v_inverse, alpha),
        used_processes=False,
        shared_memory_bytes=0,
    )


#: Shared-memory segment names: recognisable (tests scan /dev/shm for the
#: prefix) and unique per (process, pass) without reading clocks or RNGs.
_SHM_PREFIX = "reproscore"
_SHM_COUNTER = itertools.count()

@runtime_checkable
class _ScoringObserver(Protocol):
    """Hook surface for the opt-in shared-memory sanitizer.

    ``tools.reprolint.shmsan`` installs an implementation when
    ``REPRO_SHM_SAN=1``; production runs never pay for it (the hook is a
    module-level ``None`` check).  The observer learns which row ranges each
    worker was assigned (to assert the writes are disjoint) and when the
    pool shuts down (the point at which its ledger must balance).
    """

    def record_writer_ranges(
        self, segment_name: str, runs: Sequence[tuple[tuple[int, int], ...]]
    ) -> None: ...  # pragma: no cover - protocol

    def pool_shutdown(self) -> None: ...  # pragma: no cover - protocol


_SCORING_OBSERVER: _ScoringObserver | None = None
_SAN_AUTOINSTALL_TRIED = False


def _install_scoring_observer(observer: _ScoringObserver | None) -> None:
    """Install (or, with ``None``, clear) the sanitizer observer."""
    global _SCORING_OBSERVER
    _SCORING_OBSERVER = observer


def _maybe_autoinstall_sanitizer() -> None:
    """Install ``tools.reprolint.shmsan`` once when ``REPRO_SHM_SAN=1``.

    Runs before the first executor is created so fork-started workers
    inherit the patched :class:`~multiprocessing.shared_memory.SharedMemory`
    class.  A repo checkout is the only place the sanitizer exists; an
    installed ``repro`` package without ``tools/`` silently skips it.
    """
    global _SAN_AUTOINSTALL_TRIED
    if _SAN_AUTOINSTALL_TRIED:
        return
    _SAN_AUTOINSTALL_TRIED = True
    if os.environ.get("REPRO_SHM_SAN") != "1" or _SCORING_OBSERVER is not None:
        return
    try:
        from tools.reprolint import shmsan
    except ImportError:  # pragma: no cover - installed-package runs
        return
    shmsan.install(force=True)


#: Lazily created, reused process pools keyed by worker count.  Reuse
#: amortises the fork cost across rounds; a BrokenProcessPool discards the
#: pool so the next pass starts fresh.
_EXECUTORS: dict[int, ProcessPoolExecutor] = {}


def _shutdown_executors() -> None:
    for executor in _EXECUTORS.values():
        executor.shutdown(wait=False, cancel_futures=True)
    _EXECUTORS.clear()
    if _SCORING_OBSERVER is not None:
        _SCORING_OBSERVER.pool_shutdown()


atexit.register(_shutdown_executors)


def _executor(workers: int) -> ProcessPoolExecutor:
    executor = _EXECUTORS.get(workers)
    if executor is None:
        executor = ProcessPoolExecutor(max_workers=workers)
        _EXECUTORS[workers] = executor
    return executor


def _discard_executor(workers: int) -> None:
    executor = _EXECUTORS.pop(workers, None)
    if executor is not None:
        executor.shutdown(wait=False, cancel_futures=True)
        if _SCORING_OBSERVER is not None:
            _SCORING_OBSERVER.pool_shutdown()


def _attach(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without taking over its cleanup.

    The creating process owns the unlink; 3.13+ has ``track=False`` for
    exactly this.  On 3.10–3.12 a plain attach re-registers the segment, but
    the fork-started workers share the parent's resource tracker, so the
    re-registration is an idempotent set-add in the *same* cache the
    parent's ``unlink`` unregisters from — explicitly unregistering here
    would instead strip the parent's registration and make that unlink
    KeyError inside the tracker.
    """
    if sys.version_info >= (3, 13):
        return shared_memory.SharedMemory(name=name, track=False)
    return shared_memory.SharedMemory(name=name)


def _score_block_worker(
    manifest: dict[str, tuple[str, tuple[int, ...]]],
    alpha: float,
    block_slices: tuple[tuple[int, int], ...],
) -> None:
    """Worker entry point: attach the shared buffers, score assigned blocks.

    ``manifest`` maps logical names (``contexts``/``theta``/``v_inverse``/
    ``scores``) to ``(segment_name, shape)`` pairs; every array is float64.
    Workers only *read* the frozen snapshot arrays and write disjoint row
    ranges of the scores output, so any scheduling produces identical bytes.
    """
    segments: list[shared_memory.SharedMemory] = []
    try:
        views: dict[str, np.ndarray] = {}
        for logical, (segment_name, shape) in manifest.items():
            segment = _attach(segment_name)
            segments.append(segment)
            views[logical] = np.ndarray(shape, dtype=np.float64, buffer=segment.buf)
        theta = views["theta"]
        v_inverse = views["v_inverse"]
        contexts = views["contexts"]
        scores = views["scores"]
        for start, stop in block_slices:
            scores[start:stop] = ucb_scores(
                theta, v_inverse, contexts[start:stop], alpha
            )
        # Drop the array views before closing: an mmap with live exports
        # cannot be closed.
        del views, theta, v_inverse, contexts, scores
    finally:
        for segment in segments:
            segment.close()


def _partition_blocks(
    block_slices: list[tuple[int, int]], workers: int
) -> list[tuple[tuple[int, int], ...]]:
    """Split the block list into ``workers`` contiguous runs balanced by rows.

    Greedy longest-processing-time assignment would reorder blocks; plain
    contiguous runs keep the mapping obvious and deterministic.  The split
    affects only *which process* scores a block, never how — scores are
    bit-identical for any partition.
    """
    total_rows = sum(stop - start for start, stop in block_slices)
    target = max(1, -(-total_rows // workers))  # ceil division
    runs: list[tuple[tuple[int, int], ...]] = []
    current: list[tuple[int, int]] = []
    current_rows = 0
    for block in block_slices:
        current.append(block)
        current_rows += block[1] - block[0]
        if current_rows >= target and len(runs) < workers - 1:
            runs.append(tuple(current))
            current = []
            current_rows = 0
    if current:
        runs.append(tuple(current))
    return runs


def _create_segment(data: np.ndarray) -> shared_memory.SharedMemory:
    """Publish one float64 array as a fresh shared-memory segment."""
    array = np.ascontiguousarray(data, dtype=np.float64)
    name = f"{_SHM_PREFIX}_{os.getpid()}_{next(_SHM_COUNTER)}"
    segment = shared_memory.SharedMemory(name=name, create=True, size=max(1, array.nbytes))
    try:
        view = np.ndarray(array.shape, dtype=np.float64, buffer=segment.buf)
        view[...] = array
        del view
    except BaseException:
        # The segment exists in /dev/shm the moment create succeeds; if the
        # copy-in dies the caller never sees the handle, so release it here.
        segment.close()
        segment.unlink()
        raise
    return segment


def _score_blocks_processes(
    pool: PackedPool,
    theta: np.ndarray,
    v_inverse: np.ndarray,
    alpha: float,
    workers: int,
) -> PackedScoreResult | None:
    """Fan the blocked pass out over the shared-memory process pool.

    Returns ``None`` when the environment cannot run it (no shared memory,
    a worker died mid-pass) — the caller falls back to the serial pass,
    which produces identical scores.  The segments are unlinked in the
    ``finally`` block on *every* path, including the crash one, so no
    ``/dev/shm`` residue can survive.
    """
    _maybe_autoinstall_sanitizer()
    segments: list[shared_memory.SharedMemory] = []
    try:
        try:
            contexts_seg = _create_segment(pool.contexts)
            segments.append(contexts_seg)
            theta_seg = _create_segment(theta)
            segments.append(theta_seg)
            v_inverse_seg = _create_segment(v_inverse)
            segments.append(v_inverse_seg)
            scores_seg = shared_memory.SharedMemory(
                name=f"{_SHM_PREFIX}_{os.getpid()}_{next(_SHM_COUNTER)}",
                create=True,
                size=max(1, pool.n_arms * 8),
            )
            segments.append(scores_seg)
        except OSError:
            return None
        manifest = {
            "contexts": (contexts_seg.name, (pool.n_arms, pool.dimension)),
            "theta": (theta_seg.name, (int(len(theta)),)),
            "v_inverse": (v_inverse_seg.name, (int(len(theta)), int(len(theta)))),
            "scores": (scores_seg.name, (pool.n_arms,)),
        }
        runs = _partition_blocks(pool.block_slices(), workers)
        if _SCORING_OBSERVER is not None:
            _SCORING_OBSERVER.record_writer_ranges(scores_seg.name, runs)
        shm_bytes = sum(segment.size for segment in segments)
        try:
            executor = _executor(workers)
            futures = [
                executor.submit(_score_block_worker, manifest, alpha, run)
                for run in runs
            ]
            for future in futures:
                future.result()
        except (BrokenProcessPool, OSError, RuntimeError):
            # A worker died (or the pool could not start): discard the pool
            # so the next pass forks fresh, and let the caller re-score
            # serially — same bytes, no residue (the finally below unlinks).
            _discard_executor(workers)
            return None
        scores_view = np.ndarray(pool.n_arms, dtype=np.float64, buffer=scores_seg.buf)
        scores = np.array(scores_view, dtype=float, copy=True)
        del scores_view
        return PackedScoreResult(
            scores=scores, used_processes=True, shared_memory_bytes=shm_bytes
        )
    finally:
        for segment in segments:
            segment.close()
            try:
                segment.unlink()
            except FileNotFoundError:  # pragma: no cover - double-unlink race
                pass
