"""The paper's contribution: bandit-based online index selection."""

from .arms import Arm, ArmGenerator
from .config import MabConfig
from .context import DERIVED_FEATURE_NAMES, ContextBuilder
from .linear_bandit import C2UCB
from .oracle import GreedyOracle, OracleResult, ScoredArm
from .query_store import QueryStore, RoundSummary, TemplateRecord
from .rewards import RoundRewards, compute_round_rewards, super_arm_reward
from .tuner import MabTuner

__all__ = [
    "Arm",
    "ArmGenerator",
    "C2UCB",
    "ContextBuilder",
    "DERIVED_FEATURE_NAMES",
    "GreedyOracle",
    "MabConfig",
    "MabTuner",
    "OracleResult",
    "QueryStore",
    "RoundRewards",
    "RoundSummary",
    "ScoredArm",
    "TemplateRecord",
    "compute_round_rewards",
    "super_arm_reward",
]
