"""The paper's contribution: bandit-based online index selection."""

from .arms import Arm, ArmGenerator, ArmShard, shard_arms, shard_key_for
from .config import MabConfig
from .context import DERIVED_FEATURE_NAMES, ContextBuilder
from .linear_bandit import C2UCB, LinearScorer
from .oracle import GreedyOracle, OracleResult, ScoredArm, merge_shard_candidates
from .query_store import QueryStore, RoundSummary, TemplateRecord
from .rewards import RoundRewards, compute_round_rewards, super_arm_reward
from .tuner import MabTuner, ShardScoreStats

__all__ = [
    "Arm",
    "ArmGenerator",
    "ArmShard",
    "C2UCB",
    "ContextBuilder",
    "DERIVED_FEATURE_NAMES",
    "GreedyOracle",
    "LinearScorer",
    "MabConfig",
    "MabTuner",
    "OracleResult",
    "QueryStore",
    "RoundRewards",
    "RoundSummary",
    "ScoredArm",
    "ShardScoreStats",
    "TemplateRecord",
    "compute_round_rewards",
    "merge_shard_candidates",
    "shard_arms",
    "shard_key_for",
    "super_arm_reward",
]
