"""Workload-driven arm (candidate index) generation and arm-pool sharding.

Rather than enumerating every column combination of the schema, arms are
generated from the *observed* queries of interest: combinations and
permutations of each query's predicate columns (filter and join predicates),
with and without the query's payload attributes as INCLUDE columns (covering
variants).  This is the paper's "dynamic arms from workload predicates"
mechanism, which keeps the action space small and exploits the natural skew of
real workloads.

At large schemas the generated pool still grows with the number of distinct
(query, table) pairs, so the scoring pass can be *sharded*:
:func:`shard_arms` partitions a pool into :class:`ArmShard` groups (one per
table, or by stable hash) that are scored independently against the shared
bandit state and merged back before the knapsack oracle — see
:meth:`repro.core.tuner.MabTuner.recommend`.
"""

from __future__ import annotations

import itertools
import zlib
from dataclasses import dataclass, field

from repro.engine.indexes import IndexDefinition
from repro.engine.query import Query

from .config import MabConfig

#: Partitioning strategies accepted by :func:`shard_arms` (and
#: :attr:`repro.core.config.MabConfig.shard_by`).
SHARD_STRATEGIES = ("table", "hash")


@dataclass
class Arm:
    """A candidate index plus bookkeeping about the queries that motivated it."""

    index: IndexDefinition
    #: Template ids of the queries of interest this arm was generated for.
    source_templates: set[str] = field(default_factory=set)
    #: Query ids (within the current QoI) for which this arm is a covering index.
    covering_for_queries: set[str] = field(default_factory=set)
    #: Rounds in which the optimiser actually used this arm (for context D3).
    usage_rounds: int = 0
    #: Last round in which the arm was generated (kept for pruning/debugging).
    last_generated_round: int = 0

    @property
    def index_id(self) -> str:
        return self.index.index_id

    @property
    def table(self) -> str:
        return self.index.table


class ArmGenerator:
    """Generates candidate-index arms from queries of interest."""

    def __init__(self, config: MabConfig | None = None) -> None:
        self.config = config or MabConfig()

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def arms_for_query(self, query: Query) -> list[Arm]:
        """All arms motivated by a single query.

        Args:
            query: One parsed query; its per-table filter/join predicate
                columns seed the key permutations and its payload columns the
                covering (INCLUDE) variants.

        Returns:
            Fresh :class:`Arm` objects (at most
            :attr:`MabConfig.max_arms_per_query_table` per referenced table),
            each tagged with the query's template id.
        """
        arms: list[Arm] = []
        for table in query.tables:
            arms.extend(self._arms_for_query_table(query, table))
        return arms

    def generate(self, queries: list[Query]) -> dict[str, Arm]:
        """Arms for a set of queries of interest, merged by index identity.

        Args:
            queries: The current queries of interest.

        Returns:
            ``{index_id: Arm}`` where arms motivated by several queries carry
            the union of their source templates and covering-query sets.
        """
        merged: dict[str, Arm] = {}
        for query in queries:
            for arm in self.arms_for_query(query):
                existing = merged.get(arm.index_id)
                if existing is None:
                    merged[arm.index_id] = arm
                else:
                    existing.source_templates |= arm.source_templates
                    existing.covering_for_queries |= arm.covering_for_queries
        return merged

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _arms_for_query_table(self, query: Query, table: str) -> list[Arm]:
        predicate_columns = list(query.predicate_columns_for(table))
        join_columns = [
            column for column in query.join_columns_for(table)
            if column not in predicate_columns
        ]
        key_candidates = predicate_columns + join_columns
        if not key_candidates:
            return []
        payload_columns = tuple(
            column for column in query.payload_columns_for(table)
            if column not in key_candidates
        )
        referenced = query.referenced_columns_for(table)

        arms: list[Arm] = []
        seen: set[tuple[tuple[str, ...], tuple[str, ...]]] = set()
        budget = self.config.max_arms_per_query_table

        def add(key_columns: tuple[str, ...], include_columns: tuple[str, ...]) -> None:
            if len(arms) >= budget:
                return
            signature = (key_columns, include_columns)
            if signature in seen:
                return
            seen.add(signature)
            index = IndexDefinition(table, key_columns, include_columns)
            arm = Arm(index=index, source_templates={query.template_id})
            if index.covers_columns(referenced):
                arm.covering_for_queries.add(query.query_id)
            arms.append(arm)

        max_width = min(self.config.max_index_width, len(key_candidates))
        for width in range(1, max_width + 1):
            for combination in itertools.combinations(key_candidates, width):
                for permutation in itertools.permutations(combination):
                    add(tuple(permutation), ())
                    if self.config.include_covering_arms and payload_columns:
                        add(tuple(permutation), payload_columns)
                    if len(arms) >= budget:
                        return arms
        return arms


# --------------------------------------------------------------------- #
# arm-pool sharding
# --------------------------------------------------------------------- #
@dataclass
class ArmShard:
    """One scoring partition of the arm pool.

    A shard owns its slice of the round's arm pool — the arms themselves plus
    their *positions* in the pool ordering, so its slice of the context matrix
    and of the pool-wide tie-break jitter can be taken without re-deriving
    anything.  Shards are scoring units only: the bandit state (``theta``,
    ``V⁻¹``) stays global, so a shard's scores are identical to the scores the
    same arms would receive in a monolithic pass.
    """

    #: Stable partition key, e.g. ``"table:lineitem"`` or ``"hash:3"``.
    key: str
    #: The shard's arms, in pool order.
    arms: list[Arm] = field(default_factory=list)
    #: Position of each arm in the round's pool ordering (parallel to ``arms``).
    positions: list[int] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.arms)


def _stable_hash(text: str) -> int:
    """Process-independent hash (``hash()`` is salted per interpreter run)."""
    return zlib.crc32(text.encode("utf-8"))


def shard_key_for(arm: Arm, shard_by: str = "table", n_hash_shards: int = 8) -> str:
    """The shard key an arm belongs to under a partitioning strategy.

    Args:
        arm: The arm to place.
        shard_by: ``"table"`` groups arms by the table they index; ``"hash"``
            spreads them over ``n_hash_shards`` buckets by a stable hash of
            the index id (useful when one table dominates the pool).
        n_hash_shards: Bucket count for hash placement.

    Returns:
        ``"table:<name>"`` or ``"hash:<bucket>"``.  Under ``"table"``, an arm
        whose index spans more than one table (not produced by
        :class:`ArmGenerator`, but expressible by downstream arm sources that
        attach a ``tables`` attribute to their index) has no single home table
        and falls back to the hash bucket.

    Raises:
        ValueError: For an unknown ``shard_by`` or ``n_hash_shards < 1``.
    """
    if shard_by not in SHARD_STRATEGIES:
        raise ValueError(
            f"unknown shard_by {shard_by!r}; expected one of {SHARD_STRATEGIES}"
        )
    if n_hash_shards < 1:
        raise ValueError("n_hash_shards must be at least 1")
    if shard_by == "table":
        tables = set(getattr(arm.index, "tables", None) or (arm.table,))
        if len(tables) == 1:
            return f"table:{next(iter(tables))}"
        # Cross-table arm: no single home table, fall back to hash placement.
    return f"hash:{_stable_hash(arm.index_id) % n_hash_shards}"


def shard_arms(
    arms: list[Arm],
    shard_by: str = "table",
    n_hash_shards: int = 8,
) -> list[ArmShard]:
    """Partition an arm pool into scoring shards.

    Args:
        arms: The round's arm pool, in pool order.
        shard_by: Partitioning strategy (see :func:`shard_key_for`).
        n_hash_shards: Bucket count for ``"hash"`` placement (and for the
            cross-table fallback under ``"table"``).

    Returns:
        Non-empty shards ordered by first appearance in the pool, each
        preserving pool order internally — so concatenating the shards'
        ``positions`` yields a permutation of ``range(len(arms))`` and the
        partition is deterministic for a given pool ordering.

    Raises:
        ValueError: For an unknown ``shard_by`` or ``n_hash_shards < 1``.
    """
    shards: dict[str, ArmShard] = {}
    for position, arm in enumerate(arms):
        key = shard_key_for(arm, shard_by, n_hash_shards)
        shard = shards.get(key)
        if shard is None:
            shard = shards[key] = ArmShard(key=key)
        shard.arms.append(arm)
        shard.positions.append(position)
    return list(shards.values())
