"""Workload-driven arm (candidate index) generation.

Rather than enumerating every column combination of the schema, arms are
generated from the *observed* queries of interest: combinations and
permutations of each query's predicate columns (filter and join predicates),
with and without the query's payload attributes as INCLUDE columns (covering
variants).  This is the paper's "dynamic arms from workload predicates"
mechanism, which keeps the action space small and exploits the natural skew of
real workloads.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.engine.indexes import IndexDefinition
from repro.engine.query import Query

from .config import MabConfig


@dataclass
class Arm:
    """A candidate index plus bookkeeping about the queries that motivated it."""

    index: IndexDefinition
    #: Template ids of the queries of interest this arm was generated for.
    source_templates: set[str] = field(default_factory=set)
    #: Query ids (within the current QoI) for which this arm is a covering index.
    covering_for_queries: set[str] = field(default_factory=set)
    #: Rounds in which the optimiser actually used this arm (for context D3).
    usage_rounds: int = 0
    #: Last round in which the arm was generated (kept for pruning/debugging).
    last_generated_round: int = 0

    @property
    def index_id(self) -> str:
        return self.index.index_id

    @property
    def table(self) -> str:
        return self.index.table


class ArmGenerator:
    """Generates candidate-index arms from queries of interest."""

    def __init__(self, config: MabConfig | None = None):
        self.config = config or MabConfig()

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def arms_for_query(self, query: Query) -> list[Arm]:
        """All arms motivated by a single query."""
        arms: list[Arm] = []
        for table in query.tables:
            arms.extend(self._arms_for_query_table(query, table))
        return arms

    def generate(self, queries: list[Query]) -> dict[str, Arm]:
        """Arms for a set of queries of interest, merged by index identity."""
        merged: dict[str, Arm] = {}
        for query in queries:
            for arm in self.arms_for_query(query):
                existing = merged.get(arm.index_id)
                if existing is None:
                    merged[arm.index_id] = arm
                else:
                    existing.source_templates |= arm.source_templates
                    existing.covering_for_queries |= arm.covering_for_queries
        return merged

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _arms_for_query_table(self, query: Query, table: str) -> list[Arm]:
        predicate_columns = list(query.predicate_columns_for(table))
        join_columns = [
            column for column in query.join_columns_for(table)
            if column not in predicate_columns
        ]
        key_candidates = predicate_columns + join_columns
        if not key_candidates:
            return []
        payload_columns = tuple(
            column for column in query.payload_columns_for(table)
            if column not in key_candidates
        )
        referenced = query.referenced_columns_for(table)

        arms: list[Arm] = []
        seen: set[tuple[tuple[str, ...], tuple[str, ...]]] = set()
        budget = self.config.max_arms_per_query_table

        def add(key_columns: tuple[str, ...], include_columns: tuple[str, ...]) -> None:
            if len(arms) >= budget:
                return
            signature = (key_columns, include_columns)
            if signature in seen:
                return
            seen.add(signature)
            index = IndexDefinition(table, key_columns, include_columns)
            arm = Arm(index=index, source_templates={query.template_id})
            if index.covers_columns(referenced):
                arm.covering_for_queries.add(query.query_id)
            arms.append(arm)

        max_width = min(self.config.max_index_width, len(key_candidates))
        for width in range(1, max_width + 1):
            for combination in itertools.combinations(key_candidates, width):
                for permutation in itertools.permutations(combination):
                    add(tuple(permutation), ())
                    if self.config.include_covering_arms and payload_columns:
                        add(tuple(permutation), payload_columns)
                    if len(arms) >= budget:
                        return arms
        return arms
