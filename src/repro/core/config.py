"""Hyper-parameters of the MAB index-tuning framework.

The paper stresses that the bandit needs only two hyper-parameters —
``lambda`` (ridge regularisation, whose influence vanishes as rounds
accumulate) and ``alpha`` (the exploration boost) — in contrast to the large
hyper-parameter space of deep-RL alternatives.  The remaining knobs below
control arm generation and the query store, and keep the same defaults across
every experiment in the repository.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class MabConfig:
    """Configuration of :class:`repro.core.tuner.MabTuner`."""

    #: Ridge regularisation of the shared linear model (C²UCB ``lambda``).
    regularisation: float = 1.0
    #: Base exploration boost (C²UCB ``alpha``).
    alpha: float = 2.0
    #: Per-round decay applied to the exploration boost; 1.0 disables decay.
    #: The paper reduces exploration over time ("reducing exploration with
    #: time"), which a mild geometric decay reproduces.
    alpha_decay: float = 0.99
    #: Smallest exploration boost the decay is allowed to reach.
    alpha_floor: float = 0.1

    #: Maximum number of key columns in a generated arm (combinations and
    #: permutations beyond this width add little and explode the arm count).
    max_index_width: int = 3
    #: Maximum number of permutations generated per (query, table) pair.
    max_arms_per_query_table: int = 24
    #: Whether covering variants (payload columns in an INCLUDE list) are added.
    include_covering_arms: bool = True

    #: Number of recent rounds whose templates form the queries of interest.
    qoi_window_rounds: int = 2
    #: Fraction of new templates in a round beyond which the workload is
    #: considered shifted and learned knowledge is (partially) forgotten.
    shift_detection_threshold: float = 0.6
    #: Factor applied to the learned statistics when a shift is detected
    #: (0 = forget everything, 1 = keep everything).
    forgetting_factor: float = 0.4

    #: Penalty factor applied to an arm's creation cost inside the reward.
    #: 1.0 reproduces the paper's reward exactly.
    creation_cost_weight: float = 1.0

    #: Arm-pool sharding strategy for the scoring pass: ``None`` scores the
    #: whole pool monolithically, ``"table"`` partitions arms by the table
    #: they index (cross-table arms fall back to hash placement) and
    #: ``"hash"`` spreads them over :attr:`n_hash_shards` stable-hash buckets.
    #: Sharding partitions *scoring only* — the C²UCB state stays global.
    shard_by: str | None = None
    #: Bucket count for ``"hash"`` sharding (and the cross-table fallback).
    n_hash_shards: int = 8
    #: Candidates each shard forwards to the knapsack oracle (its local
    #: top-k by score); ``None`` forwards every arm (exact merge).
    shard_top_k: int | None = 16
    #: Worker threads for the sharded scoring pass: ``1`` scores shards
    #: serially (default), ``> 1`` fans the per-shard passes out over a
    #: thread pool of that size, ``0`` uses one thread per CPU.  Shards share
    #: no mutable state (frozen scorer snapshot, per-shard context slices)
    #: and results merge in shard order, so recommendations are identical at
    #: any worker count.  Only meaningful when :attr:`shard_by` is set.
    shard_workers: int = 1

    #: Random seed for tie-breaking.
    seed: int = 17

    def __post_init__(self) -> None:
        if self.regularisation <= 0:
            raise ValueError("regularisation must be positive")
        if self.alpha < 0:
            raise ValueError("alpha must be non-negative")
        if not 0 < self.alpha_decay <= 1:
            raise ValueError("alpha_decay must be in (0, 1]")
        if self.max_index_width < 1:
            raise ValueError("max_index_width must be at least 1")
        if self.qoi_window_rounds < 1:
            raise ValueError("qoi_window_rounds must be at least 1")
        if not 0 <= self.forgetting_factor <= 1:
            raise ValueError("forgetting_factor must be in [0, 1]")
        if not 0 <= self.shift_detection_threshold <= 1:
            raise ValueError("shift_detection_threshold must be in [0, 1]")
        if self.shard_by is not None and self.shard_by not in ("table", "hash"):
            raise ValueError(
                f"shard_by must be None, 'table' or 'hash', got {self.shard_by!r}"
            )
        if self.n_hash_shards < 1:
            raise ValueError("n_hash_shards must be at least 1")
        if self.shard_top_k is not None and self.shard_top_k < 1:
            raise ValueError("shard_top_k must be at least 1 (or None)")
        if self.shard_workers < 0:
            raise ValueError("shard_workers must be >= 0 (0 = one per CPU)")

    def alpha_at(self, round_number: int) -> float:
        """Exploration boost used in the given (1-based) round."""
        decayed = self.alpha * (self.alpha_decay ** max(0, round_number - 1))
        return max(self.alpha_floor, decayed)
