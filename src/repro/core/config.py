"""Hyper-parameters of the MAB index-tuning framework.

The paper stresses that the bandit needs only two hyper-parameters —
``lambda`` (ridge regularisation, whose influence vanishes as rounds
accumulate) and ``alpha`` (the exploration boost) — in contrast to the large
hyper-parameter space of deep-RL alternatives.  The remaining knobs below
control arm generation and the query store, and keep the same defaults across
every experiment in the repository.
"""

from __future__ import annotations

import warnings
from dataclasses import InitVar, dataclass
from typing import Any

from .scoring import ScoringConfig

#: Sentinel distinguishing "legacy knob omitted" from any explicit value.
_UNSET: Any = object()


def _warn_legacy_scoring_knob(owner: str, names: str) -> None:
    """One DeprecationWarning per construction that used legacy scoring knobs."""
    warnings.warn(
        f"{owner}({names}=...) is deprecated; pass "
        f"{owner}(scoring=ScoringConfig(...)) instead",
        DeprecationWarning,
        stacklevel=4,
    )


@dataclass
class MabConfig:
    """Configuration of :class:`repro.core.tuner.MabTuner`.

    Scoring behaviour lives in :attr:`scoring`
    (:class:`~repro.core.scoring.ScoringConfig`); the legacy
    ``shard_by``/``n_hash_shards``/``shard_top_k``/``shard_workers`` keyword
    arguments still construct (they normalise into :attr:`scoring` with a
    :class:`DeprecationWarning`) and still read back as derived properties.
    """

    #: Ridge regularisation of the shared linear model (C²UCB ``lambda``).
    regularisation: float = 1.0
    #: Base exploration boost (C²UCB ``alpha``).
    alpha: float = 2.0
    #: Per-round decay applied to the exploration boost; 1.0 disables decay.
    #: The paper reduces exploration over time ("reducing exploration with
    #: time"), which a mild geometric decay reproduces.
    alpha_decay: float = 0.99
    #: Smallest exploration boost the decay is allowed to reach.
    alpha_floor: float = 0.1

    #: Maximum number of key columns in a generated arm (combinations and
    #: permutations beyond this width add little and explode the arm count).
    max_index_width: int = 3
    #: Maximum number of permutations generated per (query, table) pair.
    max_arms_per_query_table: int = 24
    #: Whether covering variants (payload columns in an INCLUDE list) are added.
    include_covering_arms: bool = True

    #: Number of recent rounds whose templates form the queries of interest.
    qoi_window_rounds: int = 2
    #: Fraction of new templates in a round beyond which the workload is
    #: considered shifted and learned knowledge is (partially) forgotten.
    shift_detection_threshold: float = 0.6
    #: Factor applied to the learned statistics when a shift is detected
    #: (0 = forget everything, 1 = keep everything).
    forgetting_factor: float = 0.4

    #: Penalty factor applied to an arm's creation cost inside the reward.
    #: 1.0 reproduces the paper's reward exactly.
    creation_cost_weight: float = 1.0

    #: Deprecated spelling of ``scoring.strategy`` (``None`` == monolithic).
    #: Reads back as a derived property; writing it at construction warns.
    shard_by: InitVar[Any] = _UNSET
    #: Deprecated spelling of ``scoring.n_hash_shards``.
    n_hash_shards: InitVar[Any] = _UNSET
    #: Deprecated spelling of ``scoring.top_k``.
    shard_top_k: InitVar[Any] = _UNSET
    #: Deprecated spelling of ``scoring.workers``.
    shard_workers: InitVar[Any] = _UNSET

    #: Random seed for tie-breaking.
    seed: int = 17

    #: How the arm pool is scored each round (strategy, per-shard top-k,
    #: worker processes, fleet batching).  Always a
    #: :class:`~repro.core.scoring.ScoringConfig` after construction —
    #: ``None`` (the default) means "monolithic defaults, unless legacy
    #: knobs were given".  Partitioned strategies shard *scoring only* —
    #: the C²UCB state stays global.
    scoring: ScoringConfig | None = None

    def __post_init__(
        self,
        shard_by: Any,
        n_hash_shards: Any,
        shard_top_k: Any,
        shard_workers: Any,
    ) -> None:
        if self.regularisation <= 0:
            raise ValueError("regularisation must be positive")
        if self.alpha < 0:
            raise ValueError("alpha must be non-negative")
        if not 0 < self.alpha_decay <= 1:
            raise ValueError("alpha_decay must be in (0, 1]")
        if self.max_index_width < 1:
            raise ValueError("max_index_width must be at least 1")
        if self.qoi_window_rounds < 1:
            raise ValueError("qoi_window_rounds must be at least 1")
        if not 0 <= self.forgetting_factor <= 1:
            raise ValueError("forgetting_factor must be in [0, 1]")
        if not 0 <= self.shift_detection_threshold <= 1:
            raise ValueError("shift_detection_threshold must be in [0, 1]")
        if self.scoring is not None:
            # "scoring wins": dataclasses.replace() re-feeds the derived
            # legacy properties through these InitVars, so when an explicit
            # ScoringConfig is present the legacy values are ignored silently
            # — replace() round-trips neither warn nor mutate.
            if not isinstance(self.scoring, ScoringConfig):
                raise TypeError(
                    f"scoring must be a ScoringConfig, got {type(self.scoring).__name__}"
                )
            return
        self.scoring = _normalise_legacy_scoring(
            "MabConfig", shard_by, n_hash_shards, shard_top_k, shard_workers
        )

    def alpha_at(self, round_number: int) -> float:
        """Exploration boost used in the given (1-based) round."""
        decayed = self.alpha * (self.alpha_decay ** max(0, round_number - 1))
        return max(self.alpha_floor, decayed)


def _normalise_legacy_scoring(
    owner: str,
    shard_by: Any,
    n_hash_shards: Any,
    shard_top_k: Any,
    shard_workers: Any,
    batch_scoring: Any = _UNSET,
) -> ScoringConfig:
    """Build a :class:`ScoringConfig` from legacy knob spellings (warning once).

    Validation is delegated to ``ScoringConfig.__post_init__``, so the legacy
    spellings reject exactly the values the new surface rejects (and
    ``shard_by="region"`` raises the same
    :class:`~repro.core.scoring.UnknownScoringStrategyError`, which is a
    ``ValueError`` as the historical contract requires).
    """
    updates: dict[str, Any] = {}
    if shard_by is not _UNSET:
        if shard_by is not None and not isinstance(shard_by, str):
            raise ValueError(
                f"shard_by must be None, 'table' or 'hash', got {shard_by!r}"
            )
        updates["strategy"] = "monolithic" if shard_by is None else shard_by
    if n_hash_shards is not _UNSET:
        updates["n_hash_shards"] = n_hash_shards
    if shard_top_k is not _UNSET:
        updates["top_k"] = shard_top_k
    if shard_workers is not _UNSET:
        updates["workers"] = shard_workers
    if batch_scoring is not _UNSET:
        updates["batch"] = bool(batch_scoring)
    if updates:
        _warn_legacy_scoring_knob(owner, "/".join(sorted(updates)))
    return ScoringConfig(**updates)


def _legacy_shard_by(config: MabConfig) -> str | None:
    """Deprecated read of ``scoring.strategy`` (``None`` == monolithic)."""
    assert config.scoring is not None
    return config.scoring.shard_by


def _legacy_n_hash_shards(config: MabConfig) -> int:
    """Deprecated read of ``scoring.n_hash_shards``."""
    assert config.scoring is not None
    return config.scoring.n_hash_shards


def _legacy_shard_top_k(config: MabConfig) -> int | None:
    """Deprecated read of ``scoring.top_k``."""
    assert config.scoring is not None
    return config.scoring.top_k


def _legacy_shard_workers(config: MabConfig) -> int:
    """Deprecated read of ``scoring.workers``."""
    assert config.scoring is not None
    return config.scoring.workers


# Attached post-class so the InitVar shims above read back (and feed
# dataclasses.replace round-trips) without becoming real stored fields.
setattr(MabConfig, "shard_by", property(_legacy_shard_by))
setattr(MabConfig, "n_hash_shards", property(_legacy_n_hash_shards))
setattr(MabConfig, "shard_top_k", property(_legacy_shard_top_k))
setattr(MabConfig, "shard_workers", property(_legacy_shard_workers))
