"""The C²UCB contextual combinatorial bandit (Algorithm 1 of the paper).

The learner maintains a single shared weight vector ``theta`` estimated by
ridge regression over every (context, reward) observation from every arm that
was ever played.  Because the knowledge lives in ``theta`` rather than in
per-arm statistics, a brand-new arm with a known context can be scored without
ever having been played — the property that makes workload-driven dynamic arm
generation viable.

Scores are upper confidence bounds::

    ucb_i = theta' x_i  +  alpha_t * sqrt(x_i' V^{-1} x_i)

where ``V`` is the regularised scatter matrix of the contexts of previously
played arms.  The second term boosts arms whose contexts lie in underexplored
directions of context space.

``V^{-1}`` is maintained *incrementally*: a rank-1 observation applies the
Sherman–Morrison identity and a batch of ``k`` observations applies the
Woodbury identity (one ``k x k`` solve), so the steady-state
``recommend -> observe`` loop never pays the ``O(d^3)`` cost of
``np.linalg.inv``.  A full re-inversion still happens (a) lazily after
:meth:`forget`, whose blend towards the prior is not low-rank, and (b) every
``refresh_interval`` observations as numerical hygiene against drift of the
incremental updates.  :attr:`inversion_count` counts the full inversions so
tests can pin the steady-state behaviour.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from . import scoring as _scoring


class LinearScorer:
    """A frozen, read-only scoring snapshot of a :class:`C2UCB` learner.

    Captures ``theta`` and ``V⁻¹`` once so that many scoring calls — one per
    :class:`~repro.core.arms.ArmShard`, possibly from parallel workers — share
    the exact arrays a monolithic scoring pass would use, without re-checking
    the learner's lazy caches per call and without any risk of an interleaved
    update shifting the numbers mid-round.  The snapshot does not copy: the
    learner replaces (never mutates) its arrays on update, so the captured
    references stay internally consistent for the lifetime of the round.

    Instances are cheap to create (two attribute reads) and safe to share
    across threads; they cannot observe rewards — updates go through the
    owning :class:`C2UCB`.
    """

    __slots__ = ("theta", "v_inverse", "dimension")

    def __init__(self, theta: np.ndarray, v_inverse: np.ndarray) -> None:
        self.theta = theta
        self.v_inverse = v_inverse
        self.dimension = len(theta)

    def expected_rewards(self, contexts: np.ndarray) -> np.ndarray:
        """Point estimates ``theta' x_i`` for each context row."""
        return _scoring.expected_rewards(self.theta, contexts)

    def exploration_bonus(self, contexts: np.ndarray) -> np.ndarray:
        """Confidence widths ``sqrt(x' V^{-1} x)`` for each context row."""
        return _scoring.exploration_bonus(self.v_inverse, contexts)

    def upper_confidence_scores(self, contexts: np.ndarray, alpha: float) -> np.ndarray:
        """UCB scores under the frozen snapshot.

        Args:
            contexts: ``(k, dimension)`` context matrix (one row per arm).
            alpha: Non-negative exploration boost.

        Returns:
            Per-row scores, identical to what the owning learner's
            :meth:`C2UCB.upper_confidence_scores` would return for the same
            rows at snapshot time.

        Raises:
            ValueError: If ``alpha`` is negative or the context width does
                not match the snapshot dimension.
        """
        if alpha < 0:
            raise ValueError("alpha must be non-negative")
        contexts = np.asarray(contexts, dtype=float)
        if contexts.ndim == 1:
            contexts = contexts.reshape(1, -1)
        if contexts.ndim != 2 or contexts.shape[1] != self.dimension:
            raise ValueError(
                f"contexts must have shape (k, {self.dimension}), got {contexts.shape}"
            )
        return _scoring.ucb_scores(self.theta, self.v_inverse, contexts, alpha)


def batch_upper_confidence_scores(
    scorers: "Sequence[LinearScorer]",
    context_blocks: "Sequence[np.ndarray]",
    alphas: "Sequence[float]",
) -> list[np.ndarray]:
    """Score many independent learners' arm pools in one vectorized pass.

    The multi-tenant fleet (:mod:`repro.fleet`) holds one :class:`C2UCB`
    learner *per tenant*; at recommendation time every tenant contributes a
    frozen :class:`LinearScorer` snapshot, its context block and its
    exploration boost.  Rather than scoring the tenants one by one, this
    entry point stacks same-shaped context blocks into one ``(T, k, d)``
    tensor and computes every tenant's confidence widths with a single
    batched ``matmul`` + ``einsum`` pass over the stacked ``V⁻¹`` tensor.

    Bit-for-bit parity with per-tenant scoring is part of the contract (the
    fleet's fleet-vs-independent-sessions parity test depends on it), so the
    pass only uses operations whose batched form reduces each slice exactly
    like the 2-D form:

    * ``stacked @ v_inverse_stack`` — NumPy dispatches one GEMM per slice,
      identical to ``contexts @ v_inverse``;
    * ``einsum("tkd,tkd->tk", ...)`` — the same row-wise reduction as the
      2-D ``einsum("ij,ij->i", ...)``;
    * the expected-reward term stays a per-tenant GEMV (``contexts @
      theta``), because folding the thetas into one GEMM changes the BLAS
      accumulation order and therefore the low-order bits.

    Blocks whose shape differs (tenants mid-divergence, ragged pools) are
    grouped by shape; each group gets its own stacked pass.

    Args:
        scorers: One frozen scoring snapshot per tenant.
        context_blocks: One ``(k_t, dimension)`` context matrix per tenant
            (``k_t`` may differ between tenants).
        alphas: One non-negative exploration boost per tenant.

    Returns:
        Per-tenant score vectors, each bit-identical to
        ``scorers[t].upper_confidence_scores(context_blocks[t], alphas[t])``.

    Raises:
        ValueError: On length mismatches, a negative ``alpha``, or a context
            block whose width does not match its scorer's dimension.
    """
    if not (len(scorers) == len(context_blocks) == len(alphas)):
        raise ValueError(
            f"got {len(scorers)} scorers, {len(context_blocks)} context "
            f"blocks and {len(alphas)} alphas; all three must align"
        )
    blocks: list[np.ndarray] = []
    for scorer, raw_block, alpha in zip(scorers, context_blocks, alphas):
        if alpha < 0:
            raise ValueError("alpha must be non-negative")
        block = np.asarray(raw_block, dtype=float)
        if block.ndim == 1:
            block = block.reshape(1, -1)
        if block.ndim != 2 or block.shape[1] != scorer.dimension:
            raise ValueError(
                f"contexts must have shape (k, {scorer.dimension}), "
                f"got {block.shape}"
            )
        blocks.append(block)

    groups: dict[tuple[int, int], list[int]] = {}
    for position, block in enumerate(blocks):
        groups.setdefault(block.shape, []).append(position)

    results: list[np.ndarray | None] = [None] * len(scorers)
    for indices in groups.values():
        stacked = np.stack([blocks[i] for i in indices])  # (T, k, d)
        v_inverse_stack = np.stack([scorers[i].v_inverse for i in indices])
        projected = stacked @ v_inverse_stack  # (T, k, d): one GEMM per slice
        widths = np.einsum("tkd,tkd->tk", projected, stacked)
        bonuses = np.sqrt(np.maximum(widths, 0.0))
        for row, i in enumerate(indices):
            # Same GEMV the packed core's kernel performs — folding the
            # thetas into one GEMM would change the accumulation order.
            expected = _scoring.expected_rewards(scorers[i].theta, blocks[i])
            results[i] = expected + alphas[i] * bonuses[row]
    return [result for result in results if result is not None]


class C2UCB:
    """Contextual combinatorial UCB with a shared linear reward model."""

    def __init__(
        self,
        dimension: int,
        regularisation: float = 1.0,
        seed: int = 17,
        refresh_interval: int = 512,
    ) -> None:
        if dimension <= 0:
            raise ValueError("dimension must be positive")
        if regularisation <= 0:
            raise ValueError("regularisation must be positive")
        if refresh_interval < 1:
            raise ValueError("refresh_interval must be at least 1")
        self.dimension = dimension
        self.regularisation = regularisation
        self.refresh_interval = refresh_interval
        self.seed = seed
        #: Number of full ``np.linalg.inv`` calls performed so far (hygiene
        #: refreshes and post-``forget`` recoveries; never the steady state).
        self.inversion_count = 0
        self.reset()

    # ------------------------------------------------------------------ #
    # state
    # ------------------------------------------------------------------ #
    def reset(self) -> None:
        """Reinitialise ``V = lambda * I`` and ``b = 0`` (line 2 of Algorithm 1).

        The tie-break random stream restarts from its seed too, so a reset
        learner replays bit-identically to a freshly constructed one.
        """
        self._rng = np.random.default_rng(self.seed)
        self._v = self.regularisation * np.eye(self.dimension)
        self._b = np.zeros(self.dimension)
        # The inverse of a scaled identity is known in closed form — no
        # np.linalg.inv needed to start.
        self._v_inverse: np.ndarray | None = np.eye(self.dimension) / self.regularisation
        self._theta: np.ndarray | None = None
        self._observations_since_refresh = 0
        self.rounds_observed = 0
        self.observations = 0

    @property
    def scatter_matrix(self) -> np.ndarray:
        """A copy of the current scatter matrix ``V``."""
        return self._v.copy()

    @property
    def response_vector(self) -> np.ndarray:
        """A copy of the current response vector ``b``."""
        return self._b.copy()

    def _full_reinversion(self) -> np.ndarray:
        """Recompute ``V^{-1}`` from scratch (the only ``np.linalg.inv`` site)."""
        self.inversion_count += 1
        inverse = np.linalg.inv(self._v)
        # V is symmetric; keep its inverse exactly symmetric too.
        self._v_inverse = (inverse + inverse.T) / 2.0
        self._observations_since_refresh = 0
        self._theta = None
        return self._v_inverse

    def _inverse(self) -> np.ndarray:
        if self._v_inverse is None:
            return self._full_reinversion()
        return self._v_inverse

    def theta(self) -> np.ndarray:
        """Ridge-regression estimate ``theta = V^{-1} b`` (line 5)."""
        if self._theta is None:
            self._theta = self._inverse() @ self._b
        return self._theta

    # ------------------------------------------------------------------ #
    # scoring
    # ------------------------------------------------------------------ #
    def expected_rewards(self, contexts: np.ndarray) -> np.ndarray:
        """Point estimates ``theta' x_i`` without the exploration boost."""
        contexts = self._validate_contexts(contexts)
        return _scoring.expected_rewards(self.theta(), contexts)

    def exploration_bonus(self, contexts: np.ndarray) -> np.ndarray:
        """The per-arm confidence width ``sqrt(x' V^{-1} x)``."""
        contexts = self._validate_contexts(contexts)
        return _scoring.exploration_bonus(self._inverse(), contexts)

    def upper_confidence_scores(self, contexts: np.ndarray, alpha: float) -> np.ndarray:
        """UCB scores (line 8 of Algorithm 1)."""
        if alpha < 0:
            raise ValueError("alpha must be non-negative")
        contexts = self._validate_contexts(contexts)
        return _scoring.ucb_scores(self.theta(), self._inverse(), contexts, alpha)

    def scorer(self) -> "LinearScorer":
        """Freeze the current ``theta`` and ``V⁻¹`` into a :class:`LinearScorer`.

        The snapshot scores arbitrary context batches — e.g. one per arm
        shard — with bit-identical math to :meth:`upper_confidence_scores`,
        while keeping all learning (and the Sherman–Morrison ``V⁻¹``
        maintenance) on this learner.  Sharding partitions *scoring*, never
        the bandit state.
        """
        return LinearScorer(self.theta(), self._inverse())

    # ------------------------------------------------------------------ #
    # updates
    # ------------------------------------------------------------------ #
    def update(self, contexts: np.ndarray, rewards: np.ndarray) -> None:
        """Rank-k update for every played arm (lines 12-13 of Algorithm 1)."""
        contexts = self._validate_contexts(contexts)
        rewards = np.asarray(rewards, dtype=float).reshape(-1)
        if len(rewards) != len(contexts):
            raise ValueError(
                f"got {len(contexts)} contexts but {len(rewards)} rewards"
            )
        if len(contexts) == 0:
            self.rounds_observed += 1
            return
        self._v = self._v + contexts.T @ contexts
        self._b = self._b + contexts.T @ rewards
        self._apply_inverse_update(contexts)
        self._theta = None
        self.rounds_observed += 1
        self.observations += len(contexts)

    def _apply_inverse_update(self, contexts: np.ndarray) -> None:
        """Fold ``k`` new contexts into the maintained inverse.

        Sherman–Morrison for a single row, Woodbury (one ``k x k`` solve) for a
        batch; falls back to a full re-inversion every ``refresh_interval``
        observations to wash out accumulated floating-point drift.
        """
        if self._v_inverse is None:
            # A forget() left the inverse dirty; rebuild lazily on next use.
            return
        self._observations_since_refresh += len(contexts)
        if self._observations_since_refresh >= self.refresh_interval:
            self._full_reinversion()
            return
        inverse = self._v_inverse
        if len(contexts) == 1:
            x = contexts[0]
            a = inverse @ x
            denominator = 1.0 + float(x @ a)
            inverse = inverse - np.outer(a, a) / denominator
        else:
            a = inverse @ contexts.T  # d x k
            capacitance = contexts @ a  # k x k
            capacitance.flat[:: len(contexts) + 1] += 1.0
            inverse = inverse - a @ np.linalg.solve(capacitance, a.T)
        self._v_inverse = (inverse + inverse.T) / 2.0

    def forget(self, keep_fraction: float) -> None:
        """Shrink learned knowledge towards the prior after a workload shift.

        ``keep_fraction`` = 0 resets the learner completely; 1 keeps
        everything.  Intermediate values blend the learned scatter matrix and
        response vector with their initial values, which both discounts stale
        reward estimates and re-inflates the exploration bonus.

        The blend is not a low-rank perturbation, so the maintained inverse is
        invalidated and rebuilt on next use — acceptable because forgetting
        only happens on (rare) detected workload shifts.
        """
        if not 0 <= keep_fraction <= 1:
            raise ValueError("keep_fraction must be in [0, 1]")
        prior = self.regularisation * np.eye(self.dimension)
        self._v = keep_fraction * self._v + (1 - keep_fraction) * prior
        self._b = keep_fraction * self._b
        self._v_inverse = None
        self._theta = None

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #
    def _validate_contexts(self, contexts: np.ndarray) -> np.ndarray:
        contexts = np.asarray(contexts, dtype=float)
        if contexts.ndim == 1:
            contexts = contexts.reshape(1, -1)
        if contexts.ndim != 2 or contexts.shape[1] != self.dimension:
            raise ValueError(
                f"contexts must have shape (k, {self.dimension}), got {contexts.shape}"
            )
        return contexts

    def tie_break(self, count: int) -> np.ndarray:
        """Tiny random jitter used only to break exact score ties deterministically."""
        return self._rng.uniform(0.0, 1e-9, size=count)
