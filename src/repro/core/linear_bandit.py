"""The C²UCB contextual combinatorial bandit (Algorithm 1 of the paper).

The learner maintains a single shared weight vector ``theta`` estimated by
ridge regression over every (context, reward) observation from every arm that
was ever played.  Because the knowledge lives in ``theta`` rather than in
per-arm statistics, a brand-new arm with a known context can be scored without
ever having been played — the property that makes workload-driven dynamic arm
generation viable.

Scores are upper confidence bounds::

    ucb_i = theta' x_i  +  alpha_t * sqrt(x_i' V^{-1} x_i)

where ``V`` is the regularised scatter matrix of the contexts of previously
played arms.  The second term boosts arms whose contexts lie in underexplored
directions of context space.
"""

from __future__ import annotations

import numpy as np


class C2UCB:
    """Contextual combinatorial UCB with a shared linear reward model."""

    def __init__(self, dimension: int, regularisation: float = 1.0, seed: int = 17):
        if dimension <= 0:
            raise ValueError("dimension must be positive")
        if regularisation <= 0:
            raise ValueError("regularisation must be positive")
        self.dimension = dimension
        self.regularisation = regularisation
        self._rng = np.random.default_rng(seed)
        self.reset()

    # ------------------------------------------------------------------ #
    # state
    # ------------------------------------------------------------------ #
    def reset(self) -> None:
        """Reinitialise ``V = lambda * I`` and ``b = 0`` (line 2 of Algorithm 1)."""
        self._v = self.regularisation * np.eye(self.dimension)
        self._b = np.zeros(self.dimension)
        self._v_inverse: np.ndarray | None = None
        self.rounds_observed = 0
        self.observations = 0

    @property
    def scatter_matrix(self) -> np.ndarray:
        """A copy of the current scatter matrix ``V``."""
        return self._v.copy()

    @property
    def response_vector(self) -> np.ndarray:
        """A copy of the current response vector ``b``."""
        return self._b.copy()

    def _inverse(self) -> np.ndarray:
        if self._v_inverse is None:
            self._v_inverse = np.linalg.inv(self._v)
        return self._v_inverse

    def theta(self) -> np.ndarray:
        """Ridge-regression estimate ``theta = V^{-1} b`` (line 5)."""
        return self._inverse() @ self._b

    # ------------------------------------------------------------------ #
    # scoring
    # ------------------------------------------------------------------ #
    def expected_rewards(self, contexts: np.ndarray) -> np.ndarray:
        """Point estimates ``theta' x_i`` without the exploration boost."""
        contexts = self._validate_contexts(contexts)
        return contexts @ self.theta()

    def exploration_bonus(self, contexts: np.ndarray) -> np.ndarray:
        """The per-arm confidence width ``sqrt(x' V^{-1} x)``."""
        contexts = self._validate_contexts(contexts)
        inverse = self._inverse()
        widths = np.einsum("ij,jk,ik->i", contexts, inverse, contexts)
        return np.sqrt(np.maximum(widths, 0.0))

    def upper_confidence_scores(self, contexts: np.ndarray, alpha: float) -> np.ndarray:
        """UCB scores (line 8 of Algorithm 1)."""
        if alpha < 0:
            raise ValueError("alpha must be non-negative")
        contexts = self._validate_contexts(contexts)
        return self.expected_rewards(contexts) + alpha * self.exploration_bonus(contexts)

    # ------------------------------------------------------------------ #
    # updates
    # ------------------------------------------------------------------ #
    def update(self, contexts: np.ndarray, rewards: np.ndarray) -> None:
        """Rank-one updates for every played arm (lines 12-13 of Algorithm 1)."""
        contexts = self._validate_contexts(contexts)
        rewards = np.asarray(rewards, dtype=float).reshape(-1)
        if len(rewards) != len(contexts):
            raise ValueError(
                f"got {len(contexts)} contexts but {len(rewards)} rewards"
            )
        if len(contexts) == 0:
            self.rounds_observed += 1
            return
        self._v = self._v + contexts.T @ contexts
        self._b = self._b + contexts.T @ rewards
        self._v_inverse = None
        self.rounds_observed += 1
        self.observations += len(contexts)

    def forget(self, keep_fraction: float) -> None:
        """Shrink learned knowledge towards the prior after a workload shift.

        ``keep_fraction`` = 0 resets the learner completely; 1 keeps
        everything.  Intermediate values blend the learned scatter matrix and
        response vector with their initial values, which both discounts stale
        reward estimates and re-inflates the exploration bonus.
        """
        if not 0 <= keep_fraction <= 1:
            raise ValueError("keep_fraction must be in [0, 1]")
        prior = self.regularisation * np.eye(self.dimension)
        self._v = keep_fraction * self._v + (1 - keep_fraction) * prior
        self._b = keep_fraction * self._b
        self._v_inverse = None

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #
    def _validate_contexts(self, contexts: np.ndarray) -> np.ndarray:
        contexts = np.asarray(contexts, dtype=float)
        if contexts.ndim == 1:
            contexts = contexts.reshape(1, -1)
        if contexts.ndim != 2 or contexts.shape[1] != self.dimension:
            raise ValueError(
                f"contexts must have shape (k, {self.dimension}), got {contexts.shape}"
            )
        return contexts

    def tie_break(self, count: int) -> np.ndarray:
        """Tiny random jitter used only to break exact score ties deterministically."""
        return self._rng.uniform(0.0, 1e-9, size=count)
