"""The MAB index tuner: Algorithm 2 of the paper, wired to the C²UCB learner.

Per round the tuner:

1. pulls the queries of interest (QoI) from the query store (templates seen in
   a recent window);
2. generates candidate-index arms from the QoI predicates and builds their
   contexts;
3. scores every arm with the C²UCB upper confidence bound and lets the greedy
   oracle pick a super arm (configuration) within the memory budget;
4. after the round executes, shapes per-arm rewards from the observed
   execution statistics and the indexes' creation times, updates the shared
   linear model, and (on detected workload shifts) forgets part of what it
   has learned.

The tuner never looks at the upcoming workload and never asks the optimiser
for what-if estimates — its knowledge comes exclusively from observed
execution statistics, which is the paper's central design decision.
"""

from __future__ import annotations

import dataclasses
import time

import numpy as np

from repro.api.registry import register_tuner
from repro.engine.catalog import ConfigurationChange, Database
from repro.engine.execution import ExecutionResult
from repro.engine.query import Query
from repro.interface import Recommendation, Tuner

from .arms import Arm, ArmGenerator, shard_arms
from .config import MabConfig
from .context import ContextBuilder
from .linear_bandit import C2UCB
from .oracle import GreedyOracle, ScoredArm, merge_shard_candidates
from .query_store import QueryStore
from .rewards import compute_round_rewards
from .scoring import ScoringConfig, ScoringStats, pack_arm_pool, score_packed


#: Sentinel distinguishing "argument omitted" from an explicit ``None``.
_UNSET: "int | None" = object()  # type: ignore[assignment]


@dataclasses.dataclass
class PoolRound:
    """One in-flight recommendation round of the pool-scoring protocol.

    :meth:`MabTuner.begin_round` opens the round (QoI window, arm refresh,
    exploration boost) and returns this handle; a caller — the tuner's own
    :meth:`MabTuner.recommend` or the fleet's batched scoring pass
    (:mod:`repro.fleet`) — scores the pool however it likes and closes the
    round with :meth:`MabTuner.complete_round`.  ``arms`` is ``None`` when
    the round has no queries of interest (the empty-QoI fast path).
    """

    round_number: int
    #: ``perf_counter`` stamp at :meth:`MabTuner.begin_round` time; the
    #: completed recommendation charges everything since as its cost.
    started: float
    #: The round's queries of interest (empty on the no-QoI fast path).
    queries: list[Query]
    #: The round's arm pool, or ``None`` when there are no queries of interest.
    arms: "list[Arm] | None"
    #: Exploration boost for the round.
    alpha: float
    #: Context matrix for ``arms`` (set by :meth:`MabTuner.pool_contexts`).
    contexts: "np.ndarray | None" = None


@dataclasses.dataclass(frozen=True)
class ShardScoreStats:
    """Deprecated view of :class:`~repro.core.scoring.ScoringStats`.

    The packed core's ``MabTuner.last_scoring_stats`` supersedes this; the
    ``MabTuner.last_shard_stats`` property keeps deriving instances of this
    shape for callers that still read the old diagnostics.
    """

    #: Arms in the round's pool before sharding.
    n_arms: int
    #: Non-empty shards the pool split into.
    n_shards: int
    #: Size of the largest shard — the critical path of a parallel scoring pass.
    max_shard_size: int
    #: Merged survivors handed to the knapsack oracle after the per-shard top-k cut.
    n_candidates: int


@register_tuner("MAB")
class MabTuner(Tuner):
    """Online index selection with a contextual combinatorial bandit."""

    name = "MAB"

    def __init__(self, database: Database, config: MabConfig | None = None) -> None:
        self.database = database
        self.config = config or MabConfig()
        self.query_store = QueryStore()
        self.arm_generator = ArmGenerator(self.config)
        self.context_builder = ContextBuilder(database.schema)
        self.bandit = C2UCB(
            dimension=self.context_builder.dimension,
            regularisation=self.config.regularisation,
            seed=self.config.seed,
        )
        self.oracle = GreedyOracle()
        #: Running scale (seconds) used to normalise rewards so that the
        #: learned weights and the exploration bonus live on comparable
        #: scales; it tracks the largest observed full-scan time.
        self._reward_scale_seconds = 1.0
        #: All arms ever generated, keyed by index id (keeps usage statistics).
        self.known_arms: dict[str, Arm] = {}
        #: Selection made by the latest ``recommend`` call, consumed by ``observe``.
        self._pending_selection: list[tuple[Arm, np.ndarray]] = []
        #: Diagnostics for reporting and tests.
        self.shift_events: list[int] = []
        self.rounds_recommended = 0
        #: Diagnostics of the latest packed scoring pass (``None`` while the
        #: pool is scored monolithically or before the first recommendation).
        self.last_scoring_stats: ScoringStats | None = None

    # ------------------------------------------------------------------ #
    # Tuner interface
    # ------------------------------------------------------------------ #
    def recommend(
        self,
        round_number: int,
        training_queries: list[Query] | None = None,
    ) -> Recommendation:
        """Propose the index configuration for the upcoming (unseen) round.

        Args:
            round_number: 1-based round counter (drives the QoI window and the
                exploration-boost decay).
            training_queries: Ignored — the bandit never receives a training
                workload; the argument exists only to satisfy the shared
                :class:`~repro.interface.Tuner` protocol.

        Returns:
            A :class:`~repro.interface.Recommendation` whose configuration is
            the selected super arm (or the currently materialised indexes when
            there are no queries of interest), with the wall-clock cost of the
            call charged as recommendation time.
        """
        del training_queries  # the bandit never receives a training workload
        pool = self.begin_round(round_number)
        if pool.arms is None:
            return self.complete_round(pool, None)
        if self.scoring.strategy == "monolithic":
            contexts = self.pool_contexts(pool)
            scores = self.bandit.upper_confidence_scores(contexts, pool.alpha)
            return self.complete_round(pool, scores)
        candidates, context_rows = self._score_packed(
            pool.arms, pool.queries, pool.alpha
        )
        return self._finish_with_candidates(pool, candidates, context_rows)

    # ------------------------------------------------------------------ #
    # the pool-scoring protocol (recommend split open for the fleet)
    # ------------------------------------------------------------------ #
    @property
    def scoring(self) -> ScoringConfig:
        """The tuner's scoring configuration (never ``None`` on a live tuner)."""
        scoring = self.config.scoring
        assert scoring is not None  # MabConfig.__post_init__ normalises
        return scoring

    @property
    def supports_batched_scoring(self) -> bool:
        """Whether a fleet may score this tuner through the pool protocol.

        True for the monolithic scoring mode; a tuner configured for a
        partitioned strategy keeps its own (already parallel) packed pass.
        """
        return self.scoring.strategy == "monolithic"

    def begin_round(self, round_number: int) -> PoolRound:
        """Open a recommendation round: QoI window, arm refresh, alpha.

        Everything up to (but excluding) the scoring pass of
        :meth:`recommend`.  The returned handle must be closed with
        :meth:`complete_round` (or the sharded path) exactly once; ``arms``
        is ``None`` on the empty-QoI fast path, in which case no scoring is
        needed and ``complete_round(pool, None)`` retains the materialised
        configuration.
        """
        # reprolint: disable=RL001 -- recommendation_seconds is the paper-reported wall time of the MAB's own scoring pass; no tuning decision reads it
        started = time.perf_counter()
        self.rounds_recommended += 1
        queries_of_interest = self.query_store.queries_of_interest(
            round_number, window_rounds=self.config.qoi_window_rounds
        )
        if not queries_of_interest:
            # No queries of interest — either a cold start (nothing
            # materialised yet) or a store that went empty mid-run (e.g. after
            # eviction).  Retain the current configuration rather than
            # returning [], which would make ``apply_configuration`` drop
            # every materialised index for no reason.
            return PoolRound(
                round_number=round_number,
                started=started,
                queries=[],
                arms=None,
                alpha=0.0,
            )
        arms = self._refresh_arms(queries_of_interest, round_number)
        return PoolRound(
            round_number=round_number,
            started=started,
            queries=queries_of_interest,
            arms=arms,
            alpha=self.config.alpha_at(round_number),
        )

    def pool_contexts(self, pool: PoolRound) -> np.ndarray:
        """Build (and remember) the context matrix for an open round's pool."""
        assert pool.arms is not None
        pool.contexts = self.context_builder.build_matrix(
            pool.arms, pool.queries, self.database
        )
        return pool.contexts

    def complete_round(
        self, pool: PoolRound, scores: "np.ndarray | None"
    ) -> Recommendation:
        """Close an open round from raw (jitter-free) pool scores.

        ``scores`` must come from this tuner's bandit state over
        ``pool.contexts`` — either :meth:`C2UCB.upper_confidence_scores`
        directly or the fleet's batched
        :func:`~repro.core.linear_bandit.batch_upper_confidence_scores` pass,
        which is bit-identical by contract.  The tie-break jitter is drawn
        here (one draw per pool, exactly as the monolithic pass always did),
        so single-session and fleet-batched rounds consume the tuner's random
        stream identically.  ``scores=None`` closes an empty-QoI round.
        """
        if pool.arms is None or scores is None:
            self._pending_selection = []
            return Recommendation(
                configuration=list(self.database.materialised_indexes),
                # reprolint: disable=RL001 -- paper-reported recommendation wall time (output only)
                recommendation_seconds=time.perf_counter() - pool.started,
            )
        assert pool.contexts is not None
        scores = scores + self.bandit.tie_break(len(scores))
        candidates = [
            ScoredArm(
                arm=arm,
                score=float(score),
                size_bytes=self.database.index_size_bytes(arm.index),
                position=position,
            )
            for position, (arm, score) in enumerate(zip(pool.arms, scores))
        ]
        context_rows = {
            arm.index_id: pool.contexts[i] for i, arm in enumerate(pool.arms)
        }
        self.last_scoring_stats = None
        return self._finish_with_candidates(pool, candidates, context_rows)

    def _finish_with_candidates(
        self,
        pool: PoolRound,
        candidates: list[ScoredArm],
        context_rows: dict[str, np.ndarray],
    ) -> Recommendation:
        """Select the super arm and assemble the round's recommendation."""
        selection = self.oracle.select(candidates, self.database.memory_budget_bytes)
        self._pending_selection = [
            (scored.arm, context_rows[scored.arm.index_id])
            for scored in selection.selected
        ]
        configuration = [scored.arm.index for scored in selection.selected]
        return Recommendation(
            configuration=configuration,
            # reprolint: disable=RL001 -- paper-reported recommendation wall time (output only)
            recommendation_seconds=time.perf_counter() - pool.started,
        )

    def _score_packed(
        self,
        arms: list[Arm],
        queries: list[Query],
        alpha: float,
    ) -> tuple[list[ScoredArm], dict[str, np.ndarray]]:
        """Score the arm pool through the packed core and merge the winners.

        The pool is partitioned with :func:`~repro.core.arms.shard_arms`
        (strategy ``scoring.strategy``), each shard's context slice is built
        once, and the slices are packed into one flat matrix
        (:func:`~repro.core.scoring.pack_arm_pool`) whose shard boundaries
        are row ranges — :func:`~repro.core.scoring.score_packed` then runs
        one blocked GEMM pass against the frozen
        :class:`~repro.core.linear_bandit.LinearScorer` snapshot, serially or
        over the shared-memory process pool (``scoring.workers``).  Only each
        shard's top ``scoring.top_k`` candidates reach the knapsack oracle.

        Determinism: the tie-break jitter is drawn once for the whole pool
        (same rng consumption as the monolithic pass) and sliced per shard;
        each packed block is byte-compatible with the standalone per-shard
        matrix, so its scores are bit-identical to the historical per-shard
        pass at any worker count; and the merged survivors are restored to
        pool order — so at matched seeds the packed pass selects the same
        configuration as the monolithic one whenever the top-k cut keeps the
        oracle's picks (guaranteed for ``top_k=None``).
        """
        scoring = self.scoring
        shards = shard_arms(arms, scoring.shard_by, scoring.n_hash_shards)
        predicate_columns = self.context_builder.predicate_columns(queries)
        jitter = self.bandit.tie_break(len(arms))
        scorer = self.bandit.scorer()

        context_blocks: list[np.ndarray] = []
        positions: list[list[int]] = []
        size_bytes: list[list[int]] = []
        for shard in shards:
            context_blocks.append(
                self.context_builder.build_matrix(
                    shard.arms,
                    queries,
                    self.database,
                    predicate_columns=predicate_columns,
                )
            )
            positions.append(shard.positions)
            size_bytes.append(
                [self.database.index_size_bytes(arm.index) for arm in shard.arms]
            )
        packed = pack_arm_pool(
            context_blocks,
            positions,
            size_bytes,
            [shard.key for shard in shards],
        )
        result = score_packed(
            packed,
            scorer.theta,
            scorer.v_inverse,
            alpha,
            workers=self._shard_worker_count(packed.n_blocks),
        )

        context_rows: dict[str, np.ndarray] = {}
        candidates_by_shard: list[list[ScoredArm]] = []
        for shard, contexts, (start, _stop), sizes in zip(
            shards, context_blocks, packed.block_slices(), size_bytes
        ):
            shard_candidates = []
            for row, (arm, position) in enumerate(zip(shard.arms, shard.positions)):
                context_rows[arm.index_id] = contexts[row]
                shard_candidates.append(
                    ScoredArm(
                        arm=arm,
                        score=float(result.scores[start + row] + jitter[position]),
                        size_bytes=sizes[row],
                        position=position,
                    )
                )
            candidates_by_shard.append(shard_candidates)

        merged = merge_shard_candidates(candidates_by_shard, scoring.top_k)
        self.last_scoring_stats = ScoringStats(
            strategy=scoring.strategy,
            n_arms=len(arms),
            n_shards=packed.n_blocks,
            max_shard_size=packed.max_block_size,
            n_candidates=len(merged),
            workers=scoring.workers,
            used_processes=result.used_processes,
            shared_memory_bytes=result.shared_memory_bytes,
        )
        return merged, context_rows

    def _shard_worker_count(self, n_shards: int) -> int:
        """Worker processes the packed pass uses (never more than blocks)."""
        return self.scoring.resolved_workers(n_shards)

    def configure_scoring(self, scoring: ScoringConfig) -> None:
        """Install a scoring configuration on the live tuner.

        The single non-deprecated way to change how the arm pool is scored;
        :class:`~repro.api.session.TuningSession` routes
        ``SimulationOptions(scoring=...)`` through this method (the tuner
        thereby satisfies the
        :class:`~repro.core.scoring.ConfigurableScoring` protocol).

        Raises:
            TypeError: If ``scoring`` is not a
                :class:`~repro.core.scoring.ScoringConfig`.
        """
        if not isinstance(scoring, ScoringConfig):
            raise TypeError(
                f"configure_scoring expects a ScoringConfig, got {type(scoring).__name__}"
            )
        # replace() re-runs __post_init__ with "scoring wins" precedence, so
        # the derived legacy properties fed back through the InitVars are
        # ignored and the explicit ScoringConfig lands unmodified.
        self.config = dataclasses.replace(self.config, scoring=scoring)

    def configure_sharding(
        self,
        shard_by: str | None,
        *,
        shard_top_k: "int | None" = _UNSET,
        n_hash_shards: int | None = None,
        shard_workers: int | None = None,
    ) -> None:
        """Deprecated spelling of :meth:`configure_scoring`.

        Builds a :class:`~repro.core.scoring.ScoringConfig` from the current
        one (omitted knobs are left unchanged) and installs it.

        Args:
            shard_by: ``None`` (monolithic), ``"table"`` or ``"hash"``.
            shard_top_k: Per-shard candidate cut forwarded to the oracle;
                pass ``None`` for an exact (selection-preserving) merge.
                Left unchanged when omitted.
            n_hash_shards: Bucket count for hash placement.  Left unchanged
                when omitted.
            shard_workers: Process count for the packed scoring pass
                (``1`` serial, ``0`` one per CPU).  Left unchanged when
                omitted.  Recommendations are identical at any worker count.

        Raises:
            ValueError: If any value fails
                :class:`~repro.core.scoring.ScoringConfig` validation.
        """
        updates: dict[str, object] = {
            "strategy": "monolithic" if shard_by is None else shard_by
        }
        if shard_by is not None and not isinstance(shard_by, str):
            raise ValueError(
                f"shard_by must be None, 'table' or 'hash', got {shard_by!r}"
            )
        if shard_top_k is not _UNSET:
            updates["top_k"] = shard_top_k
        if n_hash_shards is not None:
            updates["n_hash_shards"] = n_hash_shards
        if shard_workers is not None:
            updates["workers"] = shard_workers
        # ScoringConfig.__post_init__ re-validates, so invalid values are
        # rejected before they can affect a live tuner.
        self.configure_scoring(dataclasses.replace(self.scoring, **updates))

    def observe(
        self,
        round_number: int,
        queries: list[Query],
        results: list[ExecutionResult],
        change: ConfigurationChange,
    ) -> None:
        """Close a round: shape rewards and update the (global) bandit state.

        Args:
            round_number: The round that just executed.
            queries: The queries that ran in the round.
            results: Their observed execution statistics (same order).
            change: The configuration change applied before execution, with
                per-index creation times.

        The C²UCB update — including the Sherman–Morrison/Woodbury ``V⁻¹``
        maintenance — always runs against the single shared learner; shard
        mode never splits the bandit state.
        """
        summary = self.query_store.add_round(queries, round_number)
        if (
            round_number > 1
            and summary.shift_intensity >= self.config.shift_detection_threshold
        ):
            # The workload moved to (mostly) unseen templates: discount stale
            # knowledge proportionally to the shift intensity.
            self.bandit.forget(self.config.forgetting_factor)
            self.shift_events.append(round_number)

        rewards = compute_round_rewards(
            results, change, creation_cost_weight=self.config.creation_cost_weight
        )
        for index_id in rewards.used_index_ids:
            arm = self.known_arms.get(index_id)
            if arm is not None:
                arm.usage_rounds += 1
        self._update_reward_scale(results)

        if not self._pending_selection:
            return
        # Each played arm contributes a gain observation against its usage
        # context (relative size forced to zero: the gain does not depend on
        # whether the index had to be built this round).  Arms built this
        # round additionally contribute a creation-cost observation against a
        # pure-size context, so that build costs are attributed to index size
        # rather than to the workload columns the index serves.
        size_slot = self.context_builder.size_feature_index
        played_contexts: list[np.ndarray] = []
        played_rewards: list[float] = []
        for arm, context in self._pending_selection:
            usage_context = np.array(context, dtype=float)
            usage_context[size_slot] = 0.0
            played_contexts.append(usage_context)
            played_rewards.append(
                rewards.gains.get(arm.index_id, 0.0) / self._reward_scale_seconds
            )
            creation_seconds = change.creation_seconds_by_index.get(arm.index_id)
            if creation_seconds:
                played_contexts.append(
                    self.context_builder.creation_context(arm, self.database)
                )
                played_rewards.append(
                    -self.config.creation_cost_weight
                    * creation_seconds
                    / self._reward_scale_seconds
                )
        self.bandit.update(
            contexts=np.vstack(played_contexts),
            rewards=np.asarray(played_rewards),
        )
        self._pending_selection = []

    def _update_reward_scale(self, results: list[ExecutionResult]) -> None:
        """Track the largest observed table full-scan time as the reward scale."""
        for result in results:
            for access in result.access_results:
                if access.full_scan_seconds > self._reward_scale_seconds:
                    self._reward_scale_seconds = access.full_scan_seconds

    def reset(self) -> None:
        """Forget all learned state; a reset tuner replays bit-identically.

        Clears the bandit (weights, scatter matrix, tie-break rng), the query
        store, the arm registry and all diagnostics.  The sharding
        configuration is *kept* — it describes how to score, not what was
        learned.
        """
        self.bandit.reset()
        self.query_store.clear()
        self.known_arms.clear()
        self._pending_selection = []
        self.shift_events = []
        self.rounds_recommended = 0
        self._reward_scale_seconds = 1.0
        self.last_scoring_stats = None

    # ------------------------------------------------------------------ #
    # internals and diagnostics
    # ------------------------------------------------------------------ #
    def _refresh_arms(self, queries: list[Query], round_number: int) -> list[Arm]:
        """Generate arms for the QoI and merge them into the persistent registry.

        Returns the round's arm pool in a deterministic order (generation
        order of the merged ``{index_id: Arm}`` mapping) — the *pool order*
        that positions, context rows and tie-break jitter are all keyed by.
        """
        generated = self.arm_generator.generate(queries)
        arms: list[Arm] = []
        for index_id, fresh in generated.items():
            known = self.known_arms.get(index_id)
            if known is None:
                fresh.last_generated_round = round_number
                self.known_arms[index_id] = fresh
                arms.append(fresh)
            else:
                known.source_templates |= fresh.source_templates
                known.covering_for_queries = fresh.covering_for_queries
                known.last_generated_round = round_number
                arms.append(known)
        return arms

    @property
    def last_shard_stats(self) -> ShardScoreStats | None:
        """Deprecated view of :attr:`last_scoring_stats` (legacy shape)."""
        stats = self.last_scoring_stats
        if stats is None:
            return None
        return ShardScoreStats(
            n_arms=stats.n_arms,
            n_shards=stats.n_shards,
            max_shard_size=stats.max_shard_size,
            n_candidates=stats.n_candidates,
        )

    @property
    def known_arm_count(self) -> int:
        return len(self.known_arms)

    def theta_norm(self) -> float:
        """L2 norm of the learned weight vector (a convergence diagnostic)."""
        theta = self.bandit.theta()
        return float((theta @ theta) ** 0.5)
