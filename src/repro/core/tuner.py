"""The MAB index tuner: Algorithm 2 of the paper, wired to the C²UCB learner.

Per round the tuner:

1. pulls the queries of interest (QoI) from the query store (templates seen in
   a recent window);
2. generates candidate-index arms from the QoI predicates and builds their
   contexts;
3. scores every arm with the C²UCB upper confidence bound and lets the greedy
   oracle pick a super arm (configuration) within the memory budget;
4. after the round executes, shapes per-arm rewards from the observed
   execution statistics and the indexes' creation times, updates the shared
   linear model, and (on detected workload shifts) forgets part of what it
   has learned.

The tuner never looks at the upcoming workload and never asks the optimiser
for what-if estimates — its knowledge comes exclusively from observed
execution statistics, which is the paper's central design decision.
"""

from __future__ import annotations

import time

import numpy as np

from repro.api.registry import register_tuner
from repro.engine.catalog import ConfigurationChange, Database
from repro.engine.execution import ExecutionResult
from repro.engine.indexes import IndexDefinition
from repro.engine.query import Query
from repro.interface import Recommendation, Tuner

from .arms import Arm, ArmGenerator
from .config import MabConfig
from .context import ContextBuilder
from .linear_bandit import C2UCB
from .oracle import GreedyOracle, ScoredArm
from .query_store import QueryStore
from .rewards import compute_round_rewards


@register_tuner("MAB")
class MabTuner(Tuner):
    """Online index selection with a contextual combinatorial bandit."""

    name = "MAB"

    def __init__(self, database: Database, config: MabConfig | None = None):
        self.database = database
        self.config = config or MabConfig()
        self.query_store = QueryStore()
        self.arm_generator = ArmGenerator(self.config)
        self.context_builder = ContextBuilder(database.schema)
        self.bandit = C2UCB(
            dimension=self.context_builder.dimension,
            regularisation=self.config.regularisation,
            seed=self.config.seed,
        )
        self.oracle = GreedyOracle()
        #: Running scale (seconds) used to normalise rewards so that the
        #: learned weights and the exploration bonus live on comparable
        #: scales; it tracks the largest observed full-scan time.
        self._reward_scale_seconds = 1.0
        #: All arms ever generated, keyed by index id (keeps usage statistics).
        self.known_arms: dict[str, Arm] = {}
        #: Selection made by the latest ``recommend`` call, consumed by ``observe``.
        self._pending_selection: list[tuple[Arm, "list[float]"]] = []
        #: Diagnostics for reporting and tests.
        self.shift_events: list[int] = []
        self.rounds_recommended = 0

    # ------------------------------------------------------------------ #
    # Tuner interface
    # ------------------------------------------------------------------ #
    def recommend(
        self,
        round_number: int,
        training_queries: list[Query] | None = None,
    ) -> Recommendation:
        del training_queries  # the bandit never receives a training workload
        started = time.perf_counter()
        self.rounds_recommended += 1

        queries_of_interest = self.query_store.queries_of_interest(
            round_number, window_rounds=self.config.qoi_window_rounds
        )
        if not queries_of_interest:
            # No queries of interest — either a cold start (nothing
            # materialised yet) or a store that went empty mid-run (e.g. after
            # eviction).  Retain the current configuration rather than
            # returning [], which would make ``apply_configuration`` drop
            # every materialised index for no reason.
            self._pending_selection = []
            return Recommendation(
                configuration=list(self.database.materialised_indexes),
                recommendation_seconds=time.perf_counter() - started,
            )

        arms = self._refresh_arms(queries_of_interest, round_number)
        contexts = self.context_builder.build_matrix(arms, queries_of_interest, self.database)
        alpha = self.config.alpha_at(round_number)
        scores = self.bandit.upper_confidence_scores(contexts, alpha)
        scores = scores + self.bandit.tie_break(len(scores))

        scored_arms = [
            ScoredArm(
                arm=arm,
                score=float(score),
                size_bytes=self.database.index_size_bytes(arm.index),
            )
            for arm, score in zip(arms, scores)
        ]
        selection = self.oracle.select(scored_arms, self.database.memory_budget_bytes)

        self._pending_selection = []
        position_by_id = {arm.index_id: position for position, arm in enumerate(arms)}
        for scored in selection.selected:
            position = position_by_id[scored.arm.index_id]
            self._pending_selection.append((scored.arm, contexts[position]))

        configuration = [scored.arm.index for scored in selection.selected]
        return Recommendation(
            configuration=configuration,
            recommendation_seconds=time.perf_counter() - started,
        )

    def observe(
        self,
        round_number: int,
        queries: list[Query],
        results: list[ExecutionResult],
        change: ConfigurationChange,
    ) -> None:
        summary = self.query_store.add_round(queries, round_number)
        if (
            round_number > 1
            and summary.shift_intensity >= self.config.shift_detection_threshold
        ):
            # The workload moved to (mostly) unseen templates: discount stale
            # knowledge proportionally to the shift intensity.
            self.bandit.forget(self.config.forgetting_factor)
            self.shift_events.append(round_number)

        rewards = compute_round_rewards(
            results, change, creation_cost_weight=self.config.creation_cost_weight
        )
        for index_id in rewards.used_index_ids:
            arm = self.known_arms.get(index_id)
            if arm is not None:
                arm.usage_rounds += 1
        self._update_reward_scale(results)

        if not self._pending_selection:
            return
        # Each played arm contributes a gain observation against its usage
        # context (relative size forced to zero: the gain does not depend on
        # whether the index had to be built this round).  Arms built this
        # round additionally contribute a creation-cost observation against a
        # pure-size context, so that build costs are attributed to index size
        # rather than to the workload columns the index serves.
        size_slot = self.context_builder.size_feature_index
        played_contexts: list[np.ndarray] = []
        played_rewards: list[float] = []
        for arm, context in self._pending_selection:
            usage_context = np.array(context, dtype=float)
            usage_context[size_slot] = 0.0
            played_contexts.append(usage_context)
            played_rewards.append(
                rewards.gains.get(arm.index_id, 0.0) / self._reward_scale_seconds
            )
            creation_seconds = change.creation_seconds_by_index.get(arm.index_id)
            if creation_seconds:
                played_contexts.append(
                    self.context_builder.creation_context(arm, self.database)
                )
                played_rewards.append(
                    -self.config.creation_cost_weight
                    * creation_seconds
                    / self._reward_scale_seconds
                )
        self.bandit.update(
            contexts=np.vstack(played_contexts),
            rewards=np.asarray(played_rewards),
        )
        self._pending_selection = []

    def _update_reward_scale(self, results: list[ExecutionResult]) -> None:
        """Track the largest observed table full-scan time as the reward scale."""
        for result in results:
            for access in result.access_results:
                if access.full_scan_seconds > self._reward_scale_seconds:
                    self._reward_scale_seconds = access.full_scan_seconds

    def reset(self) -> None:
        self.bandit.reset()
        self.query_store.clear()
        self.known_arms.clear()
        self._pending_selection = []
        self.shift_events = []
        self.rounds_recommended = 0
        self._reward_scale_seconds = 1.0

    # ------------------------------------------------------------------ #
    # internals and diagnostics
    # ------------------------------------------------------------------ #
    def _refresh_arms(self, queries: list[Query], round_number: int) -> list[Arm]:
        """Generate arms for the QoI and merge them into the persistent registry."""
        generated = self.arm_generator.generate(queries)
        arms: list[Arm] = []
        for index_id, fresh in generated.items():
            known = self.known_arms.get(index_id)
            if known is None:
                fresh.last_generated_round = round_number
                self.known_arms[index_id] = fresh
                arms.append(fresh)
            else:
                known.source_templates |= fresh.source_templates
                known.covering_for_queries = fresh.covering_for_queries
                known.last_generated_round = round_number
                arms.append(known)
        return arms

    @property
    def known_arm_count(self) -> int:
        return len(self.known_arms)

    def theta_norm(self) -> float:
        """L2 norm of the learned weight vector (a convergence diagnostic)."""
        theta = self.bandit.theta()
        return float((theta @ theta) ** 0.5)
