"""Context engineering for candidate-index arms (Section IV of the paper).

The context of an arm has two parts:

* **Part 1 — indexed-column prefix encoding.**  One component per schema
  column.  A component is ``10^-j`` when the corresponding column is the
  ``j``-th key column of the arm (0-based) *and* is a predicate column of the
  current queries of interest; it is 0 otherwise — including when the column
  is only present to cover the payload.  This encodes that two indexes are
  similar when they share a key *prefix*, not merely a column set.

* **Part 2 — derived statistical information.**  A covering-index flag, the
  estimated index size relative to the database size (0 when the index is
  already materialised, so that re-selecting an existing index looks cheap),
  and the arm's usage count from previous rounds.

The shared linear model of C²UCB turns these features into reward predictions
for arms that have never been played.
"""

from __future__ import annotations

import math

import numpy as np

from repro.engine.catalog import Database
from repro.engine.query import Query
from repro.engine.schema import Schema

from .arms import Arm

#: Names of the derived (part 2) features, in order.
DERIVED_FEATURE_NAMES = ("is_covering", "relative_size", "usage_count")


class ContextBuilder:
    """Builds the fixed-dimension context vectors used by the bandit."""

    def __init__(self, schema: Schema) -> None:
        self.schema = schema
        self._column_positions: dict[tuple[str, str], int] = {}
        for table in schema.tables:
            for column in table.columns:
                self._column_positions[(table.name, column.name)] = len(self._column_positions)
        self._n_columns = len(self._column_positions)
        #: Per-arm static part-1 encoding: (column, slot, 10^-position) for
        #: every key column with a schema slot.  An arm's key columns never
        #: change, so this is computed once per arm id across all rounds.
        self._key_slots: dict[str, tuple[tuple[str, int, float], ...]] = {}

    # ------------------------------------------------------------------ #
    # dimensions
    # ------------------------------------------------------------------ #
    @property
    def column_feature_count(self) -> int:
        return self._n_columns

    @property
    def derived_feature_count(self) -> int:
        return len(DERIVED_FEATURE_NAMES)

    @property
    def dimension(self) -> int:
        return self._n_columns + self.derived_feature_count

    @property
    def covering_feature_index(self) -> int:
        return self._n_columns + DERIVED_FEATURE_NAMES.index("is_covering")

    @property
    def size_feature_index(self) -> int:
        """Slot of the relative-size feature (used to attribute creation costs)."""
        return self._n_columns + DERIVED_FEATURE_NAMES.index("relative_size")

    @property
    def usage_feature_index(self) -> int:
        return self._n_columns + DERIVED_FEATURE_NAMES.index("usage_count")

    def column_position(self, table: str, column: str) -> int | None:
        return self._column_positions.get((table, column))

    def _arm_key_slots(self, arm: Arm) -> tuple[tuple[str, int, float], ...]:
        slots = self._key_slots.get(arm.index_id)
        if slots is None:
            slots = tuple(
                (column, slot, 10.0 ** (-position))
                for position, column in enumerate(arm.index.key_columns)
                if (slot := self.column_position(arm.table, column)) is not None
            )
            self._key_slots[arm.index_id] = slots
        return slots

    @staticmethod
    def _hypothetical_relative_size(arm: Arm, database: Database) -> float:
        # Both database calls are O(1) cached lookups (invalidated by
        # Database.refresh_statistics), so no builder-level cache is needed.
        return database.index_size_bytes(arm.index) / max(1, database.data_size_bytes)

    def creation_context(self, arm: Arm, database: Database) -> np.ndarray:
        """Context used for the creation-cost observation of a newly built arm.

        Index-creation cost depends (almost) only on the index's size, not on
        which workload columns it serves, so the creation penalty is attributed
        to a context that activates only the relative-size feature.  This keeps
        the column-prefix weights clean estimators of *query-time* benefit.
        """
        context = np.zeros(self.dimension)
        context[self.size_feature_index] = self._hypothetical_relative_size(arm, database)
        return context

    # ------------------------------------------------------------------ #
    # context construction
    # ------------------------------------------------------------------ #
    def predicate_columns(self, queries: list[Query]) -> dict[str, set[str]]:
        """Predicate (filter + join) columns per table across the queries of interest."""
        columns: dict[str, set[str]] = {}
        for query in queries:
            for table in query.tables:
                table_columns = columns.setdefault(table, set())
                table_columns.update(query.predicate_columns_for(table))
                table_columns.update(query.join_columns_for(table))
        return columns

    def build(
        self,
        arm: Arm,
        queries: list[Query],
        database: Database,
        predicate_columns: dict[str, set[str]] | None = None,
    ) -> np.ndarray:
        """Context vector for one arm under the current queries of interest."""
        if predicate_columns is None:
            predicate_columns = self.predicate_columns(queries)
        context = np.zeros(self.dimension)
        workload_columns = predicate_columns.get(arm.table, set())

        # Part 1: prefix encoding over the arm's key columns (cached slots).
        for column, slot, value in self._arm_key_slots(arm):
            if column in workload_columns:
                context[slot] = value

        # Part 2: derived features.
        derived_base = self._n_columns
        is_covering = 1.0 if arm.covering_for_queries else 0.0
        relative_size = (
            0.0
            if database.has_index(arm.index)
            else self._hypothetical_relative_size(arm, database)
        )
        usage = math.log1p(arm.usage_rounds)
        context[derived_base + 0] = is_covering
        context[derived_base + 1] = relative_size
        context[derived_base + 2] = usage
        return context

    def build_matrix(
        self,
        arms: list[Arm],
        queries: list[Query],
        database: Database,
        predicate_columns: dict[str, set[str]] | None = None,
    ) -> np.ndarray:
        """Context matrix (one row per arm) for the current round.

        ``predicate_columns`` lets callers that build several matrices against
        the same queries of interest — one per :class:`~repro.core.arms.ArmShard`
        — compute the per-table predicate sets once and share them; by default
        they are derived from ``queries``.
        """
        if not arms:
            return np.zeros((0, self.dimension))
        if predicate_columns is None:
            predicate_columns = self.predicate_columns(queries)
        rows = [
            self.build(arm, queries, database, predicate_columns=predicate_columns)
            for arm in arms
        ]
        return np.vstack(rows)
