"""Query-template machinery.

The paper's workloads are *templatised*: "each group of templatized queries is
invoked over rounds, producing different query instances".  A
:class:`QueryTemplate` captures the structural part of a query (tables, joins,
payload, which columns are filtered and how), and each round it is
*instantiated* with fresh literal values drawn from the actual column data, so
that selectivities vary across instances and reflect the data's real skew.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum

import numpy as np

from repro.engine.catalog import Database
from repro.engine.query import JoinPredicate, Operator, Predicate, Query


class ValueMode(Enum):
    """How a predicate literal is drawn when a template is instantiated."""

    #: Draw a value by sampling a random row of the column (frequency-weighted,
    #: so heavy hitters of a skewed column are drawn proportionally often).
    SAMPLED_ROW = "sampled_row"
    #: Draw a random range covering a given fraction of the column's span.
    RANGE_FRACTION = "range_fraction"
    #: Use the fixed literal stored on the template.
    FIXED = "fixed"


@dataclass(frozen=True)
class PredicateTemplate:
    """Template for a single filter predicate."""

    table: str
    column: str
    operator: Operator
    mode: ValueMode = ValueMode.SAMPLED_ROW
    #: Fixed literal (``mode=FIXED``).
    fixed_value: float | int | tuple | None = None
    #: Span fraction bounds used by ``mode=RANGE_FRACTION`` (low, high).
    fraction_range: tuple[float, float] = (0.05, 0.2)
    #: Number of literals for IN-list predicates.
    in_list_size: int = 3

    def instantiate(self, database: Database, rng: np.random.Generator) -> Predicate:
        """Draw a concrete :class:`Predicate` for one query instance."""
        if self.mode is ValueMode.FIXED:
            if self.fixed_value is None:
                raise ValueError(
                    f"predicate template {self.table}.{self.column}: FIXED mode needs fixed_value"
                )
            return Predicate(self.table, self.column, self.operator, self.fixed_value)
        data = database.table_data(self.table)
        values = data.column_array(self.column)
        if self.operator is Operator.IN:
            size = min(self.in_list_size, len(values))
            chosen = rng.choice(values, size=size, replace=True)
            literals = tuple(sorted({int(v) for v in np.asarray(chosen)}))
            return Predicate(self.table, self.column, Operator.IN, literals)
        if self.operator is Operator.EQ:
            literal = values[int(rng.integers(0, len(values)))]
            return Predicate(self.table, self.column, Operator.EQ, int(literal))
        # Range predicates: pick a window whose width is a fraction of the span.
        low_bound, high_bound = data.value_range(self.column)
        span = max(high_bound - low_bound, 1.0)
        fraction = float(rng.uniform(*self.fraction_range))
        if self.operator is Operator.BETWEEN:
            width = span * fraction
            start = float(rng.uniform(low_bound, max(low_bound, high_bound - width)))
            return Predicate(
                self.table, self.column, Operator.BETWEEN, (start, start + width)
            )
        if self.operator in (Operator.GE, Operator.GT):
            threshold = high_bound - span * fraction
            return Predicate(self.table, self.column, self.operator, threshold)
        if self.operator in (Operator.LE, Operator.LT):
            threshold = low_bound + span * fraction
            return Predicate(self.table, self.column, self.operator, threshold)
        raise ValueError(f"unsupported operator in template: {self.operator}")


@dataclass
class QueryTemplate:
    """A templatised query: structure plus predicate templates."""

    template_id: str
    tables: tuple[str, ...]
    joins: tuple[JoinPredicate, ...] = ()
    payload: dict[str, tuple[str, ...]] = field(default_factory=dict)
    predicates: tuple[PredicateTemplate, ...] = ()
    #: Human-readable description for logging and documentation.
    description: str = ""

    _instance_counter: itertools.count = field(
        default_factory=itertools.count, repr=False, compare=False
    )

    def instantiate(self, database: Database, rng: np.random.Generator) -> Query:
        """Produce a fresh query instance with newly drawn predicate literals."""
        instance_number = next(self._instance_counter)
        predicates = tuple(
            template.instantiate(database, rng) for template in self.predicates
        )
        return Query(
            query_id=f"{self.template_id}#{instance_number}",
            template_id=self.template_id,
            tables=self.tables,
            predicates=predicates,
            joins=self.joins,
            payload=dict(self.payload),
        )


# --------------------------------------------------------------------- #
# small helpers used by the benchmark definitions to stay readable
# --------------------------------------------------------------------- #
def eq(table: str, column: str) -> PredicateTemplate:
    """Equality predicate whose literal is a sampled row value."""
    return PredicateTemplate(table, column, Operator.EQ)


def in_list(table: str, column: str, size: int = 3) -> PredicateTemplate:
    return PredicateTemplate(table, column, Operator.IN, in_list_size=size)


def between(
    table: str, column: str, low_fraction: float = 0.05, high_fraction: float = 0.2
) -> PredicateTemplate:
    return PredicateTemplate(
        table,
        column,
        Operator.BETWEEN,
        mode=ValueMode.RANGE_FRACTION,
        fraction_range=(low_fraction, high_fraction),
    )


def top_fraction(
    table: str, column: str, low_fraction: float = 0.05, high_fraction: float = 0.2
) -> PredicateTemplate:
    """``column >= threshold`` selecting roughly the top given fraction."""
    return PredicateTemplate(
        table,
        column,
        Operator.GE,
        mode=ValueMode.RANGE_FRACTION,
        fraction_range=(low_fraction, high_fraction),
    )


def bottom_fraction(
    table: str, column: str, low_fraction: float = 0.05, high_fraction: float = 0.2
) -> PredicateTemplate:
    """``column <= threshold`` selecting roughly the bottom given fraction."""
    return PredicateTemplate(
        table,
        column,
        Operator.LE,
        mode=ValueMode.RANGE_FRACTION,
        fraction_range=(low_fraction, high_fraction),
    )


def join(left_table: str, left_column: str, right_table: str, right_column: str) -> JoinPredicate:
    return JoinPredicate(left_table, left_column, right_table, right_column)
