"""Benchmark abstraction: a schema, data specification and template set.

A :class:`Benchmark` bundles everything needed to stand up one of the paper's
five evaluation workloads at a chosen scale factor: the logical schema, the
per-table data generators (row counts scaled by SF, value distributions), and
the query-template families.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.engine.backend import BackendLike, PlacementLike
from repro.engine.catalog import Database
from repro.engine.cost_model import CostModelParameters
from repro.engine.datagen import TableSpec
from repro.engine.schema import Schema

from .templates import QueryTemplate

#: Default number of sample rows materialised per table.  Large enough to
#: expose skew and correlation, small enough that the full benchmark suite
#: runs on a laptop.
DEFAULT_SAMPLE_ROWS = 8_000


@dataclass
class Benchmark:
    """One of the paper's evaluation benchmarks.

    Parameters
    ----------
    name:
        Short benchmark identifier (``tpch``, ``tpch_skew``, ``ssb``,
        ``tpcds``, ``imdb``).
    schema:
        Logical schema shared by every scale factor.
    table_spec_builder:
        Callable mapping a scale factor to the per-table data specs.
    templates:
        Query-template families (22 for TPC-H, 13 for SSB, 99 for TPC-DS,
        33 for IMDb/JOB).
    default_scale_factor:
        Scale factor used by the paper's headline experiments (10, or the
        fixed-size IMDb database).
    """

    name: str
    schema: Schema
    table_spec_builder: Callable[[float], list[TableSpec]]
    templates: list[QueryTemplate] = field(default_factory=list)
    default_scale_factor: float = 10.0
    description: str = ""

    @property
    def template_count(self) -> int:
        return len(self.templates)

    def template_ids(self) -> list[str]:
        return [template.template_id for template in self.templates]

    def table_specs(self, scale_factor: float | None = None) -> list[TableSpec]:
        scale = self.default_scale_factor if scale_factor is None else scale_factor
        return self.table_spec_builder(scale)

    def create_database(
        self,
        scale_factor: float | None = None,
        sample_rows: int = DEFAULT_SAMPLE_ROWS,
        seed: int = 7,
        memory_budget_multiplier: float | None = 1.0,
        cost_model_parameters: CostModelParameters | None = None,
        histogram_buckets: int = 0,
        backend: BackendLike = None,
        table_backends: PlacementLike = None,
    ) -> Database:
        """Materialise the benchmark database.

        ``memory_budget_multiplier`` follows the paper: the index memory budget
        equals the multiplier times the data size (1x by default).  ``None``
        disables the budget.

        ``backend`` selects the default storage tier (a registered profile
        name such as ``"hdd"``/``"ssd"``/``"inmemory"``/``"cloud"`` or a
        :class:`~repro.engine.BackendProfile`); ``None`` keeps the paper's
        HDD constants.  ``table_backends`` places individual tables on their
        own tiers — a ``{table: backend}`` mapping of overrides or a
        :class:`~repro.engine.TieredBackend` hot/cold split.
        """
        specs = self.table_specs(scale_factor)
        database = Database.from_specs(
            schema=self.schema,
            table_specs=specs,
            sample_rows=sample_rows,
            seed=seed,
            memory_budget_bytes=None,
            cost_model_parameters=cost_model_parameters,
            histogram_buckets=histogram_buckets,
            backend=backend,
            table_backends=table_backends,
        )
        if memory_budget_multiplier is not None:
            database.memory_budget_bytes = int(database.data_size_bytes * memory_budget_multiplier)
        return database
