"""TPC-H benchmark: schema, data specification and 22 query-template families.

The schema and row counts follow the TPC-H specification (SF 1 row counts,
scaled linearly).  Templates reproduce the predicate/join/payload *structure*
of Q1-Q22 — which columns are filtered, joined and projected — because that is
what drives index selection; aggregation expressions are not needed by the
simulator and are omitted.

The same module also builds the **TPC-H Skew** variant used by the paper
(zipfian factor 4): :func:`build_table_specs` takes a ``skew`` parameter that
skews foreign-key reference patterns and several attribute columns, breaking
the optimiser's uniformity assumption while keeping the schema identical.
"""

from __future__ import annotations

from repro.engine.datagen import (
    DateRange,
    Derived,
    ForeignKeyRef,
    SequentialKey,
    TableSpec,
    UniformFloat,
    UniformInt,
    ZipfianInt,
    scale_rows,
)
from repro.engine.schema import Column, ColumnType, ForeignKey, Schema, Table

from .base import Benchmark
from .templates import (
    QueryTemplate,
    between,
    bottom_fraction,
    eq,
    in_list,
    join,
    top_fraction,
)

# --------------------------------------------------------------------- #
# schema
# --------------------------------------------------------------------- #
#: SF 1 row counts from the TPC-H specification.
BASE_ROWS = {
    "region": 5,
    "nation": 25,
    "supplier": 10_000,
    "customer": 150_000,
    "part": 200_000,
    "partsupp": 800_000,
    "orders": 1_500_000,
    "lineitem": 6_000_000,
}


def build_schema() -> Schema:
    integer = ColumnType.INTEGER
    decimal = ColumnType.DECIMAL
    date = ColumnType.DATE
    char = ColumnType.CHAR
    tables = [
        Table("region", [Column("r_regionkey", integer), Column("r_name", char)],
              primary_key=("r_regionkey",)),
        Table("nation", [Column("n_nationkey", integer), Column("n_name", char),
                         Column("n_regionkey", integer)],
              primary_key=("n_nationkey",)),
        Table("supplier", [Column("s_suppkey", integer), Column("s_name", char),
                           Column("s_nationkey", integer), Column("s_acctbal", decimal)],
              primary_key=("s_suppkey",)),
        Table("customer", [Column("c_custkey", integer), Column("c_name", char),
                           Column("c_nationkey", integer), Column("c_mktsegment", char),
                           Column("c_acctbal", decimal)],
              primary_key=("c_custkey",)),
        Table("part", [Column("p_partkey", integer), Column("p_name", ColumnType.VARCHAR),
                       Column("p_brand", char), Column("p_type", char),
                       Column("p_size", integer), Column("p_container", char),
                       Column("p_retailprice", decimal)],
              primary_key=("p_partkey",)),
        Table("partsupp", [Column("ps_partkey", integer), Column("ps_suppkey", integer),
                           Column("ps_availqty", integer), Column("ps_supplycost", decimal)],
              primary_key=("ps_partkey", "ps_suppkey")),
        Table("orders", [Column("o_orderkey", integer), Column("o_custkey", integer),
                         Column("o_orderstatus", char), Column("o_totalprice", decimal),
                         Column("o_orderdate", date), Column("o_orderpriority", char),
                         Column("o_shippriority", integer)],
              primary_key=("o_orderkey",)),
        Table("lineitem", [Column("l_orderkey", integer), Column("l_partkey", integer),
                           Column("l_suppkey", integer), Column("l_linenumber", integer),
                           Column("l_quantity", decimal), Column("l_extendedprice", decimal),
                           Column("l_discount", decimal), Column("l_tax", decimal),
                           Column("l_returnflag", char), Column("l_linestatus", char),
                           Column("l_shipdate", date), Column("l_commitdate", date),
                           Column("l_receiptdate", date), Column("l_shipmode", char),
                           Column("l_shipinstruct", char)],
              primary_key=("l_orderkey", "l_linenumber")),
    ]
    foreign_keys = [
        ForeignKey("nation", "n_regionkey", "region", "r_regionkey"),
        ForeignKey("supplier", "s_nationkey", "nation", "n_nationkey"),
        ForeignKey("customer", "c_nationkey", "nation", "n_nationkey"),
        ForeignKey("partsupp", "ps_partkey", "part", "p_partkey"),
        ForeignKey("partsupp", "ps_suppkey", "supplier", "s_suppkey"),
        ForeignKey("orders", "o_custkey", "customer", "c_custkey"),
        ForeignKey("lineitem", "l_orderkey", "orders", "o_orderkey"),
        ForeignKey("lineitem", "l_partkey", "part", "p_partkey"),
        ForeignKey("lineitem", "l_suppkey", "supplier", "s_suppkey"),
    ]
    return Schema(name="tpch", tables=tables, foreign_keys=foreign_keys)


# --------------------------------------------------------------------- #
# data specification
# --------------------------------------------------------------------- #
def build_table_specs(scale_factor: float, skew: float = 0.0) -> list[TableSpec]:
    """Per-table generators for a given scale factor.

    ``skew`` = 0 reproduces uniform TPC-H; the paper's TPC-H Skew benchmark
    uses a zipfian factor of 4 applied to foreign-key reference patterns and
    several attribute columns.
    """
    rows = {name: scale_rows(count, scale_factor) for name, count in BASE_ROWS.items()}
    # Small dimension tables are never scaled below their spec sizes.
    rows["region"], rows["nation"] = 5, 25

    def attribute(n_distinct: int, low: int = 0) -> object:
        """A low-cardinality attribute column, skewed when ``skew`` > 0."""
        if skew > 0:
            return ZipfianInt(low=low, n_distinct=n_distinct, skew=skew)
        return UniformInt(low=low, high=low + n_distinct - 1)

    def reference(parent: str) -> ForeignKeyRef:
        # Foreign-key reference skew is capped: the headline zipfian factor
        # (4 in TPC-H Skew) applies to attribute columns, while reference
        # patterns get a moderate skew.  An uncapped factor-4 zipfian over
        # millions of parent keys would concentrate virtually every child row
        # on a single parent and degenerate every join into a cross product,
        # which is neither what the Microsoft skew generator produces nor
        # analytically meaningful.
        return ForeignKeyRef(parent_cardinality=rows[parent], skew=min(skew, 1.2))

    specs = [
        TableSpec("region", rows["region"], {
            "r_regionkey": SequentialKey(start=0),
            "r_name": UniformInt(0, 4),
        }),
        TableSpec("nation", rows["nation"], {
            "n_nationkey": SequentialKey(start=0),
            "n_name": SequentialKey(start=0),
            "n_regionkey": UniformInt(0, 4),
        }),
        TableSpec("supplier", rows["supplier"], {
            "s_suppkey": SequentialKey(),
            "s_name": SequentialKey(),
            "s_nationkey": UniformInt(0, 24),
            "s_acctbal": UniformFloat(-999.0, 9999.0),
        }),
        TableSpec("customer", rows["customer"], {
            "c_custkey": SequentialKey(),
            "c_name": SequentialKey(),
            "c_nationkey": attribute(25),
            "c_mktsegment": attribute(5),
            "c_acctbal": UniformFloat(-999.0, 9999.0),
        }),
        TableSpec("part", rows["part"], {
            "p_partkey": SequentialKey(),
            "p_name": SequentialKey(),
            "p_brand": attribute(25),
            "p_type": attribute(150),
            "p_size": attribute(50, low=1),
            "p_container": attribute(40),
            "p_retailprice": UniformFloat(900.0, 2100.0),
        }),
        TableSpec("partsupp", rows["partsupp"], {
            "ps_partkey": reference("part"),
            "ps_suppkey": reference("supplier"),
            "ps_availqty": UniformInt(1, 9999),
            "ps_supplycost": UniformFloat(1.0, 1000.0),
        }),
        TableSpec("orders", rows["orders"], {
            "o_orderkey": SequentialKey(),
            "o_custkey": reference("customer"),
            "o_orderstatus": attribute(3),
            "o_totalprice": UniformFloat(800.0, 450_000.0),
            "o_orderdate": DateRange(start_day=0, n_days=2406),
            "o_orderpriority": attribute(5),
            "o_shippriority": UniformInt(0, 0),
        }),
        TableSpec("lineitem", rows["lineitem"], {
            "l_orderkey": reference("orders"),
            "l_partkey": reference("part"),
            "l_suppkey": reference("supplier"),
            "l_linenumber": UniformInt(1, 7),
            "l_quantity": attribute(50, low=1),
            "l_extendedprice": UniformFloat(900.0, 105_000.0),
            "l_discount": UniformInt(0, 10),
            "l_tax": UniformInt(0, 8),
            "l_returnflag": attribute(3),
            "l_linestatus": attribute(2),
            "l_shipdate": DateRange(start_day=0, n_days=2526),
            # Commit and receipt dates are correlated with the ship date,
            # violating the AVI assumption on multi-date predicates.
            "l_commitdate": Derived("l_shipdate", noise=30),
            "l_receiptdate": Derived("l_shipdate", offset=15, noise=15),
            "l_shipmode": attribute(7),
            "l_shipinstruct": attribute(4),
        }),
    ]
    return specs


# --------------------------------------------------------------------- #
# query templates (Q1-Q22 structural analogues)
# --------------------------------------------------------------------- #
def build_templates() -> list[QueryTemplate]:
    lineitem_measures = ("l_quantity", "l_extendedprice", "l_discount", "l_tax")
    templates = [
        QueryTemplate(
            "tpch_q1", ("lineitem",),
            payload={"lineitem": lineitem_measures + ("l_returnflag", "l_linestatus")},
            predicates=(bottom_fraction("lineitem", "l_shipdate", 0.90, 0.99),),
            description="Pricing summary report (large scan, weak filter)",
        ),
        QueryTemplate(
            "tpch_q2", ("part", "partsupp", "supplier", "nation", "region"),
            joins=(join("partsupp", "ps_partkey", "part", "p_partkey"),
                   join("partsupp", "ps_suppkey", "supplier", "s_suppkey"),
                   join("supplier", "s_nationkey", "nation", "n_nationkey"),
                   join("nation", "n_regionkey", "region", "r_regionkey")),
            payload={"supplier": ("s_acctbal", "s_name"), "part": ("p_partkey",),
                     "partsupp": ("ps_supplycost",)},
            predicates=(eq("part", "p_size"), eq("part", "p_type"), eq("region", "r_name")),
            description="Minimum cost supplier",
        ),
        QueryTemplate(
            "tpch_q3", ("customer", "orders", "lineitem"),
            joins=(join("customer", "c_custkey", "orders", "o_custkey"),
                   join("lineitem", "l_orderkey", "orders", "o_orderkey")),
            payload={"lineitem": ("l_orderkey", "l_extendedprice", "l_discount"),
                     "orders": ("o_orderdate", "o_shippriority")},
            predicates=(eq("customer", "c_mktsegment"),
                        bottom_fraction("orders", "o_orderdate", 0.45, 0.55),
                        top_fraction("lineitem", "l_shipdate", 0.45, 0.55)),
            description="Shipping priority",
        ),
        QueryTemplate(
            "tpch_q4", ("orders", "lineitem"),
            joins=(join("lineitem", "l_orderkey", "orders", "o_orderkey"),),
            payload={"orders": ("o_orderpriority",)},
            predicates=(between("orders", "o_orderdate", 0.03, 0.05),),
            description="Order priority checking",
        ),
        QueryTemplate(
            "tpch_q5", ("customer", "orders", "lineitem", "supplier", "nation", "region"),
            joins=(join("customer", "c_custkey", "orders", "o_custkey"),
                   join("lineitem", "l_orderkey", "orders", "o_orderkey"),
                   join("lineitem", "l_suppkey", "supplier", "s_suppkey"),
                   join("supplier", "s_nationkey", "nation", "n_nationkey"),
                   join("nation", "n_regionkey", "region", "r_regionkey")),
            payload={"nation": ("n_name",), "lineitem": ("l_extendedprice", "l_discount")},
            predicates=(eq("region", "r_name"), between("orders", "o_orderdate", 0.14, 0.16)),
            description="Local supplier volume (index-nested-loop regression risk)",
        ),
        QueryTemplate(
            "tpch_q6", ("lineitem",),
            payload={"lineitem": ("l_extendedprice", "l_discount")},
            predicates=(between("lineitem", "l_shipdate", 0.14, 0.16),
                        between("lineitem", "l_discount", 0.08, 0.12),
                        bottom_fraction("lineitem", "l_quantity", 0.45, 0.50)),
            description="Revenue change forecast (highly selective conjunct)",
        ),
        QueryTemplate(
            "tpch_q7", ("supplier", "lineitem", "orders", "customer", "nation"),
            joins=(join("lineitem", "l_suppkey", "supplier", "s_suppkey"),
                   join("lineitem", "l_orderkey", "orders", "o_orderkey"),
                   join("orders", "o_custkey", "customer", "c_custkey"),
                   join("supplier", "s_nationkey", "nation", "n_nationkey")),
            payload={"nation": ("n_name",), "lineitem": ("l_shipdate", "l_extendedprice", "l_discount")},
            predicates=(in_list("nation", "n_name", 2),
                        top_fraction("lineitem", "l_shipdate", 0.28, 0.32)),
            description="Volume shipping",
        ),
        QueryTemplate(
            "tpch_q8", ("part", "lineitem", "orders", "customer", "nation", "region"),
            joins=(join("lineitem", "l_partkey", "part", "p_partkey"),
                   join("lineitem", "l_orderkey", "orders", "o_orderkey"),
                   join("orders", "o_custkey", "customer", "c_custkey"),
                   join("customer", "c_nationkey", "nation", "n_nationkey"),
                   join("nation", "n_regionkey", "region", "r_regionkey")),
            payload={"orders": ("o_orderdate",), "lineitem": ("l_extendedprice", "l_discount")},
            predicates=(eq("region", "r_name"), eq("part", "p_type"),
                        between("orders", "o_orderdate", 0.28, 0.32)),
            description="National market share",
        ),
        QueryTemplate(
            "tpch_q9", ("part", "supplier", "lineitem", "partsupp", "orders", "nation"),
            joins=(join("lineitem", "l_suppkey", "supplier", "s_suppkey"),
                   join("lineitem", "l_partkey", "part", "p_partkey"),
                   join("partsupp", "ps_partkey", "part", "p_partkey"),
                   join("lineitem", "l_orderkey", "orders", "o_orderkey"),
                   join("supplier", "s_nationkey", "nation", "n_nationkey")),
            payload={"nation": ("n_name",), "orders": ("o_orderdate",),
                     "lineitem": ("l_extendedprice", "l_discount", "l_quantity"),
                     "partsupp": ("ps_supplycost",)},
            predicates=(eq("part", "p_brand"),),
            description="Product type profit measure",
        ),
        QueryTemplate(
            "tpch_q10", ("customer", "orders", "lineitem", "nation"),
            joins=(join("orders", "o_custkey", "customer", "c_custkey"),
                   join("lineitem", "l_orderkey", "orders", "o_orderkey"),
                   join("customer", "c_nationkey", "nation", "n_nationkey")),
            payload={"customer": ("c_custkey", "c_name", "c_acctbal"),
                     "lineitem": ("l_extendedprice", "l_discount"), "nation": ("n_name",)},
            predicates=(between("orders", "o_orderdate", 0.08, 0.12),
                        eq("lineitem", "l_returnflag")),
            description="Returned item reporting",
        ),
        QueryTemplate(
            "tpch_q11", ("partsupp", "supplier", "nation"),
            joins=(join("partsupp", "ps_suppkey", "supplier", "s_suppkey"),
                   join("supplier", "s_nationkey", "nation", "n_nationkey")),
            payload={"partsupp": ("ps_partkey", "ps_supplycost", "ps_availqty")},
            predicates=(eq("nation", "n_name"),),
            description="Important stock identification",
        ),
        QueryTemplate(
            "tpch_q12", ("orders", "lineitem"),
            joins=(join("lineitem", "l_orderkey", "orders", "o_orderkey"),),
            payload={"lineitem": ("l_shipmode",), "orders": ("o_orderpriority",)},
            predicates=(in_list("lineitem", "l_shipmode", 2),
                        between("lineitem", "l_receiptdate", 0.14, 0.16)),
            description="Shipping modes and order priority",
        ),
        QueryTemplate(
            "tpch_q13", ("customer", "orders"),
            joins=(join("orders", "o_custkey", "customer", "c_custkey"),),
            payload={"customer": ("c_custkey",), "orders": ("o_orderkey",)},
            predicates=(eq("orders", "o_orderpriority"),),
            description="Customer distribution",
        ),
        QueryTemplate(
            "tpch_q14", ("lineitem", "part"),
            joins=(join("lineitem", "l_partkey", "part", "p_partkey"),),
            payload={"lineitem": ("l_extendedprice", "l_discount"), "part": ("p_type",)},
            predicates=(between("lineitem", "l_shipdate", 0.03, 0.05),),
            description="Promotion effect",
        ),
        QueryTemplate(
            "tpch_q15", ("supplier", "lineitem"),
            joins=(join("lineitem", "l_suppkey", "supplier", "s_suppkey"),),
            payload={"supplier": ("s_suppkey", "s_name"),
                     "lineitem": ("l_extendedprice", "l_discount")},
            predicates=(between("lineitem", "l_shipdate", 0.11, 0.13),),
            description="Top supplier",
        ),
        QueryTemplate(
            "tpch_q16", ("partsupp", "part"),
            joins=(join("partsupp", "ps_partkey", "part", "p_partkey"),),
            payload={"part": ("p_brand", "p_type", "p_size"), "partsupp": ("ps_suppkey",)},
            predicates=(eq("part", "p_brand"), in_list("part", "p_size", 8)),
            description="Parts/supplier relationship",
        ),
        QueryTemplate(
            "tpch_q17", ("lineitem", "part"),
            joins=(join("lineitem", "l_partkey", "part", "p_partkey"),),
            payload={"lineitem": ("l_extendedprice", "l_quantity")},
            predicates=(eq("part", "p_brand"), eq("part", "p_container")),
            description="Small-quantity-order revenue",
        ),
        QueryTemplate(
            "tpch_q18", ("customer", "orders", "lineitem"),
            joins=(join("orders", "o_custkey", "customer", "c_custkey"),
                   join("lineitem", "l_orderkey", "orders", "o_orderkey")),
            payload={"customer": ("c_name", "c_custkey"),
                     "orders": ("o_orderkey", "o_orderdate", "o_totalprice"),
                     "lineitem": ("l_quantity",)},
            predicates=(top_fraction("lineitem", "l_quantity", 0.02, 0.06),),
            description="Large volume customer",
        ),
        QueryTemplate(
            "tpch_q19", ("lineitem", "part"),
            joins=(join("lineitem", "l_partkey", "part", "p_partkey"),),
            payload={"lineitem": ("l_extendedprice", "l_discount")},
            predicates=(eq("part", "p_brand"), in_list("part", "p_container", 4),
                        between("lineitem", "l_quantity", 0.18, 0.22),
                        in_list("lineitem", "l_shipmode", 2)),
            description="Discounted revenue",
        ),
        QueryTemplate(
            "tpch_q20", ("supplier", "nation", "partsupp", "lineitem"),
            joins=(join("supplier", "s_nationkey", "nation", "n_nationkey"),
                   join("partsupp", "ps_suppkey", "supplier", "s_suppkey"),
                   join("lineitem", "l_partkey", "partsupp", "ps_partkey")),
            payload={"supplier": ("s_name",), "partsupp": ("ps_availqty",),
                     "lineitem": ("l_quantity",)},
            predicates=(eq("nation", "n_name"), between("lineitem", "l_shipdate", 0.14, 0.16)),
            description="Potential part promotion",
        ),
        QueryTemplate(
            "tpch_q21", ("supplier", "lineitem", "orders", "nation"),
            joins=(join("lineitem", "l_suppkey", "supplier", "s_suppkey"),
                   join("lineitem", "l_orderkey", "orders", "o_orderkey"),
                   join("supplier", "s_nationkey", "nation", "n_nationkey")),
            payload={"supplier": ("s_name",), "lineitem": ("l_receiptdate", "l_commitdate")},
            predicates=(eq("orders", "o_orderstatus"), eq("nation", "n_name")),
            description="Suppliers who kept orders waiting",
        ),
        QueryTemplate(
            "tpch_q22", ("customer", "orders"),
            joins=(join("orders", "o_custkey", "customer", "c_custkey"),),
            payload={"customer": ("c_acctbal", "c_nationkey")},
            predicates=(top_fraction("customer", "c_acctbal", 0.08, 0.12),
                        in_list("customer", "c_nationkey", 7)),
            description="Global sales opportunity (benefits from an index on orders.o_custkey)",
        ),
    ]
    return templates


def build_benchmark(skew: float = 0.0, name: str = "tpch") -> Benchmark:
    """Assemble the TPC-H (or TPC-H Skew) benchmark object."""
    return Benchmark(
        name=name,
        schema=build_schema(),
        table_spec_builder=lambda scale_factor: build_table_specs(scale_factor, skew=skew),
        templates=build_templates(),
        default_scale_factor=10.0,
        description=(
            "TPC-H decision-support benchmark"
            + (f" with zipfian skew factor {skew}" if skew else " (uniform data)")
        ),
    )
