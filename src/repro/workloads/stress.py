"""Adversarial workload stressors: the paper's "safe under ad-hoc workloads" test bed.

The paper's pitch is *safe* online index tuning under ad-hoc, shifting
workloads, but the three classic regimes (static / shifting / random) are
mild.  This module supplies a family of adversarial
:class:`~repro.workloads.generator.WorkloadSequence` subclasses — each one a
named, registered *stressor* — that the safety benchmark
(``benchmarks/test_stress_suite.py``) races every registered tuner against:

* :class:`FlashTrafficWorkload` — one template's frequency multiplies 10-50x
  for a few rounds, then collapses back to baseline;
* :class:`SeasonalWorkload` — sinusoidal template-weight rotation (periodic
  drift: the hot set wanders and returns);
* :class:`ChurnWorkload` — a fraction of every round is ad-hoc queries
  synthesised from the schema, drawn once and never seen again;
* :class:`SchemaGrowthWorkload` — tables appear mid-run: the active template
  set starts on a core table subset and expands, each arrival growing the new
  table's data volume and refreshing statistics
  (:class:`TableGrowthEvent` → :meth:`repro.engine.Database.grow_table`);
* :class:`TierMigrationWorkload` — scheduled mid-run ``promote``/``demote``
  of a hot table as a workload-visible stressor (:class:`TierMigrationEvent`).

Every stressor is **deterministic under its seed** and safe to re-iterate:
``rounds()`` restarts its private RNG on every call, so two instances built
with the same seed — and two iterations of the same instance — produce
identical round streams (pinned by :func:`sequence_fingerprint`-based
property tests in ``tests/test_workloads_stress.py``).

Environment changes ride on :attr:`WorkloadRound.events` as frozen, picklable
event specs; the driver (:meth:`repro.api.TuningSession.step_workload_round`,
or the fleet's submit/drain queue) applies them to *its* database before the
round's recommendation, so every competing tuner faces the same shifting
world.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator

import numpy as np

from repro.engine.catalog import Database
from repro.engine.query import Operator, Query

from .generator import WorkloadRound, WorkloadSequence
from .registry import register_stressor
from .templates import PredicateTemplate, QueryTemplate, ValueMode


# --------------------------------------------------------------------- #
# workload-visible environment events
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class TierMigrationEvent:
    """Move one table across storage tiers before the round runs.

    ``backend=None`` demotes the table back to the database's default tier;
    any registered backend name promotes (or re-places) it.  Applied through
    :meth:`repro.engine.Database.promote` / :meth:`~repro.engine.Database.demote`,
    so the very next plan prices the table at its new tier.
    """

    table: str
    backend: str | None = "inmemory"

    def apply(self, database: Database) -> None:
        if self.backend is None:
            database.demote(self.table)
        else:
            database.promote(self.table, self.backend)

    def describe(self) -> str:
        if self.backend is None:
            return f"demote {self.table} to the default tier"
        return f"promote {self.table} to {self.backend}"


@dataclass(frozen=True)
class TableGrowthEvent:
    """Grow one table's logical row count and refresh optimiser statistics.

    Models data ingest / a table arriving with real volume: the sample stays
    fixed, the priced row count multiplies, and
    :meth:`repro.engine.Database.grow_table` rebuilds statistics so index
    sizes, scan costs and context features all see the new world.
    """

    table: str
    row_multiplier: float = 2.0

    def apply(self, database: Database) -> None:
        database.grow_table(self.table, self.row_multiplier)

    def describe(self) -> str:
        return f"grow {self.table} rows by {self.row_multiplier:g}x"


# --------------------------------------------------------------------- #
# the stressor base: re-seedable, re-iterable round streams
# --------------------------------------------------------------------- #
class StressWorkload(WorkloadSequence):
    """Base class for adversarial sequences: deterministic and re-iterable.

    Unlike the classic sequencers (whose shared ``self.rng`` is consumed as
    rounds are drawn), every ``rounds()`` call here restarts a private
    generator from ``seed`` — re-iterating an instance, or building a second
    instance with the same seed, replays the identical stream.
    """

    def __init__(
        self,
        database: Database,
        templates: list[QueryTemplate],
        n_rounds: int = 20,
        seed: int = 13,
    ) -> None:
        super().__init__(database, templates, seed)
        if n_rounds <= 0:
            raise ValueError("n_rounds must be positive")
        self.n_rounds = n_rounds
        self.seed = seed

    def rounds(self) -> Iterator[WorkloadRound]:
        yield from self._generate(np.random.default_rng(self.seed))

    def _generate(self, rng: np.random.Generator) -> Iterator[WorkloadRound]:
        raise NotImplementedError

    def _instantiate_with(
        self, templates: list[QueryTemplate], rng: np.random.Generator
    ) -> list[Query]:
        return [template.instantiate(self.database, rng) for template in templates]


@register_stressor("flash_traffic")
class FlashTrafficWorkload(StressWorkload):
    """Flash-traffic spike: one template's frequency multiplies, then collapses.

    Baseline rounds instantiate every template once (the static regime).
    During the spike window ``[spike_start, spike_start + spike_length)`` the
    spiked template — chosen by the seeded RNG unless pinned via
    ``spike_template_index`` — contributes ``spike_multiplier`` instances per
    round instead of one, then the spike collapses back to baseline.  The
    safety question: does a tuner over-rotate its configuration onto a burst
    that will be gone three rounds later?
    """

    def __init__(
        self,
        database: Database,
        templates: list[QueryTemplate],
        n_rounds: int = 20,
        spike_multiplier: int = 20,
        spike_start: int | None = None,
        spike_length: int = 3,
        spike_template_index: int | None = None,
        seed: int = 13,
    ) -> None:
        super().__init__(database, templates, n_rounds, seed)
        if spike_multiplier < 2:
            raise ValueError("spike_multiplier must be at least 2")
        if spike_length <= 0:
            raise ValueError("spike_length must be positive")
        if spike_template_index is not None and not (
            0 <= spike_template_index < len(self.templates)
        ):
            raise ValueError("spike_template_index out of range")
        self.spike_multiplier = spike_multiplier
        self.spike_start = spike_start if spike_start is not None else self.n_rounds // 3 + 1
        self.spike_length = spike_length
        self.spike_template_index = spike_template_index

    @property
    def spike_rounds(self) -> range:
        """Round numbers (1-based) inside the spike window."""
        return range(self.spike_start, self.spike_start + self.spike_length)

    def _generate(self, rng: np.random.Generator) -> Iterator[WorkloadRound]:
        if self.spike_template_index is not None:
            hot = self.templates[self.spike_template_index]
        else:
            hot = self.templates[int(rng.integers(0, len(self.templates)))]
        first_round_queries: list[Query] | None = None
        spike = self.spike_rounds
        for round_number in range(1, self.n_rounds + 1):
            round_templates = list(self.templates)
            if round_number in spike:
                round_templates.extend([hot] * (self.spike_multiplier - 1))
            queries = self._instantiate_with(round_templates, rng)
            if first_round_queries is None:
                first_round_queries = queries
            yield WorkloadRound(
                round_number=round_number,
                queries=queries,
                invoke_pdtool=(round_number == 2),
                pdtool_training_queries=list(first_round_queries) if round_number == 2 else [],
                is_shift_round=round_number in (spike.start, spike.stop),
            )


@register_stressor("seasonal")
class SeasonalWorkload(StressWorkload):
    """Seasonal / periodic drift: sinusoidal template-weight rotation.

    Each template ``i`` carries a phase-shifted sinusoidal weight
    ``1 + amplitude * sin(2π (t / period + i / n_templates))`` and every round
    draws ``queries_per_round`` templates from the normalised weights.  The
    hot set drifts smoothly, wanders all the way around, and *returns* — the
    opposite failure mode from churn: a tuner that drops indexes the moment
    their templates cool off pays for them again every period.
    """

    def __init__(
        self,
        database: Database,
        templates: list[QueryTemplate],
        n_rounds: int = 24,
        period: int = 8,
        amplitude: float = 0.95,
        queries_per_round: int | None = None,
        seed: int = 13,
    ) -> None:
        super().__init__(database, templates, n_rounds, seed)
        if period <= 1:
            raise ValueError("period must be at least 2 rounds")
        if not 0.0 <= amplitude < 1.0:
            raise ValueError("amplitude must be within [0, 1)")
        self.period = period
        self.amplitude = amplitude
        self.queries_per_round = queries_per_round or len(self.templates)

    def weights(self, round_number: int) -> np.ndarray:
        """Unnormalised template weights in effect for one round."""
        phases = np.arange(len(self.templates)) / len(self.templates)
        angle = 2.0 * np.pi * (round_number / self.period + phases)
        return 1.0 + self.amplitude * np.sin(angle)

    def _generate(self, rng: np.random.Generator) -> Iterator[WorkloadRound]:
        first_round_queries: list[Query] | None = None
        for round_number in range(1, self.n_rounds + 1):
            weights = self.weights(round_number)
            probabilities = weights / weights.sum()
            drawn = rng.choice(
                len(self.templates),
                size=self.queries_per_round,
                replace=True,
                p=probabilities,
            )
            round_templates = [self.templates[int(i)] for i in drawn]
            queries = self._instantiate_with(round_templates, rng)
            if first_round_queries is None:
                first_round_queries = queries
            yield WorkloadRound(
                round_number=round_number,
                queries=queries,
                invoke_pdtool=(round_number == 2),
                pdtool_training_queries=list(first_round_queries) if round_number == 2 else [],
            )


@register_stressor("churn")
class ChurnWorkload(StressWorkload):
    """Template churn: ad-hoc queries drawn once and never seen again.

    Every round, a ``churn_rate`` fraction of the queries comes from brand-new
    single-table templates synthesised from the database schema (fresh ids,
    fresh predicate structure — retired immediately after the round); the
    remainder is drawn uniformly from the base templates.  This is the paper's
    "ad-hoc cloud workload" pushed to the hostile end: most of what the tuner
    just learned about is worthless next round, and every index built for a
    churned template is a pure regression.
    """

    def __init__(
        self,
        database: Database,
        templates: list[QueryTemplate],
        n_rounds: int = 20,
        churn_rate: float = 0.7,
        queries_per_round: int | None = None,
        seed: int = 13,
    ) -> None:
        super().__init__(database, templates, n_rounds, seed)
        if not 0.0 <= churn_rate <= 1.0:
            raise ValueError("churn_rate must be within [0, 1]")
        self.churn_rate = churn_rate
        self.queries_per_round = queries_per_round or len(self.templates)

    def _synthesise_template(
        self, rng: np.random.Generator, round_number: int, ordinal: int
    ) -> QueryTemplate:
        """One never-again ad-hoc template over a random table's columns."""
        table_name = self.database.table_names[
            int(rng.integers(0, len(self.database.table_names)))
        ]
        columns = self.database.schema.columns_of(table_name)
        n_predicates = int(rng.integers(1, min(2, len(columns)) + 1))
        positions = rng.choice(len(columns), size=n_predicates, replace=False)
        predicates = []
        for position in positions:
            column = columns[int(position)]
            if column.ctype.is_numeric and rng.random() < 0.6:
                operator = (Operator.BETWEEN, Operator.GE, Operator.LE)[
                    int(rng.integers(0, 3))
                ]
                predicates.append(
                    PredicateTemplate(
                        table_name,
                        column.name,
                        operator,
                        mode=ValueMode.RANGE_FRACTION,
                        fraction_range=(0.05, 0.25),
                    )
                )
            else:
                predicates.append(
                    PredicateTemplate(table_name, column.name, Operator.EQ)
                )
        payload_columns = tuple(column.name for column in columns[: max(n_predicates, 1)])
        return QueryTemplate(
            template_id=f"adhoc-r{round_number}-{ordinal}",
            tables=(table_name,),
            payload={table_name: payload_columns},
            predicates=tuple(predicates),
            description="synthesised ad-hoc query (never repeated)",
        )

    def _generate(self, rng: np.random.Generator) -> Iterator[WorkloadRound]:
        history: list[Query] = []
        for round_number in range(1, self.n_rounds + 1):
            n_adhoc = int(round(self.churn_rate * self.queries_per_round))
            round_templates = [
                self._synthesise_template(rng, round_number, ordinal)
                for ordinal in range(n_adhoc)
            ]
            for _ in range(self.queries_per_round - n_adhoc):
                round_templates.append(
                    self.templates[int(rng.integers(0, len(self.templates)))]
                )
            queries = self._instantiate_with(round_templates, rng)
            # PDTool sees the ad-hoc protocol of the random regime: invoked
            # every 4 rounds, trained on the queries seen since last time.
            invoke = round_number > 1 and (round_number - 1) % 4 == 0
            training = list(history[-4 * self.queries_per_round:]) if invoke else []
            yield WorkloadRound(
                round_number=round_number,
                queries=queries,
                invoke_pdtool=invoke,
                pdtool_training_queries=training,
            )
            history.extend(queries)


@register_stressor("schema_growth")
class SchemaGrowthWorkload(StressWorkload):
    """Schema growth: tables appear mid-run, with data volume and fresh statistics.

    The sequence starts on a *core* subset of tables (those of the first
    template) and only instantiates templates fully covered by the active
    set.  Every ``growth_every`` rounds the next table (in first-appearance
    order across the template list) is unlocked: templates touching it join
    the workload, and the round carries a :class:`TableGrowthEvent` that
    multiplies the arriving table's row count and refreshes optimiser
    statistics — so the tuner faces queries over tables it has never seen,
    whose statistics just changed under it.
    """

    def __init__(
        self,
        database: Database,
        templates: list[QueryTemplate],
        n_rounds: int = 20,
        growth_every: int = 4,
        row_multiplier: float = 3.0,
        seed: int = 13,
    ) -> None:
        super().__init__(database, templates, n_rounds, seed)
        if growth_every <= 0:
            raise ValueError("growth_every must be positive")
        if row_multiplier <= 0:
            raise ValueError("row_multiplier must be positive")
        self.growth_every = growth_every
        self.row_multiplier = row_multiplier
        #: Tables in first-appearance order across the template list.
        self.table_order: list[str] = []
        for template in self.templates:
            for table in template.tables:
                if table not in self.table_order:
                    self.table_order.append(table)
        #: The initial (pre-growth) active table set.
        self.core_tables = tuple(self.templates[0].tables)

    def active_templates(self, active_tables: set[str]) -> list[QueryTemplate]:
        """Templates whose tables are all present in the active set."""
        return [
            template
            for template in self.templates
            if set(template.tables) <= active_tables
        ]

    def growth_schedule(self) -> dict[int, str]:
        """``{round_number: arriving_table}`` for the whole sequence."""
        pending = [t for t in self.table_order if t not in set(self.core_tables)]
        schedule: dict[int, str] = {}
        round_number = self.growth_every + 1
        for table in pending:
            if round_number > self.n_rounds:
                break
            schedule[round_number] = table
            round_number += self.growth_every
        return schedule

    def _generate(self, rng: np.random.Generator) -> Iterator[WorkloadRound]:
        active_tables = set(self.core_tables)
        schedule = self.growth_schedule()
        first_round_queries: list[Query] | None = None
        for round_number in range(1, self.n_rounds + 1):
            events: tuple[TableGrowthEvent, ...] = ()
            arriving = schedule.get(round_number)
            if arriving is not None:
                active_tables.add(arriving)
                events = (TableGrowthEvent(arriving, self.row_multiplier),)
            queries = self._instantiate_with(self.active_templates(active_tables), rng)
            if first_round_queries is None:
                first_round_queries = queries
            yield WorkloadRound(
                round_number=round_number,
                queries=queries,
                invoke_pdtool=(round_number == 2),
                pdtool_training_queries=list(first_round_queries) if round_number == 2 else [],
                is_shift_round=arriving is not None,
                events=events,
            )


@register_stressor("tier_migration")
class TierMigrationWorkload(StressWorkload):
    """Mid-run tier migration: scheduled promote/demote as a workload stressor.

    Rounds are the static regime (every template once); the stress is purely
    environmental — at scheduled rounds the busiest table (the one appearing
    in the most templates, or an explicit ``migrations`` schedule) is promoted
    to a faster tier and later demoted back, changing the observed times and
    the value of every materialised index without any query change.
    """

    def __init__(
        self,
        database: Database,
        templates: list[QueryTemplate],
        n_rounds: int = 18,
        migrations: tuple[tuple[int, str, str | None], ...] | None = None,
        hot_backend: str = "inmemory",
        seed: int = 13,
    ) -> None:
        super().__init__(database, templates, n_rounds, seed)
        if migrations is None:
            hot_table = self.default_hot_table()
            promote_round = self.n_rounds // 3 + 1
            demote_round = 2 * self.n_rounds // 3 + 1
            migrations = (
                (promote_round, hot_table, hot_backend),
                (demote_round, hot_table, None),
            )
        for round_number, _table, _backend in migrations:
            if not 1 <= round_number <= n_rounds:
                raise ValueError(
                    f"migration round {round_number} outside 1..{n_rounds}"
                )
        self.migrations = tuple(migrations)

    def default_hot_table(self) -> str:
        """The table appearing in the most templates (ties break by name)."""
        counts: dict[str, int] = {}
        for template in self.templates:
            for table in template.tables:
                counts[table] = counts.get(table, 0) + 1
        return min(counts, key=lambda table: (-counts[table], table))

    def migration_schedule(self) -> dict[int, tuple[TierMigrationEvent, ...]]:
        """``{round_number: events}`` for the whole sequence."""
        schedule: dict[int, tuple[TierMigrationEvent, ...]] = {}
        for round_number, table, backend in self.migrations:
            schedule[round_number] = schedule.get(round_number, ()) + (
                TierMigrationEvent(table, backend),
            )
        return schedule

    def _generate(self, rng: np.random.Generator) -> Iterator[WorkloadRound]:
        schedule = self.migration_schedule()
        first_round_queries: list[Query] | None = None
        for round_number in range(1, self.n_rounds + 1):
            queries = self._instantiate_with(list(self.templates), rng)
            if first_round_queries is None:
                first_round_queries = queries
            events = schedule.get(round_number, ())
            yield WorkloadRound(
                round_number=round_number,
                queries=queries,
                invoke_pdtool=(round_number == 2),
                pdtool_training_queries=list(first_round_queries) if round_number == 2 else [],
                is_shift_round=bool(events),
                events=events,
            )


# --------------------------------------------------------------------- #
# canonical fingerprints (determinism pinning)
# --------------------------------------------------------------------- #
def query_fingerprint(query: Query) -> tuple[object, ...]:
    """Everything observable about a query except its instance ordinal.

    ``query_id`` carries a per-template instance counter that keeps ticking
    across materialisations of the *same* template objects, so determinism is
    pinned on the semantic content: template, tables, exact predicate
    literals, joins and payload.
    """
    return (
        query.template_id,
        query.tables,
        query.predicates,
        query.joins,
        tuple(sorted((table, columns) for table, columns in query.payload.items())),
    )


def round_fingerprint(workload_round: WorkloadRound) -> tuple[object, ...]:
    """Canonical content of one round: queries, protocol flags and events."""
    return (
        workload_round.round_number,
        tuple(query_fingerprint(query) for query in workload_round.queries),
        workload_round.invoke_pdtool,
        tuple(query_fingerprint(query) for query in workload_round.pdtool_training_queries),
        workload_round.is_shift_round,
        workload_round.events,
    )


def sequence_fingerprint(rounds: list[WorkloadRound]) -> tuple[object, ...]:
    """Canonical content of a whole materialised sequence."""
    return tuple(round_fingerprint(workload_round) for workload_round in rounds)


#: Builder signature shared by every registered stressor.
StressorBuilder = Callable[..., StressWorkload]
