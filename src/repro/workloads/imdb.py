"""IMDb / Join Order Benchmark (JOB): schema, skewed correlated data, 33 templates.

The paper uses JOB over the real IMDb dataset as its most adversarial
workload: real-world skew and cross-column correlation make optimiser
estimates unreliable, and "index overuse" leads to actual performance
regressions (e.g. Q18 running 7-8x slower under PDTool's indexes).

We reproduce the schema core of JOB — the ``title`` table linked to companies,
keywords, cast and info through link tables — and generate its 33 query
families by cycling the characteristic join shapes (title + one to three link
"arms") and filter columns.  Column generators use zipfian and derived
(correlated) distributions so that single-table estimates and join estimates
are *wrong* in the same way they are on real IMDb data, which is what produces
the regression behaviour the paper reports.
"""

from __future__ import annotations

from repro.engine.datagen import (
    Categorical,
    Derived,
    ForeignKeyRef,
    SequentialKey,
    TableSpec,
    UniformInt,
    ZipfianInt,
)
from repro.engine.schema import Column, ColumnType, ForeignKey, Schema, Table

from .base import Benchmark
from .templates import QueryTemplate, between, eq, in_list, join, top_fraction

#: Fixed row counts (the IMDb dataset does not scale with SF; about 6 GB total).
BASE_ROWS = {
    "title": 2_528_312,
    "cast_info": 36_244_344,
    "movie_info": 14_835_720,
    "movie_keyword": 4_523_930,
    "movie_companies": 2_609_129,
    "movie_info_idx": 1_380_035,
    "name": 4_167_491,
    "company_name": 234_997,
    "keyword": 134_170,
    "info_type": 113,
    "company_type": 4,
    "kind_type": 7,
    "role_type": 12,
}


def build_schema() -> Schema:
    integer = ColumnType.INTEGER
    tables = [
        Table("title", [
            Column("id", integer), Column("kind_id", integer),
            Column("production_year", integer), Column("season_nr", integer),
            Column("episode_nr", integer),
        ], primary_key=("id",)),
        Table("cast_info", [
            Column("id", integer), Column("person_id", integer),
            Column("movie_id", integer), Column("role_id", integer),
            Column("nr_order", integer),
        ], primary_key=("id",)),
        Table("movie_info", [
            Column("id", integer), Column("movie_id", integer),
            Column("info_type_id", integer), Column("info", integer),
        ], primary_key=("id",)),
        Table("movie_info_idx", [
            Column("id", integer), Column("movie_id", integer),
            Column("info_type_id", integer), Column("info", integer),
        ], primary_key=("id",)),
        Table("movie_keyword", [
            Column("id", integer), Column("movie_id", integer),
            Column("keyword_id", integer),
        ], primary_key=("id",)),
        Table("movie_companies", [
            Column("id", integer), Column("movie_id", integer),
            Column("company_id", integer), Column("company_type_id", integer),
        ], primary_key=("id",)),
        Table("name", [
            Column("id", integer), Column("gender", integer),
            Column("name_pcode", integer),
        ], primary_key=("id",)),
        Table("company_name", [
            Column("id", integer), Column("country_code", integer),
            Column("name_pcode", integer),
        ], primary_key=("id",)),
        Table("keyword", [
            Column("id", integer), Column("phonetic_code", integer),
        ], primary_key=("id",)),
        Table("info_type", [Column("id", integer), Column("info_class", integer)],
              primary_key=("id",)),
        Table("company_type", [Column("id", integer), Column("kind", integer)],
              primary_key=("id",)),
        Table("kind_type", [Column("id", integer), Column("kind", integer)],
              primary_key=("id",)),
        Table("role_type", [Column("id", integer), Column("role", integer)],
              primary_key=("id",)),
    ]
    foreign_keys = [
        ForeignKey("cast_info", "movie_id", "title", "id"),
        ForeignKey("cast_info", "person_id", "name", "id"),
        ForeignKey("cast_info", "role_id", "role_type", "id"),
        ForeignKey("movie_info", "movie_id", "title", "id"),
        ForeignKey("movie_info", "info_type_id", "info_type", "id"),
        ForeignKey("movie_info_idx", "movie_id", "title", "id"),
        ForeignKey("movie_info_idx", "info_type_id", "info_type", "id"),
        ForeignKey("movie_keyword", "movie_id", "title", "id"),
        ForeignKey("movie_keyword", "keyword_id", "keyword", "id"),
        ForeignKey("movie_companies", "movie_id", "title", "id"),
        ForeignKey("movie_companies", "company_id", "company_name", "id"),
        ForeignKey("movie_companies", "company_type_id", "company_type", "id"),
        ForeignKey("title", "kind_id", "kind_type", "id"),
    ]
    return Schema(name="imdb", tables=tables, foreign_keys=foreign_keys)


def build_table_specs(scale_factor: float = 1.0) -> list[TableSpec]:
    """IMDb data does not scale; ``scale_factor`` is accepted for interface parity."""
    del scale_factor
    rows = BASE_ROWS
    return [
        TableSpec("title", rows["title"], {
            "id": SequentialKey(),
            # Real IMDb is dominated by TV episodes and recent years.
            "kind_id": ZipfianInt(low=1, n_distinct=7, skew=1.5),
            "production_year": ZipfianInt(low=1890, n_distinct=130, skew=0.8),
            "season_nr": ZipfianInt(low=0, n_distinct=50, skew=2.0),
            "episode_nr": ZipfianInt(low=0, n_distinct=200, skew=1.5),
        }),
        TableSpec("cast_info", rows["cast_info"], {
            "id": SequentialKey(),
            "person_id": ForeignKeyRef(rows["name"], skew=1.1),
            "movie_id": ForeignKeyRef(rows["title"], skew=1.0),
            "role_id": ZipfianInt(low=1, n_distinct=12, skew=1.2),
            "nr_order": ZipfianInt(low=0, n_distinct=100, skew=1.5),
        }),
        TableSpec("movie_info", rows["movie_info"], {
            "id": SequentialKey(),
            "movie_id": ForeignKeyRef(rows["title"], skew=0.9),
            "info_type_id": ZipfianInt(low=1, n_distinct=113, skew=1.5),
            # ``info`` is correlated with the info type (genres, runtimes, ...).
            "info": Derived("info_type_id", slope=37.0, noise=40, modulo=5000),
        }),
        TableSpec("movie_info_idx", rows["movie_info_idx"], {
            "id": SequentialKey(),
            "movie_id": ForeignKeyRef(rows["title"], skew=0.8),
            "info_type_id": ZipfianInt(low=99, n_distinct=5, skew=0.5),
            "info": ZipfianInt(low=0, n_distinct=1000, skew=1.0),
        }),
        TableSpec("movie_keyword", rows["movie_keyword"], {
            "id": SequentialKey(),
            "movie_id": ForeignKeyRef(rows["title"], skew=1.0),
            "keyword_id": ForeignKeyRef(rows["keyword"], skew=1.3),
        }),
        TableSpec("movie_companies", rows["movie_companies"], {
            "id": SequentialKey(),
            "movie_id": ForeignKeyRef(rows["title"], skew=0.9),
            "company_id": ForeignKeyRef(rows["company_name"], skew=1.3),
            "company_type_id": ZipfianInt(low=1, n_distinct=4, skew=1.0),
        }),
        TableSpec("name", rows["name"], {
            "id": SequentialKey(),
            "gender": Categorical(3, weights=(0.55, 0.35, 0.10)),
            "name_pcode": ZipfianInt(low=0, n_distinct=20_000, skew=0.9),
        }),
        TableSpec("company_name", rows["company_name"], {
            "id": SequentialKey(),
            "country_code": ZipfianInt(low=0, n_distinct=120, skew=1.6),
            "name_pcode": UniformInt(0, 20_000),
        }),
        TableSpec("keyword", rows["keyword"], {
            "id": SequentialKey(),
            "phonetic_code": UniformInt(0, 10_000),
        }),
        TableSpec("info_type", rows["info_type"], {
            "id": SequentialKey(),
            "info_class": UniformInt(0, 4),
        }),
        TableSpec("company_type", rows["company_type"], {
            "id": SequentialKey(),
            "kind": SequentialKey(start=0),
        }),
        TableSpec("kind_type", rows["kind_type"], {
            "id": SequentialKey(),
            "kind": SequentialKey(start=0),
        }),
        TableSpec("role_type", rows["role_type"], {
            "id": SequentialKey(),
            "role": SequentialKey(start=0),
        }),
    ]


# --------------------------------------------------------------------- #
# template generation: the 33 JOB families
# --------------------------------------------------------------------- #
#: Join "arms" hanging off ``title``: link table, its FK to title, the
#: dimension reached through the link table (or None) and filter choices.
_ARMS = {
    "companies": ("movie_companies", "movie_id", ("company_name", "company_id", "id"),
                  [eq("company_name", "country_code"), eq("movie_companies", "company_type_id")]),
    "keywords": ("movie_keyword", "movie_id", ("keyword", "keyword_id", "id"),
                 [in_list("keyword", "phonetic_code", 4), eq("movie_keyword", "keyword_id")]),
    "info": ("movie_info", "movie_id", ("info_type", "info_type_id", "id"),
             [eq("movie_info", "info_type_id"), in_list("movie_info", "info", 5)]),
    "info_idx": ("movie_info_idx", "movie_id", ("info_type", "info_type_id", "id"),
                 [eq("movie_info_idx", "info_type_id"), top_fraction("movie_info_idx", "info", 0.05, 0.15)]),
    "cast": ("cast_info", "movie_id", ("name", "person_id", "id"),
             [eq("cast_info", "role_id"), eq("name", "gender")]),
}

#: Arm combinations cycled to produce the 33 families (JOB 1x-33x shapes).
_ARM_COMBOS = [
    ("companies",),
    ("keywords",),
    ("info",),
    ("cast",),
    ("info_idx",),
    ("companies", "keywords"),
    ("companies", "info"),
    ("keywords", "info"),
    ("cast", "companies"),
    ("cast", "keywords"),
    ("info", "info_idx"),
    ("companies", "keywords", "info"),
    ("cast", "companies", "keywords"),
    ("cast", "info", "info_idx"),
]

#: Filters on ``title`` itself, cycled across families.
_TITLE_FILTERS = [
    [top_fraction("title", "production_year", 0.10, 0.25)],
    [eq("title", "kind_id")],
    [eq("title", "kind_id"), top_fraction("title", "production_year", 0.15, 0.35)],
    [between("title", "production_year", 0.05, 0.15)],
    [],
]


def build_templates(target_count: int = 33) -> list[QueryTemplate]:
    templates: list[QueryTemplate] = []
    for index in range(target_count):
        arms = _ARM_COMBOS[index % len(_ARM_COMBOS)]
        title_filters = _TITLE_FILTERS[index % len(_TITLE_FILTERS)]
        tables = ["title"]
        joins = []
        predicates = list(title_filters)
        payload: dict[str, tuple[str, ...]] = {"title": ("id", "production_year")}
        for arm_number, arm_name in enumerate(arms):
            link_table, link_fk, dimension, filters = _ARMS[arm_name]
            if link_table not in tables:
                tables.append(link_table)
                joins.append(join(link_table, link_fk, "title", "id"))
            dimension_table, dimension_fk, dimension_key = dimension
            # Alternate between filtering on the link table only and also
            # joining out to the dimension, as the JOB families do.
            reach_dimension = (index + arm_number) % 2 == 0
            if reach_dimension and dimension_table not in tables:
                tables.append(dimension_table)
                joins.append(join(link_table, dimension_fk, dimension_table, dimension_key))
            chosen_filter = filters[(index + arm_number) % len(filters)]
            if chosen_filter.table in tables:
                predicates.append(chosen_filter)
            payload.setdefault(link_table, (link_fk,))
        templates.append(QueryTemplate(
            template_id=f"imdb_q{index + 1}",
            tables=tuple(tables),
            joins=tuple(joins),
            payload=payload,
            predicates=tuple(predicates),
            description=f"JOB family {index + 1}: title x {', '.join(arms)}",
        ))
    return templates


def build_benchmark() -> Benchmark:
    return Benchmark(
        name="imdb",
        schema=build_schema(),
        table_spec_builder=build_table_specs,
        templates=build_templates(),
        default_scale_factor=1.0,
        description="IMDb / Join Order Benchmark (fixed-size, skewed, correlated data)",
    )
