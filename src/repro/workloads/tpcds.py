"""TPC-DS benchmark: subset schema, skewed data and 99 query-template families.

TPC-DS matters to the paper for two reasons: it has by far the largest
candidate-index space (the paper counts over 3,200 candidates), which stresses
exploration efficiency and blows up the PDTool's recommendation time; and its
data is intentionally skewed, so optimiser estimates are unreliable.

We model the snowflake core of the benchmark — the three sales channels
(store, catalog, web) and their most frequently filtered dimensions — and
generate 99 structurally distinct template families programmatically, cycling
fact tables, dimension subsets and predicate columns the way the official
query set does.  What matters for index tuning is the *diversity* of
predicate/join/payload column combinations, which this construction preserves.
"""

from __future__ import annotations

import itertools

from repro.engine.datagen import (
    ForeignKeyRef,
    SequentialKey,
    TableSpec,
    UniformFloat,
    UniformInt,
    ZipfianInt,
    scale_rows,
)
from repro.engine.schema import Column, ColumnType, ForeignKey, Schema, Table

from .base import Benchmark
from .templates import QueryTemplate, between, eq, in_list, join, top_fraction

#: SF 1 row counts (approximate, from the TPC-DS specification).
BASE_ROWS = {
    "date_dim": 73_049,
    "item": 18_000,
    "customer": 100_000,
    "customer_address": 50_000,
    "customer_demographics": 1_920_800,
    "household_demographics": 7_200,
    "store": 12,
    "promotion": 300,
    "warehouse": 5,
    "store_sales": 2_880_404,
    "catalog_sales": 1_441_548,
    "web_sales": 719_384,
}

#: Dimension tables never scale with SF in TPC-DS (facts do).
NON_SCALING_TABLES = {
    "date_dim", "item", "customer", "customer_address", "customer_demographics",
    "household_demographics", "store", "promotion", "warehouse",
}

#: The three sales channels share the same logical structure.
FACT_TABLES = {
    "store_sales": "ss",
    "catalog_sales": "cs",
    "web_sales": "ws",
}


def _fact_columns(prefix: str) -> list[Column]:
    integer = ColumnType.INTEGER
    decimal = ColumnType.DECIMAL
    return [
        Column(f"{prefix}_sold_date_sk", integer),
        Column(f"{prefix}_item_sk", integer),
        Column(f"{prefix}_customer_sk", integer),
        Column(f"{prefix}_cdemo_sk", integer),
        Column(f"{prefix}_hdemo_sk", integer),
        Column(f"{prefix}_addr_sk", integer),
        Column(f"{prefix}_store_sk", integer),
        Column(f"{prefix}_promo_sk", integer),
        Column(f"{prefix}_quantity", integer),
        Column(f"{prefix}_wholesale_cost", decimal),
        Column(f"{prefix}_list_price", decimal),
        Column(f"{prefix}_sales_price", decimal),
        Column(f"{prefix}_ext_discount_amt", decimal),
        Column(f"{prefix}_ext_sales_price", decimal),
        Column(f"{prefix}_net_profit", decimal),
    ]


def build_schema() -> Schema:
    integer = ColumnType.INTEGER
    char = ColumnType.CHAR
    decimal = ColumnType.DECIMAL
    tables = [
        Table("date_dim", [
            Column("d_date_sk", integer), Column("d_year", integer),
            Column("d_moy", integer), Column("d_dom", integer),
            Column("d_qoy", integer), Column("d_day_name", char),
        ], primary_key=("d_date_sk",)),
        Table("item", [
            Column("i_item_sk", integer), Column("i_brand_id", integer),
            Column("i_class_id", integer), Column("i_category_id", integer),
            Column("i_manufact_id", integer), Column("i_current_price", decimal),
            Column("i_color", integer), Column("i_size", integer),
        ], primary_key=("i_item_sk",)),
        Table("customer", [
            Column("c_customer_sk", integer), Column("c_current_cdemo_sk", integer),
            Column("c_current_hdemo_sk", integer), Column("c_current_addr_sk", integer),
            Column("c_birth_year", integer), Column("c_birth_country", integer),
        ], primary_key=("c_customer_sk",)),
        Table("customer_address", [
            Column("ca_address_sk", integer), Column("ca_state", integer),
            Column("ca_city", integer), Column("ca_county", integer),
            Column("ca_gmt_offset", integer),
        ], primary_key=("ca_address_sk",)),
        Table("customer_demographics", [
            Column("cd_demo_sk", integer), Column("cd_gender", integer),
            Column("cd_marital_status", integer), Column("cd_education_status", integer),
            Column("cd_dep_count", integer),
        ], primary_key=("cd_demo_sk",)),
        Table("household_demographics", [
            Column("hd_demo_sk", integer), Column("hd_income_band_sk", integer),
            Column("hd_buy_potential", integer), Column("hd_dep_count", integer),
            Column("hd_vehicle_count", integer),
        ], primary_key=("hd_demo_sk",)),
        Table("store", [
            Column("s_store_sk", integer), Column("s_state", integer),
            Column("s_county", integer), Column("s_number_employees", integer),
        ], primary_key=("s_store_sk",)),
        Table("promotion", [
            Column("p_promo_sk", integer), Column("p_channel_email", integer),
            Column("p_channel_tv", integer), Column("p_response_target", integer),
        ], primary_key=("p_promo_sk",)),
        Table("warehouse", [
            Column("w_warehouse_sk", integer), Column("w_state", integer),
            Column("w_warehouse_sq_ft", integer),
        ], primary_key=("w_warehouse_sk",)),
    ]
    for fact_table, prefix in FACT_TABLES.items():
        tables.append(Table(fact_table, _fact_columns(prefix)))
    foreign_keys = []
    for fact_table, prefix in FACT_TABLES.items():
        foreign_keys.extend([
            ForeignKey(fact_table, f"{prefix}_sold_date_sk", "date_dim", "d_date_sk"),
            ForeignKey(fact_table, f"{prefix}_item_sk", "item", "i_item_sk"),
            ForeignKey(fact_table, f"{prefix}_customer_sk", "customer", "c_customer_sk"),
            ForeignKey(fact_table, f"{prefix}_cdemo_sk", "customer_demographics", "cd_demo_sk"),
            ForeignKey(fact_table, f"{prefix}_hdemo_sk", "household_demographics", "hd_demo_sk"),
            ForeignKey(fact_table, f"{prefix}_addr_sk", "customer_address", "ca_address_sk"),
            ForeignKey(fact_table, f"{prefix}_store_sk", "store", "s_store_sk"),
            ForeignKey(fact_table, f"{prefix}_promo_sk", "promotion", "p_promo_sk"),
        ])
    return Schema(name="tpcds", tables=tables, foreign_keys=foreign_keys)


def build_table_specs(scale_factor: float) -> list[TableSpec]:
    rows = {}
    for name, count in BASE_ROWS.items():
        rows[name] = count if name in NON_SCALING_TABLES else scale_rows(count, scale_factor)

    specs = [
        TableSpec("date_dim", rows["date_dim"], {
            "d_date_sk": SequentialKey(),
            "d_year": UniformInt(1998, 2003),
            "d_moy": UniformInt(1, 12),
            "d_dom": UniformInt(1, 31),
            "d_qoy": UniformInt(1, 4),
            "d_day_name": UniformInt(0, 6),
        }),
        TableSpec("item", rows["item"], {
            "i_item_sk": SequentialKey(),
            "i_brand_id": ZipfianInt(low=1, n_distinct=1000, skew=1.0),
            "i_class_id": UniformInt(1, 16),
            "i_category_id": UniformInt(1, 10),
            "i_manufact_id": ZipfianInt(low=1, n_distinct=1000, skew=1.0),
            "i_current_price": UniformFloat(0.1, 300.0),
            "i_color": UniformInt(0, 92),
            "i_size": UniformInt(0, 7),
        }),
        TableSpec("customer", rows["customer"], {
            "c_customer_sk": SequentialKey(),
            "c_current_cdemo_sk": ForeignKeyRef(rows["customer_demographics"]),
            "c_current_hdemo_sk": ForeignKeyRef(rows["household_demographics"]),
            "c_current_addr_sk": ForeignKeyRef(rows["customer_address"]),
            "c_birth_year": UniformInt(1930, 1995),
            "c_birth_country": ZipfianInt(low=0, n_distinct=200, skew=1.2),
        }),
        TableSpec("customer_address", rows["customer_address"], {
            "ca_address_sk": SequentialKey(),
            "ca_state": ZipfianInt(low=0, n_distinct=51, skew=1.0),
            "ca_city": ZipfianInt(low=0, n_distinct=900, skew=1.0),
            "ca_county": UniformInt(0, 1800),
            "ca_gmt_offset": UniformInt(-10, -5),
        }),
        TableSpec("customer_demographics", rows["customer_demographics"], {
            "cd_demo_sk": SequentialKey(),
            "cd_gender": UniformInt(0, 1),
            "cd_marital_status": UniformInt(0, 4),
            "cd_education_status": UniformInt(0, 6),
            "cd_dep_count": UniformInt(0, 6),
        }),
        TableSpec("household_demographics", rows["household_demographics"], {
            "hd_demo_sk": SequentialKey(),
            "hd_income_band_sk": UniformInt(1, 20),
            "hd_buy_potential": UniformInt(0, 5),
            "hd_dep_count": UniformInt(0, 9),
            "hd_vehicle_count": UniformInt(0, 4),
        }),
        TableSpec("store", rows["store"], {
            "s_store_sk": SequentialKey(),
            "s_state": UniformInt(0, 8),
            "s_county": UniformInt(0, 8),
            "s_number_employees": UniformInt(200, 300),
        }),
        TableSpec("promotion", rows["promotion"], {
            "p_promo_sk": SequentialKey(),
            "p_channel_email": UniformInt(0, 1),
            "p_channel_tv": UniformInt(0, 1),
            "p_response_target": UniformInt(0, 1),
        }),
        TableSpec("warehouse", rows["warehouse"], {
            "w_warehouse_sk": SequentialKey(),
            "w_state": UniformInt(0, 8),
            "w_warehouse_sq_ft": UniformInt(50_000, 1_000_000),
        }),
    ]
    for fact_table, prefix in FACT_TABLES.items():
        specs.append(TableSpec(fact_table, rows[fact_table], {
            f"{prefix}_sold_date_sk": ForeignKeyRef(rows["date_dim"], skew=0.5),
            f"{prefix}_item_sk": ForeignKeyRef(rows["item"], skew=1.0),
            f"{prefix}_customer_sk": ForeignKeyRef(rows["customer"], skew=0.8),
            f"{prefix}_cdemo_sk": ForeignKeyRef(rows["customer_demographics"]),
            f"{prefix}_hdemo_sk": ForeignKeyRef(rows["household_demographics"]),
            f"{prefix}_addr_sk": ForeignKeyRef(rows["customer_address"], skew=0.8),
            f"{prefix}_store_sk": ForeignKeyRef(rows["store"]),
            f"{prefix}_promo_sk": ForeignKeyRef(rows["promotion"], skew=1.0),
            f"{prefix}_quantity": UniformInt(1, 100),
            f"{prefix}_wholesale_cost": UniformFloat(1.0, 100.0),
            f"{prefix}_list_price": UniformFloat(1.0, 300.0),
            f"{prefix}_sales_price": UniformFloat(0.0, 300.0),
            f"{prefix}_ext_discount_amt": UniformFloat(0.0, 30_000.0),
            f"{prefix}_ext_sales_price": UniformFloat(0.0, 30_000.0),
            f"{prefix}_net_profit": UniformFloat(-10_000.0, 20_000.0),
        }))
    return specs


# --------------------------------------------------------------------- #
# template generation
# --------------------------------------------------------------------- #
#: Dimension join metadata: name -> (dimension key, predicate column choices).
_DIMENSIONS = {
    "date_dim": ("d_date_sk", ["d_year", "d_moy", "d_qoy", "d_dom"]),
    "item": ("i_item_sk", ["i_category_id", "i_brand_id", "i_class_id", "i_color", "i_manufact_id"]),
    "customer": ("c_customer_sk", ["c_birth_year", "c_birth_country"]),
    "customer_address": ("ca_address_sk", ["ca_state", "ca_city", "ca_gmt_offset"]),
    "customer_demographics": ("cd_demo_sk", ["cd_gender", "cd_marital_status", "cd_education_status"]),
    "household_demographics": ("hd_demo_sk", ["hd_buy_potential", "hd_dep_count", "hd_vehicle_count"]),
    "store": ("s_store_sk", ["s_state", "s_county"]),
    "promotion": ("p_promo_sk", ["p_channel_email", "p_channel_tv"]),
}

#: Fact foreign-key column per (fact prefix, dimension).
_FACT_FK = {
    "date_dim": "sold_date_sk",
    "item": "item_sk",
    "customer": "customer_sk",
    "customer_address": "addr_sk",
    "customer_demographics": "cdemo_sk",
    "household_demographics": "hdemo_sk",
    "store": "store_sk",
    "promotion": "promo_sk",
}

#: Dimension subsets used by the query families, cycled over fact tables.
_DIMENSION_COMBOS = [
    ("date_dim", "item"),
    ("date_dim", "store"),
    ("date_dim", "customer", "customer_address"),
    ("date_dim", "item", "promotion"),
    ("date_dim", "household_demographics"),
    ("date_dim", "customer_demographics", "item"),
    ("item", "customer_address"),
    ("date_dim", "store", "household_demographics"),
    ("date_dim", "item", "customer"),
    ("customer", "customer_address", "household_demographics"),
    ("date_dim",),
]

#: Fact-side measure/filter columns (suffixes appended to the fact prefix).
_FACT_MEASURES = [
    ("quantity", "sales_price"),
    ("ext_sales_price", "net_profit"),
    ("list_price", "ext_discount_amt"),
    ("wholesale_cost", "net_profit"),
]


def build_templates(target_count: int = 99) -> list[QueryTemplate]:
    """Generate ``target_count`` structurally distinct query-template families."""
    templates: list[QueryTemplate] = []
    fact_cycle = itertools.cycle(FACT_TABLES.items())
    combo_cycle = itertools.cycle(_DIMENSION_COMBOS)
    measure_cycle = itertools.cycle(_FACT_MEASURES)
    predicate_offset = 0
    while len(templates) < target_count:
        fact_table, prefix = next(fact_cycle)
        dimensions = next(combo_cycle)
        measures = next(measure_cycle)
        index = len(templates) + 1
        joins = []
        predicates = []
        payload: dict[str, tuple[str, ...]] = {
            fact_table: tuple(f"{prefix}_{measure}" for measure in measures)
        }
        for position, dimension in enumerate(dimensions):
            key_column, predicate_columns = _DIMENSIONS[dimension]
            joins.append(join(fact_table, f"{prefix}_{_FACT_FK[dimension]}", dimension, key_column))
            chosen = predicate_columns[(predicate_offset + position) % len(predicate_columns)]
            if position == 0:
                predicates.append(eq(dimension, chosen))
            elif position == 1:
                predicates.append(in_list(dimension, chosen, 3))
            else:
                predicates.append(eq(dimension, chosen))
            payload[dimension] = (chosen,)
        # Every third family adds a fact-side range filter, every fifth a
        # selective fact filter, broadening the candidate-index space.
        if index % 3 == 0:
            predicates.append(between(fact_table, f"{prefix}_{measures[0]}", 0.1, 0.25))
        if index % 5 == 0:
            predicates.append(top_fraction(fact_table, f"{prefix}_net_profit", 0.02, 0.08))
        templates.append(QueryTemplate(
            template_id=f"tpcds_q{index}",
            tables=(fact_table,) + tuple(dimensions),
            joins=tuple(joins),
            payload=payload,
            predicates=tuple(predicates),
            description=f"TPC-DS family {index}: {fact_table} x {', '.join(dimensions)}",
        ))
        predicate_offset += 1
    return templates


def build_benchmark() -> Benchmark:
    return Benchmark(
        name="tpcds",
        schema=build_schema(),
        table_spec_builder=build_table_specs,
        templates=build_templates(),
        default_scale_factor=10.0,
        description="TPC-DS snowflake subset with 99 generated query-template families",
    )
