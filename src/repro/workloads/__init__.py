"""Benchmark workloads and workload sequencers.

Provides the paper's five evaluation benchmarks (TPC-H, TPC-H Skew, SSB,
TPC-DS, IMDb/JOB) as schema + data-generator + query-template bundles, and the
three workload regimes (static, dynamic shifting, dynamic random).
"""

from .base import DEFAULT_SAMPLE_ROWS, Benchmark
from .generator import (
    RandomWorkload,
    ShiftingWorkload,
    StaticWorkload,
    WorkloadRound,
    WorkloadSequence,
    round_to_round_repeat_rate,
)
from .registry import (
    BENCHMARK_NAMES,
    UnknownStressorError,
    available_benchmarks,
    available_stressors,
    get_benchmark,
    get_stressor,
    register_stressor,
)
from .stress import (
    ChurnWorkload,
    FlashTrafficWorkload,
    SchemaGrowthWorkload,
    SeasonalWorkload,
    StressWorkload,
    TableGrowthEvent,
    TierMigrationEvent,
    TierMigrationWorkload,
    query_fingerprint,
    round_fingerprint,
    sequence_fingerprint,
)
from .templates import (
    PredicateTemplate,
    QueryTemplate,
    ValueMode,
    between,
    bottom_fraction,
    eq,
    in_list,
    join,
    top_fraction,
)

__all__ = [
    "BENCHMARK_NAMES",
    "Benchmark",
    "ChurnWorkload",
    "DEFAULT_SAMPLE_ROWS",
    "FlashTrafficWorkload",
    "PredicateTemplate",
    "QueryTemplate",
    "RandomWorkload",
    "SchemaGrowthWorkload",
    "SeasonalWorkload",
    "ShiftingWorkload",
    "StaticWorkload",
    "StressWorkload",
    "TableGrowthEvent",
    "TierMigrationEvent",
    "TierMigrationWorkload",
    "UnknownStressorError",
    "ValueMode",
    "WorkloadRound",
    "WorkloadSequence",
    "available_benchmarks",
    "available_stressors",
    "between",
    "bottom_fraction",
    "eq",
    "get_benchmark",
    "get_stressor",
    "in_list",
    "join",
    "query_fingerprint",
    "register_stressor",
    "round_fingerprint",
    "round_to_round_repeat_rate",
    "sequence_fingerprint",
    "top_fraction",
]
