"""Benchmark workloads and workload sequencers.

Provides the paper's five evaluation benchmarks (TPC-H, TPC-H Skew, SSB,
TPC-DS, IMDb/JOB) as schema + data-generator + query-template bundles, and the
three workload regimes (static, dynamic shifting, dynamic random).
"""

from .base import DEFAULT_SAMPLE_ROWS, Benchmark
from .generator import (
    RandomWorkload,
    ShiftingWorkload,
    StaticWorkload,
    WorkloadRound,
    WorkloadSequence,
    round_to_round_repeat_rate,
)
from .registry import BENCHMARK_NAMES, available_benchmarks, get_benchmark
from .templates import (
    PredicateTemplate,
    QueryTemplate,
    ValueMode,
    between,
    bottom_fraction,
    eq,
    in_list,
    join,
    top_fraction,
)

__all__ = [
    "BENCHMARK_NAMES",
    "Benchmark",
    "DEFAULT_SAMPLE_ROWS",
    "PredicateTemplate",
    "QueryTemplate",
    "RandomWorkload",
    "ShiftingWorkload",
    "StaticWorkload",
    "ValueMode",
    "WorkloadRound",
    "WorkloadSequence",
    "available_benchmarks",
    "between",
    "bottom_fraction",
    "eq",
    "get_benchmark",
    "in_list",
    "join",
    "round_to_round_repeat_rate",
    "top_fraction",
]
