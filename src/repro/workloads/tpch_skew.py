"""TPC-H Skew: the Microsoft skewed TPC-H variant used by the paper.

Identical schema and query templates to TPC-H; the data generators apply a
zipfian factor (the paper uses 4) to foreign-key reference patterns and
low-cardinality attribute columns.  The resulting heavy hitters make the
optimiser's uniformity assumption — and therefore the what-if-driven
PDTool's recommendations — unreliable, which is the setting in which the
bandit's observation-driven search shines (Figures 2(c), 4(c), 6(c),
Tables I and II).
"""

from __future__ import annotations

from .base import Benchmark
from .tpch import build_benchmark

#: Zipfian factor used in the paper's TPC-H Skew experiments.
DEFAULT_SKEW_FACTOR = 4.0


def build_skewed_benchmark(skew: float = DEFAULT_SKEW_FACTOR) -> Benchmark:
    """TPC-H Skew benchmark with the given zipfian factor."""
    return build_benchmark(skew=skew, name="tpch_skew")
