"""Star Schema Benchmark (SSB): schema, data and 13 query templates.

SSB is a star-schema simplification of TPC-H: a single ``lineorder`` fact
table joined to four dimension tables.  Its 13 queries are organised in four
flights with progressively tighter dimension filters; the paper uses it as the
benchmark with "easily achievable high index benefits".
"""

from __future__ import annotations

from repro.engine.datagen import (
    ForeignKeyRef,
    SequentialKey,
    TableSpec,
    UniformFloat,
    UniformInt,
    scale_rows,
)
from repro.engine.schema import Column, ColumnType, ForeignKey, Schema, Table

from .base import Benchmark
from .templates import QueryTemplate, between, bottom_fraction, eq, in_list, join

#: SF 1 row counts from the SSB specification.
BASE_ROWS = {
    "lineorder": 6_000_000,
    "date_dim": 2_556,
    "customer": 30_000,
    "supplier": 2_000,
    "part": 200_000,
}


def build_schema() -> Schema:
    integer = ColumnType.INTEGER
    decimal = ColumnType.DECIMAL
    char = ColumnType.CHAR
    tables = [
        Table("date_dim", [
            Column("d_datekey", integer), Column("d_year", integer),
            Column("d_yearmonthnum", integer), Column("d_weeknuminyear", integer),
        ], primary_key=("d_datekey",)),
        Table("customer", [
            Column("c_custkey", integer), Column("c_city", integer),
            Column("c_nation", integer), Column("c_region", integer),
        ], primary_key=("c_custkey",)),
        Table("supplier", [
            Column("s_suppkey", integer), Column("s_city", integer),
            Column("s_nation", integer), Column("s_region", integer),
        ], primary_key=("s_suppkey",)),
        Table("part", [
            Column("p_partkey", integer), Column("p_mfgr", integer),
            Column("p_category", integer), Column("p_brand1", integer),
        ], primary_key=("p_partkey",)),
        Table("lineorder", [
            Column("lo_orderkey", integer), Column("lo_linenumber", integer),
            Column("lo_custkey", integer), Column("lo_partkey", integer),
            Column("lo_suppkey", integer), Column("lo_orderdate", integer),
            Column("lo_quantity", integer), Column("lo_extendedprice", decimal),
            Column("lo_discount", integer), Column("lo_revenue", decimal),
            Column("lo_supplycost", decimal), Column("lo_ordtotalprice", decimal),
            Column("lo_shipmode", char),
        ], primary_key=("lo_orderkey", "lo_linenumber")),
    ]
    foreign_keys = [
        ForeignKey("lineorder", "lo_custkey", "customer", "c_custkey"),
        ForeignKey("lineorder", "lo_partkey", "part", "p_partkey"),
        ForeignKey("lineorder", "lo_suppkey", "supplier", "s_suppkey"),
        ForeignKey("lineorder", "lo_orderdate", "date_dim", "d_datekey"),
    ]
    return Schema(name="ssb", tables=tables, foreign_keys=foreign_keys)


def build_table_specs(scale_factor: float) -> list[TableSpec]:
    rows = {name: scale_rows(count, scale_factor) for name, count in BASE_ROWS.items()}
    rows["date_dim"] = BASE_ROWS["date_dim"]  # the date dimension never scales
    return [
        TableSpec("date_dim", rows["date_dim"], {
            "d_datekey": SequentialKey(),
            "d_year": UniformInt(1992, 1998),
            "d_yearmonthnum": UniformInt(199201, 199812),
            "d_weeknuminyear": UniformInt(1, 53),
        }),
        TableSpec("customer", rows["customer"], {
            "c_custkey": SequentialKey(),
            "c_city": UniformInt(0, 249),
            "c_nation": UniformInt(0, 24),
            "c_region": UniformInt(0, 4),
        }),
        TableSpec("supplier", rows["supplier"], {
            "s_suppkey": SequentialKey(),
            "s_city": UniformInt(0, 249),
            "s_nation": UniformInt(0, 24),
            "s_region": UniformInt(0, 4),
        }),
        TableSpec("part", rows["part"], {
            "p_partkey": SequentialKey(),
            "p_mfgr": UniformInt(0, 4),
            "p_category": UniformInt(0, 24),
            "p_brand1": UniformInt(0, 999),
        }),
        TableSpec("lineorder", rows["lineorder"], {
            "lo_orderkey": SequentialKey(),
            "lo_linenumber": UniformInt(1, 7),
            "lo_custkey": ForeignKeyRef(rows["customer"]),
            "lo_partkey": ForeignKeyRef(rows["part"]),
            "lo_suppkey": ForeignKeyRef(rows["supplier"]),
            "lo_orderdate": ForeignKeyRef(rows["date_dim"]),
            "lo_quantity": UniformInt(1, 50),
            "lo_extendedprice": UniformFloat(900.0, 105_000.0),
            "lo_discount": UniformInt(0, 10),
            "lo_revenue": UniformFloat(0.0, 100_000.0),
            "lo_supplycost": UniformFloat(1.0, 1_000.0),
            "lo_ordtotalprice": UniformFloat(800.0, 450_000.0),
            "lo_shipmode": UniformInt(0, 6),
        }),
    ]


def build_templates() -> list[QueryTemplate]:
    """The 13 SSB queries (four flights) as structural templates."""
    revenue = ("lo_extendedprice", "lo_discount", "lo_revenue")
    date_join = join("lineorder", "lo_orderdate", "date_dim", "d_datekey")
    cust_join = join("lineorder", "lo_custkey", "customer", "c_custkey")
    supp_join = join("lineorder", "lo_suppkey", "supplier", "s_suppkey")
    part_join = join("lineorder", "lo_partkey", "part", "p_partkey")
    return [
        # Flight 1: date + measure filters on the fact table.
        QueryTemplate("ssb_q1_1", ("lineorder", "date_dim"), joins=(date_join,),
                      payload={"lineorder": revenue},
                      predicates=(eq("date_dim", "d_year"),
                                  between("lineorder", "lo_discount", 0.2, 0.3),
                                  bottom_fraction("lineorder", "lo_quantity", 0.45, 0.50)),
                      description="Flight 1 query 1"),
        QueryTemplate("ssb_q1_2", ("lineorder", "date_dim"), joins=(date_join,),
                      payload={"lineorder": revenue},
                      predicates=(eq("date_dim", "d_yearmonthnum"),
                                  between("lineorder", "lo_discount", 0.3, 0.4),
                                  between("lineorder", "lo_quantity", 0.18, 0.22)),
                      description="Flight 1 query 2"),
        QueryTemplate("ssb_q1_3", ("lineorder", "date_dim"), joins=(date_join,),
                      payload={"lineorder": revenue},
                      predicates=(eq("date_dim", "d_weeknuminyear"), eq("date_dim", "d_year"),
                                  between("lineorder", "lo_discount", 0.4, 0.6),
                                  between("lineorder", "lo_quantity", 0.10, 0.14)),
                      description="Flight 1 query 3"),
        # Flight 2: part and supplier dimension filters.
        QueryTemplate("ssb_q2_1", ("lineorder", "date_dim", "part", "supplier"),
                      joins=(date_join, part_join, supp_join),
                      payload={"lineorder": ("lo_revenue",), "date_dim": ("d_year",),
                               "part": ("p_brand1",)},
                      predicates=(eq("part", "p_category"), eq("supplier", "s_region")),
                      description="Flight 2 query 1"),
        QueryTemplate("ssb_q2_2", ("lineorder", "date_dim", "part", "supplier"),
                      joins=(date_join, part_join, supp_join),
                      payload={"lineorder": ("lo_revenue",), "date_dim": ("d_year",),
                               "part": ("p_brand1",)},
                      predicates=(in_list("part", "p_brand1", 8), eq("supplier", "s_region")),
                      description="Flight 2 query 2"),
        QueryTemplate("ssb_q2_3", ("lineorder", "date_dim", "part", "supplier"),
                      joins=(date_join, part_join, supp_join),
                      payload={"lineorder": ("lo_revenue",), "date_dim": ("d_year",),
                               "part": ("p_brand1",)},
                      predicates=(eq("part", "p_brand1"), eq("supplier", "s_region")),
                      description="Flight 2 query 3"),
        # Flight 3: customer/supplier geography over a date range.
        QueryTemplate("ssb_q3_1", ("lineorder", "date_dim", "customer", "supplier"),
                      joins=(date_join, cust_join, supp_join),
                      payload={"customer": ("c_nation",), "supplier": ("s_nation",),
                               "date_dim": ("d_year",), "lineorder": ("lo_revenue",)},
                      predicates=(eq("customer", "c_region"), eq("supplier", "s_region"),
                                  between("date_dim", "d_year", 0.5, 0.9)),
                      description="Flight 3 query 1"),
        QueryTemplate("ssb_q3_2", ("lineorder", "date_dim", "customer", "supplier"),
                      joins=(date_join, cust_join, supp_join),
                      payload={"customer": ("c_city",), "supplier": ("s_city",),
                               "date_dim": ("d_year",), "lineorder": ("lo_revenue",)},
                      predicates=(eq("customer", "c_nation"), eq("supplier", "s_nation"),
                                  between("date_dim", "d_year", 0.5, 0.9)),
                      description="Flight 3 query 2"),
        QueryTemplate("ssb_q3_3", ("lineorder", "date_dim", "customer", "supplier"),
                      joins=(date_join, cust_join, supp_join),
                      payload={"customer": ("c_city",), "supplier": ("s_city",),
                               "date_dim": ("d_year",), "lineorder": ("lo_revenue",)},
                      predicates=(in_list("customer", "c_city", 2), in_list("supplier", "s_city", 2),
                                  between("date_dim", "d_year", 0.5, 0.9)),
                      description="Flight 3 query 3"),
        QueryTemplate("ssb_q3_4", ("lineorder", "date_dim", "customer", "supplier"),
                      joins=(date_join, cust_join, supp_join),
                      payload={"customer": ("c_city",), "supplier": ("s_city",),
                               "date_dim": ("d_year",), "lineorder": ("lo_revenue",)},
                      predicates=(in_list("customer", "c_city", 2), in_list("supplier", "s_city", 2),
                                  eq("date_dim", "d_yearmonthnum")),
                      description="Flight 3 query 4"),
        # Flight 4: profit drill-down across all dimensions.
        QueryTemplate("ssb_q4_1", ("lineorder", "date_dim", "customer", "supplier", "part"),
                      joins=(date_join, cust_join, supp_join, part_join),
                      payload={"date_dim": ("d_year",), "customer": ("c_nation",),
                               "lineorder": ("lo_revenue", "lo_supplycost")},
                      predicates=(eq("customer", "c_region"), eq("supplier", "s_region"),
                                  in_list("part", "p_mfgr", 2)),
                      description="Flight 4 query 1"),
        QueryTemplate("ssb_q4_2", ("lineorder", "date_dim", "customer", "supplier", "part"),
                      joins=(date_join, cust_join, supp_join, part_join),
                      payload={"date_dim": ("d_year",), "supplier": ("s_nation",),
                               "part": ("p_category",),
                               "lineorder": ("lo_revenue", "lo_supplycost")},
                      predicates=(eq("customer", "c_region"), eq("supplier", "s_region"),
                                  between("date_dim", "d_year", 0.2, 0.35),
                                  in_list("part", "p_mfgr", 2)),
                      description="Flight 4 query 2"),
        QueryTemplate("ssb_q4_3", ("lineorder", "date_dim", "customer", "supplier", "part"),
                      joins=(date_join, cust_join, supp_join, part_join),
                      payload={"date_dim": ("d_year",), "supplier": ("s_city",),
                               "part": ("p_brand1",),
                               "lineorder": ("lo_revenue", "lo_supplycost")},
                      predicates=(eq("customer", "c_region"), eq("supplier", "s_nation"),
                                  between("date_dim", "d_year", 0.2, 0.35),
                                  eq("part", "p_category")),
                      description="Flight 4 query 3"),
    ]


def build_benchmark() -> Benchmark:
    return Benchmark(
        name="ssb",
        schema=build_schema(),
        table_spec_builder=build_table_specs,
        templates=build_templates(),
        default_scale_factor=10.0,
        description="Star Schema Benchmark (13 queries, star joins around lineorder)",
    )
