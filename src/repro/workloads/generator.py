"""Workload sequencers: static, dynamic shifting and dynamic random.

These reproduce the three workload regimes of the paper's evaluation
(Section V-A):

* **static** — every template is instantiated once per round, for a fixed
  number of rounds (25 in the paper), modelling reporting workloads;
* **dynamic shifting** — templates are split into equal groups; each group
  runs for a fixed number of rounds (20) before the workload shifts to a
  disjoint group, modelling data exploration;
* **dynamic random** — each round draws a random subset of templates with a
  controlled round-to-round repeat rate (45-54 % in the paper), modelling
  truly ad-hoc cloud workloads.

A sequencer yields :class:`WorkloadRound` objects; PDTool-style tuners may
look at ``pdtool_training_queries`` which encodes the (favourable-to-PDTool)
training-workload convention the paper uses for each regime.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from repro.engine.catalog import Database
from repro.engine.query import Query

from .templates import QueryTemplate


@dataclass
class WorkloadRound:
    """One round (mini-workload) of the online tuning loop."""

    round_number: int
    queries: list[Query]
    #: True on rounds where the paper's protocol invokes the PDTool.
    invoke_pdtool: bool = False
    #: The training workload handed to the PDTool on invocation rounds.
    pdtool_training_queries: list[Query] = field(default_factory=list)
    #: True when the sequencer knows the workload just shifted (for reporting).
    is_shift_round: bool = False
    #: Workload-visible environment changes (tier migrations, table growth)
    #: the driver applies to its database *before* the round's recommendation
    #: — see :mod:`repro.workloads.stress`.  Empty for the paper's three
    #: classic regimes.
    events: tuple = ()

    @property
    def template_ids(self) -> set[str]:
        return {query.template_id for query in self.queries}


class WorkloadSequence:
    """Base class: materialises rounds lazily from templates and a database."""

    def __init__(self, database: Database, templates: list[QueryTemplate], seed: int = 13) -> None:
        if not templates:
            raise ValueError("a workload sequence needs at least one template")
        self.database = database
        self.templates = list(templates)
        self.rng = np.random.default_rng(seed)

    def rounds(self) -> Iterator[WorkloadRound]:
        raise NotImplementedError

    def materialise(self) -> list[WorkloadRound]:
        return list(self.rounds())

    def _instantiate(self, templates: list[QueryTemplate]) -> list[Query]:
        return [template.instantiate(self.database, self.rng) for template in templates]


class StaticWorkload(WorkloadSequence):
    """All templates, one instance each, every round."""

    def __init__(
        self,
        database: Database,
        templates: list[QueryTemplate],
        n_rounds: int = 25,
        seed: int = 13,
    ) -> None:
        super().__init__(database, templates, seed)
        if n_rounds <= 0:
            raise ValueError("n_rounds must be positive")
        self.n_rounds = n_rounds

    def rounds(self) -> Iterator[WorkloadRound]:
        first_round_queries: list[Query] | None = None
        for round_number in range(1, self.n_rounds + 1):
            queries = self._instantiate(self.templates)
            if first_round_queries is None:
                first_round_queries = queries
            # The paper invokes PDTool once, after the first round of new
            # queries, using those queries as the (representative) training
            # workload.
            yield WorkloadRound(
                round_number=round_number,
                queries=queries,
                invoke_pdtool=(round_number == 2),
                pdtool_training_queries=list(first_round_queries) if round_number == 2 else [],
            )


class ShiftingWorkload(WorkloadSequence):
    """Templates split into groups; the active group changes every ``rounds_per_group``."""

    def __init__(
        self,
        database: Database,
        templates: list[QueryTemplate],
        n_groups: int = 4,
        rounds_per_group: int = 20,
        seed: int = 13,
    ) -> None:
        super().__init__(database, templates, seed)
        if n_groups <= 0 or rounds_per_group <= 0:
            raise ValueError("n_groups and rounds_per_group must be positive")
        self.n_groups = min(n_groups, len(self.templates))
        self.rounds_per_group = rounds_per_group
        order = list(range(len(self.templates)))
        self.rng.shuffle(order)
        self.groups: list[list[QueryTemplate]] = [[] for _ in range(self.n_groups)]
        for position, template_index in enumerate(order):
            self.groups[position % self.n_groups].append(self.templates[template_index])

    @property
    def total_rounds(self) -> int:
        return self.n_groups * self.rounds_per_group

    def rounds(self) -> Iterator[WorkloadRound]:
        round_number = 0
        for group_number, group in enumerate(self.groups):
            group_first_round: list[Query] | None = None
            for position in range(self.rounds_per_group):
                round_number += 1
                queries = self._instantiate(group)
                if group_first_round is None:
                    group_first_round = queries
                # PDTool is invoked on the round after each shift (rounds
                # 2, 22, 42, 62 with the paper's parameters), trained on the
                # new group's queries.
                invoke = position == 1
                yield WorkloadRound(
                    round_number=round_number,
                    queries=queries,
                    invoke_pdtool=invoke,
                    pdtool_training_queries=list(group_first_round) if invoke else [],
                    is_shift_round=(position == 0 and group_number > 0),
                )


class RandomWorkload(WorkloadSequence):
    """Ad-hoc workload: random template subsets with a controlled repeat rate."""

    def __init__(
        self,
        database: Database,
        templates: list[QueryTemplate],
        n_rounds: int = 25,
        queries_per_round: int | None = None,
        repeat_rate: float = 0.5,
        pdtool_every: int = 4,
        seed: int = 13,
    ) -> None:
        super().__init__(database, templates, seed)
        if n_rounds <= 0:
            raise ValueError("n_rounds must be positive")
        if not 0.0 <= repeat_rate <= 1.0:
            raise ValueError("repeat_rate must be within [0, 1]")
        self.n_rounds = n_rounds
        # Keep the total query volume similar to the static setting, as the
        # paper does ("the number of total training queries ... is similar to
        # the number of queries we had in the static setting").
        self.queries_per_round = queries_per_round or len(self.templates)
        self.repeat_rate = repeat_rate
        self.pdtool_every = max(1, pdtool_every)

    def _draw_templates(self, previous: list[QueryTemplate]) -> list[QueryTemplate]:
        chosen: list[QueryTemplate] = []
        n_repeat = int(round(self.repeat_rate * self.queries_per_round)) if previous else 0
        n_repeat = min(n_repeat, len(previous))
        if n_repeat:
            repeat_positions = self.rng.choice(len(previous), size=n_repeat, replace=False)
            chosen.extend(previous[int(i)] for i in repeat_positions)
        # Fill the remainder preferring templates *not* seen in the previous
        # round, so the achieved round-to-round repeat rate tracks the target
        # (the paper reports 45-54 %).
        previous_ids = {template.template_id for template in previous}
        fresh_pool = [t for t in self.templates if t.template_id not in previous_ids]
        pool = fresh_pool if fresh_pool else self.templates
        while len(chosen) < self.queries_per_round:
            chosen.append(pool[int(self.rng.integers(0, len(pool)))])
        self.rng.shuffle(chosen)
        return chosen

    def rounds(self) -> Iterator[WorkloadRound]:
        previous_templates: list[QueryTemplate] = []
        history: list[Query] = []
        for round_number in range(1, self.n_rounds + 1):
            round_templates = self._draw_templates(previous_templates)
            queries = self._instantiate(round_templates)
            # The paper invokes PDTool every 4 rounds (rounds 5, 9, 13, ...),
            # trained on the queries seen since the previous invocation.
            invoke = round_number > 1 and (round_number - 1) % self.pdtool_every == 0
            training = list(history[-self.pdtool_every * self.queries_per_round:]) if invoke else []
            yield WorkloadRound(
                round_number=round_number,
                queries=queries,
                invoke_pdtool=invoke,
                pdtool_training_queries=training,
            )
            history.extend(queries)
            previous_templates = round_templates


def round_to_round_repeat_rate(rounds: list[WorkloadRound]) -> float:
    """Average fraction of a round's templates already present in the previous round."""
    if len(rounds) < 2:
        return 0.0
    rates = []
    for previous, current in zip(rounds, rounds[1:]):
        if not current.queries:
            continue
        repeated = sum(
            1 for query in current.queries if query.template_id in previous.template_ids
        )
        rates.append(repeated / len(current.queries))
    return float(np.mean(rates)) if rates else 0.0
