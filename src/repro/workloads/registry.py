"""Benchmark registry: look benchmarks up by name."""

from __future__ import annotations

from typing import Callable

from .base import Benchmark
from .imdb import build_benchmark as _build_imdb
from .ssb import build_benchmark as _build_ssb
from .tpch import build_benchmark as _build_tpch
from .tpch_skew import build_skewed_benchmark as _build_tpch_skew
from .tpcds import build_benchmark as _build_tpcds

_BUILDERS: dict[str, Callable[[], Benchmark]] = {
    "tpch": _build_tpch,
    "tpch_skew": _build_tpch_skew,
    "ssb": _build_ssb,
    "tpcds": _build_tpcds,
    "imdb": _build_imdb,
}

#: The order in which the paper presents its five benchmarks.
BENCHMARK_NAMES = ["ssb", "tpch", "tpch_skew", "tpcds", "imdb"]


def available_benchmarks() -> list[str]:
    """Names accepted by :func:`get_benchmark`."""
    return sorted(_BUILDERS)


def get_benchmark(name: str) -> Benchmark:
    """Build the named benchmark, raising ``KeyError`` with guidance if unknown."""
    lowered = name.strip().lower()
    for key in (lowered, lowered.replace("-", "_"), lowered.replace("-", "")):
        if key in _BUILDERS:
            return _BUILDERS[key]()
    raise KeyError(
        f"unknown benchmark {name!r}; available: {', '.join(available_benchmarks())}"
    )
