"""Benchmark and stressor registries: look workloads up by name."""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, TypeVar

if TYPE_CHECKING:
    from .stress import StressWorkload

from .base import Benchmark
from .imdb import build_benchmark as _build_imdb
from .ssb import build_benchmark as _build_ssb
from .tpch import build_benchmark as _build_tpch
from .tpch_skew import build_skewed_benchmark as _build_tpch_skew
from .tpcds import build_benchmark as _build_tpcds

_BUILDERS: dict[str, Callable[[], Benchmark]] = {
    "tpch": _build_tpch,
    "tpch_skew": _build_tpch_skew,
    "ssb": _build_ssb,
    "tpcds": _build_tpcds,
    "imdb": _build_imdb,
}

#: The order in which the paper presents its five benchmarks.
BENCHMARK_NAMES = ["ssb", "tpch", "tpch_skew", "tpcds", "imdb"]


def available_benchmarks() -> list[str]:
    """Names accepted by :func:`get_benchmark`."""
    return sorted(_BUILDERS)


def get_benchmark(name: str) -> Benchmark:
    """Build the named benchmark, raising ``KeyError`` with guidance if unknown."""
    lowered = name.strip().lower()
    for key in (lowered, lowered.replace("-", "_"), lowered.replace("-", "")):
        if key in _BUILDERS:
            return _BUILDERS[key]()
    raise KeyError(
        f"unknown benchmark {name!r}; available: {', '.join(available_benchmarks())}"
    )


# --------------------------------------------------------------------- #
# adversarial stressor registry (see repro.workloads.stress)
# --------------------------------------------------------------------- #
_STRESSORS: dict[str, type["StressWorkload"]] = {}

_S = TypeVar("_S", bound="type[StressWorkload]")


class UnknownStressorError(KeyError, ValueError):
    """Raised when a stressor name is not registered; lists valid names."""


def register_stressor(name: str) -> Callable[[_S], _S]:
    """Class decorator registering an adversarial workload under ``name``."""

    def decorator(cls: _S) -> _S:
        if name in _STRESSORS and _STRESSORS[name] is not cls:
            raise ValueError(f"stressor name {name!r} already registered")
        _STRESSORS[name] = cls
        return cls

    return decorator


def _load_stressors() -> None:
    # The stress module registers its classes on import; imported lazily so
    # the registry stays import-cycle-free (stress.py imports this module).
    from . import stress  # noqa: F401


def available_stressors() -> list[str]:
    """Names accepted by :func:`get_stressor`."""
    _load_stressors()
    return sorted(_STRESSORS)


def get_stressor(name: str) -> type["StressWorkload"]:
    """Look up a registered stressor class by name.

    Raises :class:`UnknownStressorError` (a ``KeyError`` *and* ``ValueError``)
    naming the registered stressors when the name is unknown.
    """
    _load_stressors()
    lowered = name.strip().lower()
    for key in (lowered, lowered.replace("-", "_"), lowered.replace(" ", "_")):
        if key in _STRESSORS:
            return _STRESSORS[key]
    raise UnknownStressorError(
        f"unknown stressor {name!r}; registered stressors: "
        f"{', '.join(sorted(_STRESSORS))}"
    )
