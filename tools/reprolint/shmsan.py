"""shmsan — an opt-in runtime sanitizer for the shared-memory scoring core.

The static rules (RL006–RL009) prove lifecycle discipline over the *code*;
this module checks the same invariants over an actual *run*.  With
``REPRO_SHM_SAN=1`` in the environment, :func:`install` replaces
:class:`multiprocessing.shared_memory.SharedMemory` with a recording
subclass and registers an observer with :mod:`repro.core.scoring`:

* every segment create / attach / ``close()`` / ``unlink()`` lands in a
  per-process :class:`ShmLedger` (fork-started workers get a fresh ledger —
  the ledger is keyed by pid, so an inherited parent ledger is discarded on
  first use in the child);
* the scoring pass reports each worker's assigned row ranges via
  ``record_writer_ranges``; any overlap between two workers' ranges for the
  same segment is a violation the moment it is recorded;
* at pool shutdown (and on explicit :func:`verify`) the ledger must
  balance: every created segment closed and unlinked, every attach closed,
  no attach-side ``unlink()``, no overlapping writer ranges.  Imbalance
  raises :class:`ShmSanError`.

The sanitizer is a debugging/CI tool, not a production feature: nothing in
``src/repro`` imports it eagerly, and with the environment variable unset
:func:`install` is a no-op.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from multiprocessing import shared_memory
from typing import Any, Sequence

__all__ = [
    "ENV_VAR",
    "SegmentRecord",
    "ShmLedger",
    "ShmSanError",
    "install",
    "installed",
    "ledger",
    "reset",
    "uninstall",
    "verify",
]

#: Environment switch: ``REPRO_SHM_SAN=1`` arms the sanitizer.
ENV_VAR = "REPRO_SHM_SAN"

#: The genuine class, captured at import time (before any patching).
_ORIGINAL_SHARED_MEMORY = shared_memory.SharedMemory


class ShmSanError(AssertionError):
    """A lifecycle or disjointness invariant was violated at runtime."""


@dataclass
class SegmentRecord:
    """What one process did to one shared-memory segment."""

    name: str
    created: bool
    size: int
    closes: int = 0
    unlinked: bool = False


@dataclass
class ShmLedger:
    """Per-process record of every sanitized segment operation."""

    pid: int
    records: dict[str, SegmentRecord] = field(default_factory=dict)
    writer_ranges: dict[str, list[tuple[int, int]]] = field(default_factory=dict)
    violations: list[str] = field(default_factory=list)
    creates_seen: int = 0
    attaches_seen: int = 0

    # ------------------------- recording hooks ------------------------- #
    def record_open(self, name: str, created: bool, size: int) -> None:
        if created:
            self.creates_seen += 1
            previous = self.records.get(name)
            if previous is not None and previous.created and not previous.unlinked:
                self.violations.append(
                    f"segment {name!r} created twice without an unlink in between"
                )
        else:
            self.attaches_seen += 1
        self.records[name] = SegmentRecord(name=name, created=created, size=size)

    def record_close(self, name: str) -> None:
        record = self.records.get(name)
        if record is not None:
            record.closes += 1

    def record_unlink(self, name: str) -> None:
        record = self.records.get(name)
        if record is None:
            return
        if not record.created:
            self.violations.append(
                f"attach-side unlink of segment {name!r}: only the creating "
                "process may unlink"
            )
        elif record.unlinked:
            self.violations.append(f"segment {name!r} unlinked twice")
        record.unlinked = True

    def note_writer_ranges(
        self, segment_name: str, runs: Sequence[tuple[tuple[int, int], ...]]
    ) -> None:
        """Record one scoring pass's per-worker row ranges; flag overlaps."""
        flat = sorted(
            (int(start), int(stop)) for run in runs for start, stop in run
        )
        for (a_start, a_stop), (b_start, b_stop) in zip(flat, flat[1:]):
            if b_start < a_stop:
                self.violations.append(
                    f"overlapping writer row ranges on segment "
                    f"{segment_name!r}: [{a_start}, {a_stop}) and "
                    f"[{b_start}, {b_stop})"
                )
        self.writer_ranges.setdefault(segment_name, []).extend(flat)

    # --------------------------- verification -------------------------- #
    def leaks(self) -> list[str]:
        problems: list[str] = []
        for record in self.records.values():
            if record.closes == 0:
                problems.append(f"segment {record.name!r} was never closed")
            if record.created and not record.unlinked:
                problems.append(
                    f"created segment {record.name!r} was never unlinked "
                    "(leaked into /dev/shm)"
                )
        return problems

    def check(self) -> None:
        problems = [*self.violations, *self.leaks()]
        if problems:
            raise ShmSanError(
                f"shmsan (pid {self.pid}): "
                + "; ".join(problems)
            )


_STATE: dict[str, Any] = {"installed": False, "ledger": None}


def ledger() -> ShmLedger:
    """The current process's ledger (fresh after a fork: keyed by pid)."""
    current = _STATE["ledger"]
    if current is None or current.pid != os.getpid():
        current = ShmLedger(pid=os.getpid())
        _STATE["ledger"] = current
    return current


class _SanitizedSharedMemory(_ORIGINAL_SHARED_MEMORY):
    """Drop-in :class:`SharedMemory` that records every lifecycle event."""

    def __init__(
        self,
        name: str | None = None,
        create: bool = False,
        size: int = 0,
        **kwargs: Any,
    ) -> None:
        super().__init__(name=name, create=create, size=size, **kwargs)
        ledger().record_open(self.name, bool(create), self.size)

    def close(self) -> None:
        ledger().record_close(self.name)
        super().close()

    def unlink(self) -> None:
        ledger().record_unlink(self.name)
        super().unlink()


class _ScoringObserverAdapter:
    """The :mod:`repro.core.scoring` observer protocol, backed by the ledger."""

    def record_writer_ranges(
        self, segment_name: str, runs: Sequence[tuple[tuple[int, int], ...]]
    ) -> None:
        ledger().note_writer_ranges(segment_name, runs)

    def pool_shutdown(self) -> None:
        ledger().check()


_OBSERVER = _ScoringObserverAdapter()


def installed() -> bool:
    return bool(_STATE["installed"])


def install(*, force: bool = False) -> bool:
    """Arm the sanitizer; returns whether it is armed.

    Without ``force``, requires ``REPRO_SHM_SAN=1`` in the environment (so
    an accidental import can never slow production down).  Safe to call
    repeatedly.  Must run *before* the scoring pool forks its workers, or
    the children keep the unpatched class; :mod:`repro.core.scoring` calls
    this (env-gated) right before creating its first executor.
    """
    if not force and os.environ.get(ENV_VAR) != "1":
        return False
    if not _STATE["installed"]:
        shared_memory.SharedMemory = _SanitizedSharedMemory  # type: ignore[misc]
        _STATE["installed"] = True
    _set_scoring_observer(_OBSERVER)
    return True


def uninstall() -> None:
    """Disarm: restore the genuine class and detach the scoring observer."""
    if _STATE["installed"]:
        shared_memory.SharedMemory = _ORIGINAL_SHARED_MEMORY  # type: ignore[misc]
        _STATE["installed"] = False
    _set_scoring_observer(None)


def reset() -> None:
    """Drop the current process's ledger (start a fresh accounting window)."""
    _STATE["ledger"] = None


def verify(*, require_activity: bool = False) -> ShmLedger:
    """Assert the ledger balances; returns it for inspection.

    ``require_activity=True`` additionally fails when the sanitizer saw no
    segment creation at all — the CI smoke uses it to prove the sanitizer
    was actually armed, not silently skipped.
    """
    current = ledger()
    if require_activity and current.creates_seen == 0:
        raise ShmSanError(
            "shmsan: no shared-memory activity was recorded; the sanitizer "
            "was not armed before the scoring pass ran"
        )
    current.check()
    return current


def _set_scoring_observer(observer: Any) -> None:
    try:
        from repro.core import scoring
    except ImportError:  # pragma: no cover - reprolint used standalone
        return
    scoring._install_scoring_observer(observer)
