"""``reprolint`` — repo-native static analysis for the reproduction's invariants.

The runtime test suite pins the paper's parity claims (reset determinism,
sharded == monolithic scoring, uniform placement == seed, parallel == serial)
by *sampling* a handful of configurations.  ``reprolint`` enforces the same
invariants *mechanically, on every file, at lint time*: an unseeded RNG, a
mutable spec crossing a worker boundary, a name-based tuner dispatch or a
shard-scoring path that writes to the live bandit are all flagged before any
benchmark runs.

Rule families (see ``docs/STATIC_ANALYSIS.md`` for the catalog):

========  ==================================================================
RL000     suppression hygiene (reasons required, no stale suppressions)
RL001     determinism: no unseeded/global RNG streams, no wall-clock reads
          outside the documented harness-instrumentation allowlist
RL002     frozen-spec picklability: spec dataclasses crossing
          ``run_competition`` worker boundaries stay frozen and hold no
          lambdas/closures/handles
RL003     registry discipline: no if/elif dispatch on registered
          tuner/backend name strings outside the registries
RL004     shard-scorer race safety: nothing reachable from the sharded
          scoring entry points assigns to the live bandit's mutable state
RL005     public-surface hygiene: examples import the documented surface,
          deprecated import paths are flagged, ``repro.api`` ``__all__``
          stays in sync with the definitions
RL006     shared-memory lifecycle: created segments reach ``close()`` +
          ``unlink()`` on every path (raise paths included), attach-side
          code closes but never unlinks, names follow the counter scheme
RL007     fork safety: pool workers are module-level, mutate no module
          globals, reach no clock/ambient-RNG reads, and no threading
          primitive is constructed before the pool in the same module
RL008     disjoint writes: workers store into shared buffers only via
          ``buf[start:stop]`` slices bound by the passed block ranges
RL009     exception-safe release: executor pools and file handles are
          shut down / closed on every path out of the function
========  ==================================================================

RL006 and RL009 run on an intraprocedural CFG/dataflow engine
(:mod:`tools.reprolint.flow`); :mod:`tools.reprolint.shmsan` checks the
same shared-memory invariants at runtime when ``REPRO_SHM_SAN=1``.

Suppress a single finding inline with a *reasoned* comment::

    value = time.perf_counter()  # reprolint: disable=RL001 -- paper-reported wall time

A suppression without a reason, or one that suppresses nothing, is itself a
finding (RL000).  Run the analyzer with::

    python -m tools.reprolint src tests examples

Built on :mod:`ast` only — no runtime dependencies beyond the stdlib.
"""

from .engine import Report, run_reprolint
from .model import Finding, Suppression

__all__ = ["Finding", "Report", "Suppression", "run_reprolint"]
