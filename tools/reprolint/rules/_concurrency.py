"""Shared fork-pool detection helpers for RL007/RL008.

Both rules need the same two facts about a function: which of its local
names hold a process/thread pool, and which calls hand a function to such a
pool.  Receiver typing is deliberately narrow — a constructor call, a
``with ... as`` binding, or a helper whose return annotation names a pool
class — because resolving ``x.submit`` through the project-wide
unique-method-name fallback would happily link an unrelated ``submit``
method (the fleet has one).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterator

from ..flow import POOL_CONSTRUCTORS
from ..project import FunctionInfo, ProjectIndex, dotted_call_name

#: Class names a pool-typed local may be annotated/inferred as.
POOL_CLASS_NAMES = frozenset({"ProcessPoolExecutor", "ThreadPoolExecutor"})

#: Pool methods that accept a callable to run in a worker (first argument).
SUBMIT_METHODS = frozenset(
    {"submit", "apply", "apply_async", "map", "map_async", "imap", "imap_unordered"}
)

#: Top-level dirs the concurrency rules police (same scope as RL001).
CHECKED_TOP_DIRS = ("src", "examples")


def iter_own_nodes(node: ast.FunctionDef | ast.AsyncFunctionDef) -> Iterator[ast.AST]:
    """Every AST node of a function's own body, skipping nested definitions
    (their bodies belong to their own :class:`FunctionInfo`) and lambda
    bodies (deferred execution)."""
    stack: list[ast.AST] = list(node.body)
    while stack:
        current = stack.pop()
        yield current
        if isinstance(current, ast.Lambda):
            continue
        for child in ast.iter_child_nodes(current):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue
            stack.append(child)


def module_aliases(function: FunctionInfo, index: ProjectIndex) -> dict[str, str]:
    module = index.modules.get(function.module)
    return module.import_aliases if module is not None else {}


def is_pool_constructor(
    call: ast.Call,
    function: FunctionInfo,
    index: ProjectIndex,
    aliases: dict[str, str],
) -> bool:
    dotted = dotted_call_name(call.func, aliases)
    if dotted in POOL_CONSTRUCTORS:
        return True
    target = index.resolve_call(function, call.func)
    return isinstance(target, FunctionInfo) and target.return_class in POOL_CLASS_NAMES


def pool_variables(
    function: FunctionInfo, index: ProjectIndex, aliases: dict[str, str]
) -> set[str]:
    """Local names of ``function`` that hold a process/thread pool."""
    pools = {
        name
        for name, cls in index._effective_local_types(function).items()
        if cls in POOL_CLASS_NAMES
    }
    for node in iter_own_nodes(function.node):
        if isinstance(node, ast.Assign):
            if (
                len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and isinstance(node.value, ast.Call)
                and is_pool_constructor(node.value, function, index, aliases)
            ):
                pools.add(node.targets[0].id)
        elif isinstance(node, ast.With):
            for item in node.items:
                if (
                    isinstance(item.optional_vars, ast.Name)
                    and isinstance(item.context_expr, ast.Call)
                    and is_pool_constructor(item.context_expr, function, index, aliases)
                ):
                    pools.add(item.optional_vars.id)
    return pools


@dataclass(frozen=True)
class SubmitSite:
    """One ``pool.submit(callable, ...)`` call inside ``function``."""

    function: FunctionInfo
    call: ast.Call
    #: The submitted callable expression (``None`` for an argless submit).
    target_expr: ast.expr | None


def submit_sites(
    function: FunctionInfo, index: ProjectIndex, aliases: dict[str, str]
) -> list[SubmitSite]:
    pools = pool_variables(function, index, aliases)
    if not pools:
        return []
    sites = []
    for node in iter_own_nodes(function.node):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in SUBMIT_METHODS
            and isinstance(func.value, ast.Name)
            and func.value.id in pools
        ):
            target = node.args[0] if node.args else None
            sites.append(SubmitSite(function=function, call=node, target_expr=target))
    return sites


def resolve_submitted(
    site: SubmitSite, index: ProjectIndex
) -> FunctionInfo | None:
    """The project function a submit site hands to the pool, if resolvable."""
    expr = site.target_expr
    if expr is None or isinstance(expr, ast.Lambda):
        return None
    target = index.resolve_call(site.function, expr)
    return target if isinstance(target, FunctionInfo) else None
