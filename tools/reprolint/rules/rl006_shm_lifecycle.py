"""RL006 — shared-memory segment lifecycle (the first flow-engine rule).

The scoring core publishes packed arrays as ``multiprocessing.shared_memory``
segments; a leaked segment is ``/dev/shm`` residue that outlives the process
and (at fleet scale) exhausts the host.  Three invariants, checked with the
CFG/dataflow engine in :mod:`tools.reprolint.flow`:

* a segment created with ``create=True`` must reach **both** ``close()`` and
  ``unlink()`` on every path out of the creating function — including the
  exceptional ones, which in practice means a ``finally`` block (or handing
  the live handle to a caller/container that owns the cleanup);
* an **attached** segment (``create=False``) must ``close()`` but never
  ``unlink()`` — the creator owns the segment's lifetime, and an attach-side
  unlink deletes it under every sibling worker;
* segment **names** must come from the counter-based
  ``reproscore_<pid>_<n>`` scheme: explicit, and derived from neither the
  wall clock nor an RNG (both can collide across processes and both break
  the determinism story), nor a fixed literal (collides with ourselves).
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterable, Iterator

from . import Rule, RuleContext, register_rule
from ..flow import (
    SHM_ATTACH,
    SHM_CREATE,
    FunctionSummary,
    ResourceLeak,
    _classify_external,
    analyse_resources,
)
from .rl001_determinism import WALL_CLOCK_CALLS

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..model import Finding, SourceFile

CHECKED_TOP_DIRS = ("src", "examples")

#: Call-name prefixes that make a segment name clock/RNG-derived.
_NONDETERMINISTIC_NAME_SOURCES = ("random.", "numpy.random.", "uuid.", "secrets.")


def _leak_paths(leak: ResourceLeak) -> str:
    paths = []
    if leak.on_raise_exit:
        paths.append("an exceptional path")
    if leak.on_normal_exit:
        paths.append("a normal path")
    return " and ".join(paths)


@register_rule
class ShmLifecycleRule(Rule):
    id = "RL006"
    title = "shared-memory lifecycle: close()+unlink() on all paths, counter-based names"

    # ------------------------- flow analysis --------------------------- #
    def check_project(self, context: RuleContext) -> Iterable["Finding"]:
        if context.index is None:
            return []
        return list(self._walk(context))

    def _walk(self, context: RuleContext) -> Iterator["Finding"]:
        from ..model import Finding

        index = context.index
        assert index is not None
        summaries: dict[str, FunctionSummary] = {}
        for function in index.iter_functions():
            if function.relative_path.split("/", 1)[0] not in CHECKED_TOP_DIRS:
                continue
            analysis = analyse_resources(function, index, summaries)
            for leak in analysis.leaks:
                if leak.site.kind not in (SHM_CREATE, SHM_ATTACH):
                    continue
                if leak.site.kind == SHM_CREATE:
                    needed = "close()+unlink()"
                else:
                    needed = "close()"
                yield Finding(
                    rule=self.id,
                    path=function.relative_path,
                    line=leak.site.line,
                    col=leak.site.col,
                    message=(
                        f"shared-memory segment {leak.site.var!r} "
                        f"({'created' if leak.site.kind == SHM_CREATE else 'attached'} "
                        f"here) can leave the function on {_leak_paths(leak)} "
                        f"without {needed}; release it in a finally block"
                    ),
                    symbol=function.qualname,
                )
            for site, line, col in analysis.attach_unlinks:
                yield Finding(
                    rule=self.id,
                    path=function.relative_path,
                    line=line,
                    col=col,
                    message=(
                        f"attach-side segment {site.var!r} must never unlink(); "
                        "the creating process owns the segment's lifetime"
                    ),
                    symbol=function.qualname,
                )

    # ------------------------- name scheme ----------------------------- #
    def check_file(
        self, source_file: "SourceFile", context: RuleContext
    ) -> Iterable["Finding"]:
        if source_file.top_level_dir not in CHECKED_TOP_DIRS:
            return []
        aliases: dict[str, str] = {}
        if context.index is not None:
            from ..project import module_dotted_name

            module = context.index.modules.get(
                module_dotted_name(source_file.relative_path)
            )
            if module is not None:
                aliases = module.import_aliases
        return list(self._scan_names(source_file, aliases))

    def _scan_names(
        self, source_file: "SourceFile", aliases: dict[str, str]
    ) -> Iterator["Finding"]:
        from ..model import Finding

        assignments: dict[str, list[ast.expr]] = {}
        for node in ast.walk(source_file.tree):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name):
                    assignments.setdefault(target.id, []).append(node.value)

        for node in ast.walk(source_file.tree):
            if not isinstance(node, ast.Call):
                continue
            if _classify_external(node, aliases) != SHM_CREATE:
                continue
            name_expr: ast.expr | None = node.args[0] if node.args else None
            for keyword in node.keywords:
                if keyword.arg == "name":
                    name_expr = keyword.value
            if name_expr is None:
                yield Finding(
                    rule=self.id,
                    path=source_file.relative_path,
                    line=node.lineno,
                    col=node.col_offset,
                    message=(
                        "SharedMemory(create=True) without an explicit name= "
                        "relies on a stdlib-random segment name; use the "
                        "counter-based '<prefix>_<pid>_<n>' scheme"
                    ),
                )
                continue
            # One level of local resolution: name=some_var with exactly one
            # assignment in the file.
            if isinstance(name_expr, ast.Name):
                candidates = assignments.get(name_expr.id, [])
                if len(candidates) == 1:
                    name_expr = candidates[0]
            message = self._name_violation(name_expr, aliases)
            if message is not None:
                yield Finding(
                    rule=self.id,
                    path=source_file.relative_path,
                    line=node.lineno,
                    col=node.col_offset,
                    message=message,
                )

    @staticmethod
    def _name_violation(name_expr: ast.expr, aliases: dict[str, str]) -> str | None:
        from ..project import dotted_call_name

        if isinstance(name_expr, ast.Constant) and isinstance(name_expr.value, str):
            return (
                "fixed-literal segment name collides with other processes "
                "(and with this process's earlier passes); use the "
                "counter-based '<prefix>_<pid>_<n>' scheme"
            )
        for node in ast.walk(name_expr):
            if not isinstance(node, ast.Call):
                continue
            dotted = dotted_call_name(node.func, aliases)
            if dotted is None:
                continue
            if dotted in WALL_CLOCK_CALLS or dotted.startswith(
                _NONDETERMINISTIC_NAME_SOURCES
            ):
                return (
                    f"segment name derived from {dotted} (wall clock/RNG) can "
                    "collide across processes and breaks replayability; use "
                    "the counter-based '<prefix>_<pid>_<n>' scheme"
                )
        return None
