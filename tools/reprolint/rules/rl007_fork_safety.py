"""RL007 — fork-safety of functions handed to a process pool.

A fork-pool worker runs a *copy* of the parent's memory: anything it writes
to module-global state is silently lost (or, under a future spawn context,
never existed), anything it reads from the wall clock or an ambient RNG
breaks the bit-identical parity contracts, and a non-module-level callable
does not even pickle under spawn.  Locks created before the pool forks are
duplicated in a possibly-held state — the classic fork deadlock.

Four checks:

* the callable handed to ``pool.submit(...)`` (and friends) must be a
  module-level function — no lambdas, closures or bound methods;
* nothing reachable from it (RL004's call graph) may *mutate* module-global
  state: ``global`` rebinding, subscript/attribute stores on module-level
  names, or mutating method calls on them;
* nothing reachable from it may read the wall clock (outside the RL001
  allowlist) or an ambient RNG stream (seeded constructors are fine —
  they're explicit, not ambient);
* no ``threading.Thread``/``Lock``/... may be constructed earlier in a
  module that also constructs a process pool.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterable, Iterator

from . import Rule, RuleContext, register_rule
from ..project import FunctionInfo, ProjectIndex, dotted_call_name, module_dotted_name
from ._concurrency import (
    CHECKED_TOP_DIRS,
    iter_own_nodes,
    module_aliases,
    resolve_submitted,
    submit_sites,
)
from ..flow import POOL_CONSTRUCTORS
from .rl001_determinism import (
    NUMPY_SEEDABLE_CONSTRUCTORS,
    WALL_CLOCK_ALLOWLIST,
    WALL_CLOCK_CALLS,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..model import Finding, SourceFile

#: ``threading`` constructors that must not precede a pool in a module.
_THREADING_CONSTRUCTORS = frozenset(
    {
        "Thread",
        "Lock",
        "RLock",
        "Condition",
        "Event",
        "Semaphore",
        "BoundedSemaphore",
        "Barrier",
        "Timer",
    }
)

#: Method calls that mutate their receiver in place.
_MUTATOR_METHODS = frozenset(
    {
        "append",
        "add",
        "extend",
        "insert",
        "update",
        "setdefault",
        "pop",
        "popitem",
        "remove",
        "discard",
        "clear",
    }
)


def _base_name(expr: ast.expr) -> str | None:
    """Innermost ``Name`` of an attribute/subscript chain."""
    while isinstance(expr, (ast.Attribute, ast.Subscript)):
        expr = expr.value
    return expr.id if isinstance(expr, ast.Name) else None


@register_rule
class ForkSafetyRule(Rule):
    id = "RL007"
    title = "fork-pool submitted functions: module-level, deterministic, no global mutation"

    # ---------------------- project-level walk ------------------------- #
    def check_project(self, context: RuleContext) -> Iterable["Finding"]:
        if context.index is None:
            return []
        return list(self._walk(context))

    def _walk(self, context: RuleContext) -> Iterator["Finding"]:
        from ..model import Finding

        index = context.index
        assert index is not None
        globals_by_module = {
            module_dotted_name(f.relative_path): _module_level_names(f.tree)
            for f in context.files
        }
        checked_workers: set[str] = set()
        for function in index.iter_functions():
            if function.relative_path.split("/", 1)[0] not in CHECKED_TOP_DIRS:
                continue
            aliases = module_aliases(function, index)
            for site in submit_sites(function, index, aliases):
                if isinstance(site.target_expr, ast.Lambda):
                    yield Finding(
                        rule=self.id,
                        path=function.relative_path,
                        line=site.target_expr.lineno,
                        col=site.target_expr.col_offset,
                        message=(
                            "lambda submitted to the fork pool; workers must "
                            "be module-level functions (picklable under any "
                            "start method)"
                        ),
                        symbol=function.qualname,
                    )
                    continue
                worker = resolve_submitted(site, index)
                if worker is None or worker.qualname in checked_workers:
                    continue
                checked_workers.add(worker.qualname)
                if worker.parent is not None or worker.class_name is not None:
                    yield Finding(
                        rule=self.id,
                        path=function.relative_path,
                        line=site.call.lineno,
                        col=site.call.col_offset,
                        message=(
                            f"{worker.qualname} submitted to the fork pool is "
                            "not a module-level function; closures/methods "
                            "capture parent state and do not pickle under "
                            "spawn"
                        ),
                        symbol=function.qualname,
                    )
                    continue
                yield from self._check_worker(worker, index, globals_by_module)

    def _check_worker(
        self,
        worker: FunctionInfo,
        index: ProjectIndex,
        globals_by_module: dict[str, set[str]],
    ) -> Iterator["Finding"]:
        for reached in index.reachable_functions(worker):
            module_globals = globals_by_module.get(reached.module, set())
            yield from self._scan_global_mutation(worker, reached, module_globals)
            yield from self._scan_clock_rng(worker, reached, index)

    def _scan_global_mutation(
        self, worker: FunctionInfo, function: FunctionInfo, module_globals: set[str]
    ) -> Iterator["Finding"]:
        from ..model import Finding

        declared_global: set[str] = set()
        for node in iter_own_nodes(function.node):
            if isinstance(node, ast.Global):
                declared_global.update(node.names)

        def finding(line: int, col: int, what: str) -> "Finding":
            return Finding(
                rule=self.id,
                path=function.relative_path,
                line=line,
                col=col,
                message=(
                    f"{function.qualname} (reachable from fork-pool worker "
                    f"{worker.qualname}) {what}; a forked worker's write to "
                    "module-global state is silently lost in the parent"
                ),
                symbol=worker.qualname,
            )

        for node in iter_own_nodes(function.node):
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                for target in targets:
                    if isinstance(target, ast.Name) and target.id in declared_global:
                        yield finding(
                            target.lineno,
                            target.col_offset,
                            f"rebinds module global {target.id!r}",
                        )
                    elif isinstance(target, (ast.Attribute, ast.Subscript)):
                        base = _base_name(target)
                        if base is not None and base in module_globals:
                            yield finding(
                                target.lineno,
                                target.col_offset,
                                f"stores into module-global {base!r}",
                            )
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in _MUTATOR_METHODS
                    and isinstance(func.value, ast.Name)
                    and func.value.id in module_globals
                ):
                    yield finding(
                        node.lineno,
                        node.col_offset,
                        f"mutates module-global {func.value.id!r} "
                        f"({func.value.id}.{func.attr}(...))",
                    )

    def _scan_clock_rng(
        self, worker: FunctionInfo, function: FunctionInfo, index: ProjectIndex
    ) -> Iterator["Finding"]:
        from ..model import Finding

        aliases = module_aliases(function, index)
        clock_exempt = function.relative_path in WALL_CLOCK_ALLOWLIST
        for node in iter_own_nodes(function.node):
            if not isinstance(node, ast.Call):
                continue
            dotted = dotted_call_name(node.func, aliases)
            if dotted is None:
                continue
            message: str | None = None
            if dotted in WALL_CLOCK_CALLS and not clock_exempt:
                message = f"reads the wall clock ({dotted})"
            elif dotted.startswith("random.") and dotted != "random.Random":
                message = f"reads the ambient random stream ({dotted})"
            elif dotted.startswith("numpy.random."):
                head = dotted[len("numpy.random.") :].split(".", 1)[0]
                if head not in NUMPY_SEEDABLE_CONSTRUCTORS:
                    message = f"reads the ambient numpy random stream ({dotted})"
            if message is not None:
                yield Finding(
                    rule=self.id,
                    path=function.relative_path,
                    line=node.lineno,
                    col=node.col_offset,
                    message=(
                        f"{function.qualname} (reachable from fork-pool worker "
                        f"{worker.qualname}) {message}; workers must be "
                        "deterministic so any scheduling yields identical bytes"
                    ),
                    symbol=worker.qualname,
                )

    # ---------------------- thread-before-pool ------------------------- #
    def check_file(
        self, source_file: "SourceFile", context: RuleContext
    ) -> Iterable["Finding"]:
        if source_file.top_level_dir not in CHECKED_TOP_DIRS:
            return []
        aliases: dict[str, str] = {}
        if context.index is not None:
            module = context.index.modules.get(
                module_dotted_name(source_file.relative_path)
            )
            if module is not None:
                aliases = module.import_aliases
        return list(self._scan_thread_before_pool(source_file, aliases))

    def _scan_thread_before_pool(
        self, source_file: "SourceFile", aliases: dict[str, str]
    ) -> Iterator["Finding"]:
        from ..model import Finding

        pool_lines = []
        threading_ctors = []
        for node in ast.walk(source_file.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = dotted_call_name(node.func, aliases)
            if dotted is None:
                continue
            if dotted in POOL_CONSTRUCTORS:
                pool_lines.append(node.lineno)
            elif (
                dotted.startswith("threading.")
                and dotted.split(".", 1)[1] in _THREADING_CONSTRUCTORS
            ):
                threading_ctors.append((node, dotted))
        if not pool_lines:
            return
        first_pool = min(pool_lines)
        for node, dotted in threading_ctors:
            if node.lineno < first_pool:
                yield Finding(
                    rule=self.id,
                    path=source_file.relative_path,
                    line=node.lineno,
                    col=node.col_offset,
                    message=(
                        f"{dotted} constructed before the process pool "
                        f"(line {first_pool}) in the same module; a lock held "
                        "at fork time is copied locked into every worker"
                    ),
                )


def _module_level_names(tree: ast.Module) -> set[str]:
    names: set[str] = set()
    for stmt in tree.body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                names.update(_flat_names(target))
        elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
            if isinstance(stmt.target, ast.Name):
                names.add(stmt.target.id)
    return names


def _flat_names(target: ast.expr) -> Iterator[str]:
    if isinstance(target, ast.Name):
        yield target.id
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _flat_names(element)
