"""RL001 — determinism: seeded RNG streams only, no wall-clock in core code.

The paper's protocol (and the repo's parity tests: reset determinism,
parallel == serial, shard == monolithic) only hold when every random stream
is explicitly seeded and no decision path reads the wall clock.  This rule
flags, in ``src/`` and ``examples/``:

* ``random.Random()`` / ``np.random.default_rng()`` / ``SeedSequence()``
  constructed **without a seed** — an OS-entropy stream;
* any call into the **module-level** ``random.*`` / legacy ``np.random.*``
  global state (``random.randint``, ``np.random.rand``, ``np.random.seed``,
  ...) — global streams are shared across components and break replay;
* wall-clock reads (``time.time``, ``time.perf_counter``,
  ``datetime.now``, ...) outside the documented harness-instrumentation
  allowlist below.

Wall-clock *fields* on :class:`repro.harness.metrics.RoundReport` are legal —
the session harness measures our own overhead — but core/optimizer/engine
layers must stay clock-free so the simulated timeline is the only timeline.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterable, Iterator

from . import Rule, RuleContext, register_rule

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..model import Finding, SourceFile

#: Files allowed to read the wall clock, with the documented reason.  Keep
#: this list exact: ``tests/test_reprolint.py`` asserts that emptying it
#: produces findings in precisely these files and nowhere else.
WALL_CLOCK_ALLOWLIST: dict[str, str] = {
    "src/repro/api/session.py": (
        "harness instrumentation: TuningSession populates the RoundReport "
        "wall_* fields (analysis/execution overhead of the harness itself); "
        "no tuning decision reads these values"
    ),
}

#: Fully-qualified wall-clock reads.
WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: ``numpy.random`` names that construct an *explicitly seedable* object.
#: Anything else under ``numpy.random`` is the legacy global stream.
NUMPY_SEEDABLE_CONSTRUCTORS = frozenset(
    {
        "default_rng",
        "Generator",
        "SeedSequence",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "MT19937",
        "SFC64",
    }
)

CHECKED_TOP_DIRS = ("src", "examples")


@register_rule
class DeterminismRule(Rule):
    id = "RL001"
    title = "unseeded/global RNG streams and wall-clock reads outside the allowlist"

    def check_file(
        self, source_file: "SourceFile", context: RuleContext
    ) -> Iterable["Finding"]:
        if source_file.top_level_dir not in CHECKED_TOP_DIRS:
            return []
        aliases: dict[str, str] = {}
        if context.index is not None:
            from ..project import module_dotted_name

            module = context.index.modules.get(
                module_dotted_name(source_file.relative_path)
            )
            if module is not None:
                aliases = module.import_aliases
        return list(self._scan(source_file, aliases))

    def _scan(
        self, source_file: "SourceFile", aliases: dict[str, str]
    ) -> Iterator["Finding"]:
        from ..model import Finding
        from ..project import dotted_call_name

        for node in ast.walk(source_file.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = dotted_call_name(node.func, aliases)
            if dotted is None:
                continue
            seeded = bool(node.args or node.keywords)

            message: str | None = None
            if dotted == "random.Random" or dotted == "random.SystemRandom":
                if dotted == "random.SystemRandom":
                    message = (
                        "random.SystemRandom() draws OS entropy and can never "
                        "be replayed; use a seeded random.Random(seed)"
                    )
                elif not seeded:
                    message = (
                        "unseeded random.Random() — pass an explicit seed so "
                        "runs are replayable"
                    )
            elif dotted.startswith("random."):
                message = (
                    f"call into the module-level random stream ({dotted}); "
                    "use a seeded random.Random instance threaded through "
                    "the component"
                )
            elif dotted.startswith("numpy.random."):
                tail = dotted[len("numpy.random.") :]
                head = tail.split(".", 1)[0]
                if head in NUMPY_SEEDABLE_CONSTRUCTORS:
                    if not seeded:
                        message = (
                            f"unseeded numpy.random.{head}() — pass an "
                            "explicit seed/bit generator so runs are replayable"
                        )
                else:
                    message = (
                        f"call into the legacy numpy global stream ({dotted}); "
                        "use numpy.random.default_rng(seed)"
                    )
            elif (
                dotted in WALL_CLOCK_CALLS
                and source_file.relative_path not in WALL_CLOCK_ALLOWLIST
            ):
                message = (
                    f"wall-clock read ({dotted}) outside the harness "
                    "instrumentation allowlist; the simulated timeline "
                    "must be the only timeline (see docs/STATIC_ANALYSIS.md)"
                )

            if message is not None:
                yield Finding(
                    rule=self.id,
                    path=source_file.relative_path,
                    line=node.lineno,
                    col=node.col_offset,
                    message=message,
                )
