"""RL002 — frozen-spec picklability.

The spec dataclasses (:class:`TunerSpec`, :class:`DatabaseSpec`,
:class:`BackendProfile`, :class:`TieredBackend`, :class:`SimulationOptions`,
:class:`ScoringConfig`, :class:`TenantSpec`, :class:`FleetConfig`) cross
process boundaries:
``run_competition`` pickles them into ``ProcessPoolExecutor`` workers and
fleet tenant rosters are declared spec-first, so frozen-ness is what makes a
spec safe to share between the parent and N workers without copy-on-write
surprises.

Checked in ``src/`` (definitions) and ``src/`` + ``examples/`` (call sites):

* every spec class must be declared ``@dataclass(frozen=True)``;
* spec fields must not default to a lambda (lambdas don't pickle; a
  ``field(default_factory=...)`` is fine — the factory stays on the class),
  and ``Callable``-typed fields are flagged because any closure stored there
  will fail at the worker boundary;
* constructing a spec with a ``lambda`` argument is flagged at the call site.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterable, Iterator

from . import Rule, RuleContext, register_rule

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..model import Finding, SourceFile

#: Dataclasses that cross ``run_competition`` worker boundaries.
SPEC_CLASSES = frozenset(
    {
        "TunerSpec",
        "DatabaseSpec",
        "BackendProfile",
        "TieredBackend",
        "SimulationOptions",
        "ScoringConfig",
        "TenantSpec",
        "FleetConfig",
    }
)

DEFINITION_TOP_DIRS = ("src",)
CALL_SITE_TOP_DIRS = ("src", "examples")


def _dataclass_decorator(node: ast.ClassDef) -> ast.expr | None:
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        name: str | None = None
        if isinstance(target, ast.Name):
            name = target.id
        elif isinstance(target, ast.Attribute):
            name = target.attr
        if name == "dataclass":
            return decorator
    return None


def _is_frozen(decorator: ast.expr) -> bool:
    if not isinstance(decorator, ast.Call):
        return False
    for keyword in decorator.keywords:
        if keyword.arg == "frozen":
            return (
                isinstance(keyword.value, ast.Constant)
                and keyword.value.value is True
            )
    return False


def _contains_lambda_default(value: ast.expr) -> ast.Lambda | None:
    """A lambda stored *on instances* (``default_factory`` lambdas are fine:
    the factory lives on the class; instances hold the produced value)."""
    factory_lambdas: set[int] = set()
    for node in ast.walk(value):
        if isinstance(node, ast.Call):
            for keyword in node.keywords:
                if keyword.arg == "default_factory" and isinstance(
                    keyword.value, ast.Lambda
                ):
                    factory_lambdas.add(id(keyword.value))
    for node in ast.walk(value):
        if isinstance(node, ast.Lambda) and id(node) not in factory_lambdas:
            return node
    return None


@register_rule
class PicklabilityRule(Rule):
    id = "RL002"
    title = "spec dataclasses must be frozen and free of lambdas/closures"

    def check_file(
        self, source_file: "SourceFile", context: RuleContext
    ) -> Iterable["Finding"]:
        findings: list["Finding"] = []
        if source_file.top_level_dir in DEFINITION_TOP_DIRS:
            findings.extend(self._check_definitions(source_file))
        if source_file.top_level_dir in CALL_SITE_TOP_DIRS:
            findings.extend(self._check_call_sites(source_file))
        return findings

    def _check_definitions(self, source_file: "SourceFile") -> Iterator["Finding"]:
        from ..model import Finding

        for node in ast.walk(source_file.tree):
            if not isinstance(node, ast.ClassDef) or node.name not in SPEC_CLASSES:
                continue
            decorator = _dataclass_decorator(node)
            if decorator is None:
                yield Finding(
                    rule=self.id,
                    path=source_file.relative_path,
                    line=node.lineno,
                    col=node.col_offset,
                    message=(
                        f"spec class {node.name} must be a "
                        "@dataclass(frozen=True) — it crosses "
                        "run_competition worker boundaries"
                    ),
                    symbol=node.name,
                )
            elif not _is_frozen(decorator):
                yield Finding(
                    rule=self.id,
                    path=source_file.relative_path,
                    line=node.lineno,
                    col=node.col_offset,
                    message=(
                        f"spec class {node.name} is not frozen; declare "
                        "@dataclass(frozen=True) so instances stay hashable, "
                        "immutable and safe to share across workers"
                    ),
                    symbol=node.name,
                )
            for statement in node.body:
                if not isinstance(statement, ast.AnnAssign) or not isinstance(
                    statement.target, ast.Name
                ):
                    continue
                field_name = statement.target.id
                annotation_text = ast.unparse(statement.annotation)
                if "Callable" in annotation_text:
                    yield Finding(
                        rule=self.id,
                        path=source_file.relative_path,
                        line=statement.lineno,
                        col=statement.col_offset,
                        message=(
                            f"Callable-typed field {node.name}.{field_name}: "
                            "lambdas/closures stored here do not pickle into "
                            "run_competition workers; use a module-level "
                            "function or drop the field from worker payloads"
                        ),
                        symbol=f"{node.name}.{field_name}",
                    )
                if statement.value is not None:
                    offending = _contains_lambda_default(statement.value)
                    if offending is not None:
                        yield Finding(
                            rule=self.id,
                            path=source_file.relative_path,
                            line=offending.lineno,
                            col=offending.col_offset,
                            message=(
                                f"lambda default on {node.name}.{field_name} is "
                                "stored on instances and does not pickle; use "
                                "field(default_factory=...) or a named function"
                            ),
                            symbol=f"{node.name}.{field_name}",
                        )

    def _check_call_sites(self, source_file: "SourceFile") -> Iterator["Finding"]:
        from ..model import Finding

        for node in ast.walk(source_file.tree):
            if not isinstance(node, ast.Call):
                continue
            callee = node.func
            name = (
                callee.id
                if isinstance(callee, ast.Name)
                else callee.attr
                if isinstance(callee, ast.Attribute)
                else None
            )
            if name not in SPEC_CLASSES:
                continue
            arguments = list(node.args) + [keyword.value for keyword in node.keywords]
            for argument in arguments:
                if isinstance(argument, ast.Lambda):
                    yield Finding(
                        rule=self.id,
                        path=source_file.relative_path,
                        line=argument.lineno,
                        col=argument.col_offset,
                        message=(
                            f"lambda passed into {name}(...): the spec will "
                            "fail to pickle into run_competition workers; use "
                            "a module-level function"
                        ),
                        symbol=name,
                    )
