"""The reprolint rule registry.

Rules register themselves by id, mirroring the runtime registries
(:func:`repro.api.register_tuner`, :func:`repro.engine.register_backend`):
each rule module decorates its class with :func:`register_rule` and the
import at the bottom of this file wires the built-ins in.  Adding a rule is
therefore: write ``rules/rl0xx_name.py`` with a decorated :class:`Rule`
subclass, import it below, document it in ``docs/STATIC_ANALYSIS.md``.

A rule implements either hook (or both):

* :meth:`Rule.check_file` — called once per scanned file;
* :meth:`Rule.check_project` — called once per run with the whole-project
  index (for cross-file analyses such as RL004's call-graph walk).

Rules yield :class:`~tools.reprolint.model.Finding` objects and never look at
suppressions — the engine filters findings against inline suppressions after
every rule ran.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Iterator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..model import Finding, SourceFile
    from ..project import ProjectIndex


@dataclass
class RuleContext:
    """Everything a rule may consult: the files, the index, the root."""

    files: list["SourceFile"] = field(default_factory=list)
    index: "ProjectIndex | None" = None

    def file_by_path(self, relative_path: str) -> "SourceFile | None":
        for source_file in self.files:
            if source_file.relative_path == relative_path:
                return source_file
        return None


class Rule:
    """Base class: a rule family with an id, a title and two hooks."""

    #: Rule family id (``RL001`` ... ); unique across the registry.
    id: str = "RL000"
    #: One-line description shown by ``--list-rules`` and in the JSON output.
    title: str = ""

    def check_file(
        self, source_file: "SourceFile", context: RuleContext
    ) -> Iterable["Finding"]:
        return ()

    def check_project(self, context: RuleContext) -> Iterable["Finding"]:
        return ()


_REGISTRY: dict[str, type[Rule]] = {}


def register_rule(cls: type[Rule]) -> type[Rule]:
    """Class decorator: register a rule under its ``id``."""
    if not cls.id or cls.id in _REGISTRY:
        raise ValueError(f"duplicate or empty rule id: {cls.id!r}")
    _REGISTRY[cls.id] = cls
    return cls


def registered_rule_ids() -> list[str]:
    """Every registered rule id (sorted), plus the engine's own RL000."""
    return sorted(set(_REGISTRY) | {"RL000"})


def registered_rules() -> Iterator[Rule]:
    """Fresh instances of every registered rule, in id order."""
    for rule_id in sorted(_REGISTRY):
        yield _REGISTRY[rule_id]()


def rule_titles() -> dict[str, str]:
    titles = {"RL000": "suppression hygiene (reason required, no stale suppressions)"}
    for rule_id, cls in sorted(_REGISTRY.items()):
        titles[rule_id] = cls.title
    return titles


# Built-in rule families register themselves on import, exactly like the
# runtime tuner/backend registries.
from . import rl001_determinism  # noqa: E402,F401
from . import rl002_picklability  # noqa: E402,F401
from . import rl003_registry_discipline  # noqa: E402,F401
from . import rl004_shard_safety  # noqa: E402,F401
from . import rl005_public_surface  # noqa: E402,F401
from . import rl006_shm_lifecycle  # noqa: E402,F401
from . import rl007_fork_safety  # noqa: E402,F401
from . import rl008_disjoint_writes  # noqa: E402,F401
from . import rl009_exception_safety  # noqa: E402,F401

__all__ = [
    "Rule",
    "RuleContext",
    "register_rule",
    "registered_rule_ids",
    "registered_rules",
    "rule_titles",
]
