"""RL003 — registry discipline: dispatch through the registries, not if/elif.

The repo has exactly two extension points — ``@register_tuner`` and
``@register_backend`` — and both exist so new strategies plug in without
editing call sites.  An ``if name == "mab": ... elif name == "pdtool": ...``
chain silently bypasses alias resolution, skips validation, and breaks the
moment someone registers a tuner the chain has never heard of.

This rule flags if/elif chains in ``src/`` and ``examples/`` where **two or
more branches** compare a value against registered tuner/backend name
strings.  The registry modules themselves are exempt: *something* has to map
a string to a factory, and that something is the registry.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterable, Iterator

from . import Rule, RuleContext, register_rule

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..model import Finding, SourceFile

#: Canonical names and aliases of registered tuners (normalised: lowercase,
#: ``-`` -> ``_``), mirroring the ``@register_tuner`` calls in the codebase.
TUNER_NAMES = frozenset({"mab", "noindex", "pdtool", "ddqn", "ddqn_sc"})
#: Canonical names and aliases of registered storage backends, mirroring the
#: ``@register_backend`` calls in ``repro.engine.backend``.
BACKEND_NAMES = frozenset(
    {
        "hdd",
        "disk",
        "ssd",
        "nvme",
        "flash",
        "inmemory",
        "in_memory",
        "ram",
        "cloud",
        "s3",
        "object_store",
    }
)
REGISTERED_NAMES = TUNER_NAMES | BACKEND_NAMES

#: Modules whose whole purpose is the string -> factory mapping.
REGISTRY_MODULES = frozenset(
    {
        "src/repro/api/registry.py",
        "src/repro/engine/backend.py",
    }
)

CHECKED_TOP_DIRS = ("src", "examples")


def _literal_names(test: ast.expr) -> list[str]:
    """Registered-name string literals compared in one branch test."""
    names: list[str] = []
    comparisons: list[ast.Compare] = []
    if isinstance(test, ast.Compare):
        comparisons.append(test)
    elif isinstance(test, ast.BoolOp):
        comparisons.extend(v for v in test.values if isinstance(v, ast.Compare))
    for comparison in comparisons:
        if not all(isinstance(op, (ast.Eq, ast.In)) for op in comparison.ops):
            continue
        for side in [comparison.left, *comparison.comparators]:
            literals: list[ast.expr] = [side]
            if isinstance(side, (ast.Tuple, ast.List, ast.Set)):
                literals = list(side.elts)
            for literal in literals:
                if isinstance(literal, ast.Constant) and isinstance(literal.value, str):
                    normalised = literal.value.strip().lower().replace("-", "_")
                    if normalised in REGISTERED_NAMES:
                        names.append(normalised)
    return names


@register_rule
class RegistryDisciplineRule(Rule):
    id = "RL003"
    title = "no if/elif dispatch on registered tuner/backend names outside the registries"

    def check_file(
        self, source_file: "SourceFile", context: RuleContext
    ) -> Iterable["Finding"]:
        if source_file.top_level_dir not in CHECKED_TOP_DIRS:
            return []
        if source_file.relative_path in REGISTRY_MODULES:
            return []
        return list(self._scan(source_file))

    def _scan(self, source_file: "SourceFile") -> Iterator["Finding"]:
        from ..model import Finding

        elif_nodes: set[int] = set()
        for node in ast.walk(source_file.tree):
            if isinstance(node, ast.If):
                chain = node.orelse
                while len(chain) == 1 and isinstance(chain[0], ast.If):
                    elif_nodes.add(id(chain[0]))
                    chain = chain[0].orelse

        for node in ast.walk(source_file.tree):
            if not isinstance(node, ast.If) or id(node) in elif_nodes:
                continue
            matched: list[str] = []
            branches = 0
            current: ast.If | None = node
            while current is not None:
                names = _literal_names(current.test)
                if names:
                    branches += 1
                    matched.extend(names)
                tail = current.orelse
                current = (
                    tail[0] if len(tail) == 1 and isinstance(tail[0], ast.If) else None
                )
            # One branch matching >=2 names (an ``in ("mab", "pdtool")`` test)
            # is dispatch too.
            if branches >= 2 or len(set(matched)) >= 2:
                names_text = ", ".join(sorted(set(matched)))
                yield Finding(
                    rule=self.id,
                    path=source_file.relative_path,
                    line=node.lineno,
                    col=node.col_offset,
                    message=(
                        f"if/elif dispatch on registered names ({names_text}); "
                        "resolve through the registry (create_tuner / "
                        "resolve_backend) so aliases and new registrations "
                        "keep working"
                    ),
                )
