"""RL004 — shard-scorer race safety (the cross-file call-graph rule).

With ``scoring.workers > 1`` the MAB tuner scores packed arm blocks
concurrently: ``MabTuner._score_packed`` snapshots the bandit into a frozen
:class:`repro.core.linear_bandit.LinearScorer` (``theta``, ``v_inverse``)
and publishes the *snapshot* into shared memory for every block worker
(:func:`repro.core.scoring.score_packed`).  The parity contract
``sharded == monolithic == packed`` only holds if nothing on a
block-scoring path mutates the live bandit (``_v``, ``_b``, ``_v_inverse``,
``_theta``) — a write from one worker would be observed by another
mid-round.

The rule walks the call graph from the scoring entry points (the scoring
kernels, the shared-memory block worker and the frozen scorer's methods —
**not** ``_score_packed`` itself, which legitimately builds the snapshot
first) and flags every assignment to a mutable-bandit attribute reachable
from them.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Iterator

from . import Rule, RuleContext, register_rule

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..model import Finding

#: Qualified-name suffixes of the functions that run inside scoring workers.
#: ``_score_packed`` itself is *not* an entry point: it runs on the
#: coordinating process and legitimately materialises the scorer snapshot
#: (which lazily computes ``theta``) before any worker starts.  The
#: ``_score_sharded.score_shard`` suffix is retained for out-of-tree
#: shard-closure implementations of the legacy protocol.
SHARD_ENTRY_POINTS = (
    "MabTuner._score_sharded.score_shard",
    "scoring.ucb_scores",
    "scoring._score_block_worker",
    "LinearScorer.upper_confidence_scores",
    "LinearScorer.expected_rewards",
    "LinearScorer.exploration_bonus",
)

#: Live-bandit state that must never be assigned on a shard-scoring path.
MUTABLE_BANDIT_ATTRIBUTES = frozenset(
    {"_v", "_b", "_v_inverse", "_theta", "theta", "v_inverse"}
)


@register_rule
class ShardSafetyRule(Rule):
    id = "RL004"
    title = "no live-bandit mutation reachable from sharded scoring entry points"

    def check_project(self, context: RuleContext) -> Iterable["Finding"]:
        if context.index is None:
            return []
        return list(self._walk(context))

    def _walk(self, context: RuleContext) -> Iterator["Finding"]:
        from ..model import Finding

        index = context.index
        assert index is not None
        seen: set[tuple[str, int, str]] = set()
        for suffix in SHARD_ENTRY_POINTS:
            for entry in index.find_functions(suffix):
                for function in index.reachable_functions(entry):
                    for store in function.attribute_stores:
                        if store.attribute not in MUTABLE_BANDIT_ATTRIBUTES:
                            continue
                        key = (function.relative_path, store.line, store.attribute)
                        if key in seen:
                            continue
                        seen.add(key)
                        yield Finding(
                            rule=self.id,
                            path=function.relative_path,
                            line=store.line,
                            col=store.col,
                            message=(
                                f"assignment to {store.receiver}.{store.attribute} "
                                f"in {function.qualname} is reachable from shard "
                                f"entry point {entry.qualname}; shard workers must "
                                "only read the frozen LinearScorer snapshot "
                                "(sharded == monolithic parity)"
                            ),
                            symbol=function.qualname,
                        )
