"""RL009 — exception-safe release of pools and file handles.

The flow-engine sibling of RL006 for the remaining resource kinds: a
``ProcessPoolExecutor``/``ThreadPoolExecutor``/``multiprocessing.Pool``
acquired in a function must reach ``shutdown()`` (or be context-managed, or
handed off to an owner) on every path out of it, and an ``open()``-style
file handle must reach ``close()`` — *including* the exceptional paths,
where an orphaned pool strands live worker processes behind a raised
exception.  Shared-memory segments are RL006's concern and are not
re-reported here.

Ownership transfer is not a leak: returning the live handle, storing it
into a container/attribute (e.g. the scoring core's executor cache) or
passing it to another function all mark it escaped — the dataflow lattice
tracks that per variable, per path.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Iterator

from . import Rule, RuleContext, register_rule
from ..flow import FILE, POOL, FunctionSummary, analyse_resources
from .rl006_shm_lifecycle import CHECKED_TOP_DIRS, _leak_paths

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..model import Finding

_RELEASE_BY_KIND = {POOL: "shutdown()", FILE: "close()"}
_NOUN_BY_KIND = {POOL: "process/thread pool", FILE: "file handle"}


@register_rule
class ExceptionSafetyRule(Rule):
    id = "RL009"
    title = "pools and file handles must be released on every path, raising ones included"

    def check_project(self, context: RuleContext) -> Iterable["Finding"]:
        if context.index is None:
            return []
        return list(self._walk(context))

    def _walk(self, context: RuleContext) -> Iterator["Finding"]:
        from ..model import Finding

        index = context.index
        assert index is not None
        summaries: dict[str, FunctionSummary] = {}
        for function in index.iter_functions():
            if function.relative_path.split("/", 1)[0] not in CHECKED_TOP_DIRS:
                continue
            analysis = analyse_resources(function, index, summaries)
            for leak in analysis.leaks:
                if leak.site.kind not in _RELEASE_BY_KIND:
                    continue
                yield Finding(
                    rule=self.id,
                    path=function.relative_path,
                    line=leak.site.line,
                    col=leak.site.col,
                    message=(
                        f"{_NOUN_BY_KIND[leak.site.kind]} {leak.site.var!r} "
                        f"acquired here can leave the function on "
                        f"{_leak_paths(leak)} without "
                        f"{_RELEASE_BY_KIND[leak.site.kind]}; use a with "
                        "block or release it in a finally"
                    ),
                    symbol=function.qualname,
                )
