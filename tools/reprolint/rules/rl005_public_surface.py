"""RL005 — public-surface hygiene.

Four checks keep the documented API surface honest:

* **examples** (``examples/``) import only the public package roots
  (``repro.api``, ``repro.harness``, ``repro.workloads``, ``repro.engine``)
  — an example reaching into ``repro.core.*`` demonstrates an API gap, not
  a usage pattern;
* **deprecated paths** (``repro.harness.interface``, the ``make_tuner``
  shim) are flagged in ``src/`` and ``examples/`` — ``docs/API.md``'s
  deprecations table names the replacements;
* **deprecated scoring knobs** — the legacy
  ``shard_by``/``shard_top_k``/``shard_workers``/``n_hash_shards``/
  ``batch_scoring`` keyword spellings on ``MabConfig``,
  ``SimulationOptions`` and ``FleetConfig`` are flagged in ``src/`` and
  ``examples/`` outside the shim modules themselves — new code spells
  scoring behaviour as ``scoring=ScoringConfig(...)``;
* **``__all__`` discipline** in the strict-typed surface
  (``src/repro/api/*.py``, ``src/repro/fleet/*.py``,
  ``src/repro/engine/backend.py``): ``__all__`` must exist, every entry must
  be bound in the module — statically, or through a PEP 562 module
  ``__getattr__`` whose lazy-export table names it — and every public
  top-level definition must be listed, so ``from repro.api import *`` and
  the docs never drift from the code.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterable, Iterator

from . import Rule, RuleContext, register_rule

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..model import Finding, SourceFile

#: Package roots examples may import from (plus bare ``repro``).
PUBLIC_IMPORT_ROOTS = (
    "repro.api",
    "repro.fleet",
    "repro.harness",
    "repro.workloads",
    "repro.engine",
)

#: Deprecated module paths and the documented replacement.
DEPRECATED_MODULES = {
    "repro.harness.interface": "repro.api (TuningSession / run_simulation)",
    "repro.harness.simulation": "repro.api.run_simulation",
}

#: Deprecated names importable from otherwise-public modules.
DEPRECATED_NAMES = {
    ("repro.harness", "make_tuner"): "repro.api.create_tuner",
    ("repro.harness.experiments", "make_tuner"): "repro.api.create_tuner",
}

#: Modules whose ``__all__`` is audited (the strict-typed surface).
ALL_AUDITED_PREFIXES = ("src/repro/api/", "src/repro/fleet/")
ALL_AUDITED_FILES = ("src/repro/engine/backend.py",)

#: Files allowed to import the deprecated paths: the shims themselves and the
#: package ``__init__`` that lazily re-exports them for compatibility.
DEPRECATION_SHIM_FILES = frozenset(
    {
        "src/repro/harness/__init__.py",
        "src/repro/harness/interface.py",
        "src/repro/harness/simulation.py",
        "src/repro/harness/experiments.py",
    }
)

#: Deprecated scoring-knob keyword spellings (normalise into ScoringConfig).
DEPRECATED_SCORING_KWARGS = frozenset(
    {"shard_by", "shard_top_k", "shard_workers", "n_hash_shards", "batch_scoring"}
)

#: Constructors the deprecated scoring knobs ride on.  Other callables with
#: same-named parameters (e.g. ``shard_arms(..., shard_by=...)``, where the
#: parameter is the live API) are not flagged.
SCORING_KWARG_CALLEES = frozenset({"MabConfig", "SimulationOptions", "FleetConfig"})

#: Files that implement the scoring-knob shims and may spell them freely.
SCORING_SHIM_FILES = frozenset(
    {
        "src/repro/core/config.py",
        "src/repro/core/tuner.py",
        "src/repro/api/session.py",
        "src/repro/fleet/specs.py",
    }
)


def _module_of_import(node: ast.Import | ast.ImportFrom) -> list[str]:
    if isinstance(node, ast.Import):
        return [alias.name for alias in node.names]
    return [node.module] if node.module else []


@register_rule
class PublicSurfaceRule(Rule):
    id = "RL005"
    title = "examples stay on the public surface; no deprecated imports; __all__ in sync"

    def check_file(
        self, source_file: "SourceFile", context: RuleContext
    ) -> Iterable["Finding"]:
        findings: list["Finding"] = []
        if source_file.top_level_dir == "examples":
            findings.extend(self._check_example_imports(source_file))
        if source_file.top_level_dir in ("src", "examples"):
            findings.extend(self._check_deprecated_imports(source_file))
            findings.extend(self._check_deprecated_scoring_kwargs(source_file))
        if source_file.relative_path in ALL_AUDITED_FILES or any(
            source_file.relative_path.startswith(prefix)
            for prefix in ALL_AUDITED_PREFIXES
        ):
            findings.extend(self._check_dunder_all(source_file))
        return findings

    # ------------------------------------------------------------------ #
    # examples: public surface only
    # ------------------------------------------------------------------ #
    def _check_example_imports(self, source_file: "SourceFile") -> Iterator["Finding"]:
        from ..model import Finding

        for node in ast.walk(source_file.tree):
            if not isinstance(node, (ast.Import, ast.ImportFrom)):
                continue
            for module in _module_of_import(node):
                if not (module == "repro" or module.startswith("repro.")):
                    continue
                public = module == "repro" or any(
                    module == root or module.startswith(root + ".")
                    for root in PUBLIC_IMPORT_ROOTS
                )
                if not public:
                    yield Finding(
                        rule=self.id,
                        path=source_file.relative_path,
                        line=node.lineno,
                        col=node.col_offset,
                        message=(
                            f"example imports internal module {module}; "
                            "examples must stay on the public surface "
                            f"({', '.join(PUBLIC_IMPORT_ROOTS)}) — if the "
                            "example needs it, the API is missing something"
                        ),
                    )

    # ------------------------------------------------------------------ #
    # deprecated paths
    # ------------------------------------------------------------------ #
    def _check_deprecated_imports(self, source_file: "SourceFile") -> Iterator["Finding"]:
        from ..model import Finding

        if source_file.relative_path in DEPRECATION_SHIM_FILES:
            return
        for node in ast.walk(source_file.tree):
            if not isinstance(node, (ast.Import, ast.ImportFrom)):
                continue
            for module in _module_of_import(node):
                replacement = DEPRECATED_MODULES.get(module)
                if replacement:
                    yield Finding(
                        rule=self.id,
                        path=source_file.relative_path,
                        line=node.lineno,
                        col=node.col_offset,
                        message=(
                            f"import of deprecated module {module}; "
                            f"use {replacement} (see docs/API.md deprecations)"
                        ),
                    )
            if isinstance(node, ast.ImportFrom) and node.module:
                for alias in node.names:
                    replacement = DEPRECATED_NAMES.get((node.module, alias.name))
                    if replacement:
                        yield Finding(
                            rule=self.id,
                            path=source_file.relative_path,
                            line=node.lineno,
                            col=node.col_offset,
                            message=(
                                f"import of deprecated {node.module}.{alias.name}; "
                                f"use {replacement} (see docs/API.md deprecations)"
                            ),
                        )

    # ------------------------------------------------------------------ #
    # deprecated scoring knobs
    # ------------------------------------------------------------------ #
    def _check_deprecated_scoring_kwargs(
        self, source_file: "SourceFile"
    ) -> Iterator["Finding"]:
        from ..model import Finding

        if source_file.relative_path in SCORING_SHIM_FILES:
            return
        for node in ast.walk(source_file.tree):
            if not isinstance(node, ast.Call):
                continue
            callee = node.func
            name = (
                callee.id
                if isinstance(callee, ast.Name)
                else callee.attr
                if isinstance(callee, ast.Attribute)
                else None
            )
            if name not in SCORING_KWARG_CALLEES:
                continue
            for keyword in node.keywords:
                if keyword.arg in DEPRECATED_SCORING_KWARGS:
                    yield Finding(
                        rule=self.id,
                        path=source_file.relative_path,
                        line=keyword.value.lineno,
                        col=keyword.value.col_offset,
                        message=(
                            f"deprecated scoring knob {name}({keyword.arg}=...); "
                            "spell it scoring=ScoringConfig(...) "
                            "(see docs/API.md deprecations)"
                        ),
                        symbol=f"{name}.{keyword.arg}",
                    )

    # ------------------------------------------------------------------ #
    # __all__ audit
    # ------------------------------------------------------------------ #
    def _check_dunder_all(self, source_file: "SourceFile") -> Iterator["Finding"]:
        from ..model import Finding

        tree = source_file.tree
        all_node: ast.Assign | None = None
        exported: list[str] = []
        bound: set[str] = set()
        defined_public: dict[str, int] = {}

        # PEP 562 lazy re-export: when the module defines a top-level
        # ``__getattr__``, names resolved through it are legitimately absent
        # from the static bindings.  Accept an export as lazily bound when it
        # appears as a string literal in a top-level assignment (the lazy
        # export table — e.g. ``_FLEET_EXPORTS`` in ``repro.api`` or the
        # ``_EXPORTS`` dict in ``repro.harness``).
        has_module_getattr = any(
            isinstance(statement, ast.FunctionDef) and statement.name == "__getattr__"
            for statement in tree.body
        )
        lazily_bound: set[str] = set()
        if has_module_getattr:
            for statement in tree.body:
                if not isinstance(statement, (ast.Assign, ast.AnnAssign)):
                    continue
                targets = (
                    statement.targets
                    if isinstance(statement, ast.Assign)
                    else [statement.target]
                )
                if any(
                    isinstance(target, ast.Name) and target.id == "__all__"
                    for target in targets
                ):
                    continue
                if statement.value is None:
                    continue
                for node in ast.walk(statement.value):
                    if isinstance(node, ast.Constant) and isinstance(node.value, str):
                        lazily_bound.add(node.value)

        def harvest(statements: Iterable[ast.stmt]) -> None:
            for statement in statements:
                if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                    bound.add(statement.name)
                    if not statement.name.startswith("_"):
                        defined_public.setdefault(statement.name, statement.lineno)
                elif isinstance(statement, ast.Assign):
                    for target in statement.targets:
                        if isinstance(target, ast.Name):
                            bound.add(target.id)
                            if not target.id.startswith("_") and target.id != "TYPE_CHECKING":
                                defined_public.setdefault(target.id, statement.lineno)
                elif isinstance(statement, ast.AnnAssign):
                    if isinstance(statement.target, ast.Name):
                        bound.add(statement.target.id)
                        if not statement.target.id.startswith("_"):
                            defined_public.setdefault(
                                statement.target.id, statement.lineno
                            )
                elif isinstance(statement, ast.Import):
                    for alias in statement.names:
                        bound.add(alias.asname or alias.name.split(".")[0])
                elif isinstance(statement, ast.ImportFrom):
                    for alias in statement.names:
                        if alias.name != "*":
                            bound.add(alias.asname or alias.name)
                elif isinstance(statement, (ast.If, ast.Try)):
                    for body in getattr(statement, "orelse", []), statement.body:
                        harvest(body)
                    for handler in getattr(statement, "handlers", []):
                        harvest(handler.body)

        harvest(tree.body)

        for statement in tree.body:
            if (
                isinstance(statement, ast.Assign)
                and len(statement.targets) == 1
                and isinstance(statement.targets[0], ast.Name)
                and statement.targets[0].id == "__all__"
            ):
                all_node = statement
                if isinstance(statement.value, (ast.List, ast.Tuple)):
                    for element in statement.value.elts:
                        if isinstance(element, ast.Constant) and isinstance(
                            element.value, str
                        ):
                            exported.append(element.value)

        if all_node is None:
            yield Finding(
                rule=self.id,
                path=source_file.relative_path,
                line=1,
                col=0,
                message=(
                    "public-surface module has no __all__; declare the export "
                    "list so the documented surface is explicit"
                ),
            )
            return

        for name in exported:
            if name not in bound and name not in lazily_bound:
                yield Finding(
                    rule=self.id,
                    path=source_file.relative_path,
                    line=all_node.lineno,
                    col=all_node.col_offset,
                    message=(
                        f"__all__ exports {name!r} which is not defined or "
                        "imported in the module (export drift)"
                    ),
                    symbol=name,
                )

        exported_set = set(exported)
        for name, line in sorted(defined_public.items()):
            if name not in exported_set:
                yield Finding(
                    rule=self.id,
                    path=source_file.relative_path,
                    line=line,
                    col=0,
                    message=(
                        f"public definition {name} is missing from __all__; "
                        "list it or rename it with a leading underscore"
                    ),
                    symbol=name,
                )
