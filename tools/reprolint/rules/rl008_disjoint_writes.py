"""RL008 — disjoint-write discipline inside fork-pool workers.

The parallel scoring pass is race-free by *partition*, not by locks: every
worker attaches the same shared ``scores`` buffer and writes only the row
ranges ``[start, stop)`` it was handed in its block list.  The invariant is
purely conventional — shared memory has no bounds — so this rule makes it
static: inside a function submitted to a pool, a store into a
shared-memory-backed array is legal **only** through a plain
``buf[start:stop] = ...`` slice whose bounds are names bound by iterating a
parameter (the passed block ranges).  Whole-array stores (``buf[:]``,
``buf[...]``), computed slices and element stores are findings, as are
writes through the views container itself.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterable, Iterator

from . import Rule, RuleContext, register_rule
from ..project import FunctionInfo, ProjectIndex, dotted_call_name
from ._concurrency import (
    CHECKED_TOP_DIRS,
    iter_own_nodes,
    module_aliases,
    resolve_submitted,
    submit_sites,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..model import Finding


def _is_buffer_backed_ndarray(call: ast.Call, aliases: dict[str, str]) -> bool:
    """``np.ndarray(..., buffer=...)`` — a view over a shared segment."""
    dotted = dotted_call_name(call.func, aliases)
    if dotted is None or dotted.rsplit(".", 1)[-1] != "ndarray":
        return False
    return any(keyword.arg == "buffer" for keyword in call.keywords)


@register_rule
class DisjointWriteRule(Rule):
    id = "RL008"
    title = "fork-pool workers write only their passed block ranges of shared buffers"

    def check_project(self, context: RuleContext) -> Iterable["Finding"]:
        if context.index is None:
            return []
        return list(self._walk(context))

    def _walk(self, context: RuleContext) -> Iterator["Finding"]:
        index = context.index
        assert index is not None
        checked: set[str] = set()
        for function in index.iter_functions():
            if function.relative_path.split("/", 1)[0] not in CHECKED_TOP_DIRS:
                continue
            aliases = module_aliases(function, index)
            for site in submit_sites(function, index, aliases):
                worker = resolve_submitted(site, index)
                if worker is None or worker.qualname in checked:
                    continue
                checked.add(worker.qualname)
                yield from self._check_worker(worker, index)

    def _check_worker(
        self, worker: FunctionInfo, index: ProjectIndex
    ) -> Iterator["Finding"]:
        from ..model import Finding

        aliases = module_aliases(worker, index)
        args = worker.node.args
        params = {a.arg for a in [*args.posonlyargs, *args.args, *args.kwonlyargs]}

        backed: set[str] = set()
        containers: set[str] = set()
        sanctioned: set[str] = set()
        # Fixpoint over the (tiny) def-use chains: a name assigned from a
        # buffer-backed ndarray call, or loaded out of a container such
        # views were stored into, is backed.
        changed = True
        while changed:
            changed = False
            for node in iter_own_nodes(worker.node):
                if isinstance(node, ast.Assign) and len(node.targets) == 1:
                    target = node.targets[0]
                    value = node.value
                    if isinstance(value, ast.Call) and _is_buffer_backed_ndarray(
                        value, aliases
                    ):
                        if isinstance(target, ast.Name) and target.id not in backed:
                            backed.add(target.id)
                            changed = True
                        elif isinstance(target, ast.Subscript) and isinstance(
                            target.value, ast.Name
                        ):
                            if target.value.id not in containers:
                                containers.add(target.value.id)
                                changed = True
                    elif (
                        isinstance(value, ast.Name)
                        and value.id in backed
                        and isinstance(target, ast.Subscript)
                        and isinstance(target.value, ast.Name)
                        and target.value.id not in containers
                    ):
                        # A backed view stored into a dict/list makes that
                        # container a source of shared views too.
                        containers.add(target.value.id)
                        changed = True
                    elif (
                        isinstance(target, ast.Name)
                        and isinstance(value, ast.Subscript)
                        and isinstance(value.value, ast.Name)
                        and value.value.id in containers
                        and target.id not in backed
                    ):
                        backed.add(target.id)
                        changed = True
                elif isinstance(node, ast.For):
                    # ``for start, stop in block_slices:`` over a parameter
                    # sanctions the bound names as write-range endpoints.
                    if (
                        isinstance(node.iter, ast.Name)
                        and node.iter.id in params
                        and isinstance(node.target, (ast.Tuple, ast.List))
                    ):
                        for element in node.target.elts:
                            if isinstance(element, ast.Name) and element.id not in sanctioned:
                                sanctioned.add(element.id)
                                changed = True

        for node in iter_own_nodes(worker.node):
            if not isinstance(node, (ast.Assign, ast.AugAssign)):
                continue
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                if not isinstance(target, ast.Subscript):
                    continue
                base = target.value
                if isinstance(base, ast.Name) and base.id in backed:
                    if not self._is_sanctioned_slice(target.slice, sanctioned):
                        yield Finding(
                            rule=self.id,
                            path=worker.relative_path,
                            line=target.lineno,
                            col=target.col_offset,
                            message=(
                                f"worker {worker.qualname} writes "
                                f"'{ast.unparse(target)}' into a shared "
                                "buffer; only plain slices bounded by the "
                                "passed block range "
                                "(buf[start:stop], from 'for start, stop in "
                                "<param>') are race-free"
                            ),
                            symbol=worker.qualname,
                        )
                elif (
                    isinstance(base, ast.Subscript)
                    and isinstance(base.value, ast.Name)
                    and base.value.id in containers
                ):
                    yield Finding(
                        rule=self.id,
                        path=worker.relative_path,
                        line=target.lineno,
                        col=target.col_offset,
                        message=(
                            f"worker {worker.qualname} writes "
                            f"'{ast.unparse(target)}' through the shared "
                            "views container; bind the array to a name and "
                            "write only its passed block range"
                        ),
                        symbol=worker.qualname,
                    )

    @staticmethod
    def _is_sanctioned_slice(slice_expr: ast.expr, sanctioned: set[str]) -> bool:
        return (
            isinstance(slice_expr, ast.Slice)
            and slice_expr.step is None
            and isinstance(slice_expr.lower, ast.Name)
            and slice_expr.lower.id in sanctioned
            and isinstance(slice_expr.upper, ast.Name)
            and slice_expr.upper.id in sanctioned
        )
