"""Command-line front end: ``python -m tools.reprolint [paths...]``.

Exit codes: 0 clean, 1 unsuppressed findings, 2 usage/parse error.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .engine import ReprolintError, run_reprolint
from .rules import rule_titles

DEFAULT_PATHS = ("src", "tests", "examples")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m tools.reprolint",
        description=(
            "Repo-native static analysis: determinism, picklability, registry "
            "discipline, shard safety, public-surface hygiene, shared-memory "
            "lifecycle, fork safety, exception-safe resource release."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=list(DEFAULT_PATHS),
        help=f"files or directories to analyze (default: {' '.join(DEFAULT_PATHS)})",
    )
    parser.add_argument(
        "--root",
        default=".",
        help="analysis root; paths are resolved and reported relative to it",
    )
    parser.add_argument(
        "--json",
        metavar="FILE",
        help="also write the machine-readable report to FILE ('-' for stdout)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "github"),
        default="text",
        help=(
            "finding output style: 'text' (editor-clickable lines) or "
            "'github' (::error workflow commands for inline PR annotations)"
        ),
    )
    parser.add_argument(
        "--sarif",
        metavar="FILE",
        help="also write a SARIF 2.1.0 report to FILE (code-scanning upload)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list the registered rule families and exit",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)

    if args.list_rules:
        for rule_id, title in rule_titles().items():
            print(f"{rule_id}  {title}")
        return 0

    try:
        report = run_reprolint(args.paths, root=Path(args.root))
    except ReprolintError as error:
        print(f"reprolint: error: {error}", file=sys.stderr)
        return 2

    if args.sarif:
        report.write_sarif(Path(args.sarif))
    if args.json == "-":
        import json

        print(json.dumps(report.to_json(), indent=2))
    else:
        if args.json:
            report.write_json(Path(args.json))
        rendered = (
            report.render_github() if args.format == "github" else report.render_text()
        )
        print(rendered)
    return report.exit_code


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
