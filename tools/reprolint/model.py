"""Data model shared by the engine and every rule: findings, suppressions, files.

A :class:`Finding` is one rule violation at one source location.  A
:class:`Suppression` is one ``# reprolint: disable=RULE -- reason`` comment;
the engine matches findings against suppressions *after* every rule ran, so
rules never need to know about them.
"""

from __future__ import annotations

import ast
import re
import tokenize
from dataclasses import dataclass, field
from io import StringIO
from pathlib import Path

#: ``# reprolint: disable=RL001`` / ``disable=RL001,RL004`` with an optional
#: ``-- reason`` tail.  The reason is *required by policy* (RL000 enforces it);
#: the pattern still matches without one so the omission can be reported.
SUPPRESSION_PATTERN = re.compile(
    r"#\s*reprolint:\s*disable=(?P<rules>[A-Z]{2}\d{3}(?:\s*,\s*[A-Z]{2}\d{3})*)"
    r"(?:\s*--\s*(?P<reason>.*\S))?"
)


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str  # repo-relative, POSIX separators
    line: int
    col: int
    message: str
    #: Qualified name of the enclosing function/class, when the rule knows it.
    symbol: str = ""

    def format(self) -> str:
        location = f"{self.path}:{self.line}:{self.col}"
        symbol = f" [{self.symbol}]" if self.symbol else ""
        return f"{location}: {self.rule} {self.message}{symbol}"

    def to_json(self) -> dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "symbol": self.symbol,
        }


@dataclass
class Suppression:
    """One inline ``# reprolint: disable=...`` comment."""

    path: str
    line: int  # the line the suppression applies to (see SourceFile.suppressions)
    comment_line: int  # the physical line the comment sits on
    rules: tuple[str, ...]
    reason: str | None
    #: Rules of this suppression that actually matched a finding.
    used_rules: set[str] = field(default_factory=set)

    def covers(self, finding: Finding) -> bool:
        return (
            finding.path == self.path
            and finding.line == self.line
            and finding.rule in self.rules
        )

    def to_json(self) -> dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "rules": list(self.rules),
            "reason": self.reason,
        }


@dataclass
class SourceFile:
    """One parsed source file handed to every rule."""

    path: Path  # absolute
    relative_path: str  # repo-relative, POSIX separators
    source: str
    tree: ast.Module
    suppressions: list[Suppression]

    @property
    def top_level_dir(self) -> str:
        """First path component (``src``, ``tests``, ``examples``, ...)."""
        return self.relative_path.split("/", 1)[0]


def parse_suppressions(relative_path: str, source: str) -> list[Suppression]:
    """Extract every suppression comment via the tokenizer (no false matches
    inside string literals — fixture snippets embedding bad code as strings
    stay inert).

    A trailing comment applies to its own physical line; a comment alone on a
    line applies to the *next* line (so long statements can carry a
    suppression without breaking the line-length budget).
    """
    suppressions: list[Suppression] = []
    try:
        tokens = list(tokenize.generate_tokens(StringIO(source).readline))
    except tokenize.TokenError:  # pragma: no cover - engine rejects earlier
        return suppressions

    # Physical lines that hold a non-comment, non-whitespace token.
    code_lines: set[int] = set()
    for token in tokens:
        if token.type in (
            tokenize.COMMENT,
            tokenize.NL,
            tokenize.NEWLINE,
            tokenize.INDENT,
            tokenize.DEDENT,
            tokenize.ENCODING,
            tokenize.ENDMARKER,
        ):
            continue
        for line in range(token.start[0], token.end[0] + 1):
            code_lines.add(line)

    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = SUPPRESSION_PATTERN.search(token.string)
        if match is None:
            continue
        comment_line = token.start[0]
        applies_to = comment_line if comment_line in code_lines else comment_line + 1
        # Every comma-separated code is honoured; dedupe repeats (keeping
        # first-seen order) so ``disable=RL001,RL001`` can't double-count in
        # RL000 messages or the stale check.
        rules = tuple(
            dict.fromkeys(
                rule.strip()
                for rule in match.group("rules").split(",")
                if rule.strip()
            )
        )
        suppressions.append(
            Suppression(
                path=relative_path,
                line=applies_to,
                comment_line=comment_line,
                rules=rules,
                reason=match.group("reason"),
            )
        )
    return suppressions


def load_source_file(path: Path, root: Path) -> SourceFile:
    """Parse one file into a :class:`SourceFile` (raises ``SyntaxError``)."""
    source = path.read_text(encoding="utf-8")
    relative = path.relative_to(root).as_posix()
    tree = ast.parse(source, filename=str(path))
    return SourceFile(
        path=path,
        relative_path=relative,
        source=source,
        tree=tree,
        suppressions=parse_suppressions(relative, source),
    )
