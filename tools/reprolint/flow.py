"""Intraprocedural CFG + resource-lifecycle dataflow for reprolint.

This module grows reprolint from per-statement checks into a small flow
engine, in three layers:

* **CFG construction** — :func:`build_cfg` lowers one function body into
  basic blocks (one simple statement per block, explicit join blocks).
  ``try``/``finally`` is modelled by *duplicating* the ``finally`` body once
  per continuation kind (fall-through, raise, return, break, continue), so
  a release that only happens in a ``finally`` is visible on every path that
  runs it — and only on those.  Exception edges are taken *before* the
  statement's effect applies (an acquisition that raises never binds).
* **A forward dataflow solver** — :func:`solve_forward` iterates a
  transfer function to a fixpoint over the CFG with set-union joins at
  merge points.
* **A resource-state lattice** — :class:`ResourceTransfer` tracks, per
  local variable, the acquisition sites it may hold and whether each is
  released (``close``/``unlink``/``shutdown``), escaped (returned, yielded,
  stored into a container/attribute, or passed to an unknown callee) or
  still open.  :func:`analyse_resources` reports every site that can reach
  the function's normal or exceptional exit unreleased.

Cross-function knowledge reuses the RL004 call graph for **one level of
helper inlining** (:func:`function_summary`): a helper that returns a fresh
resource is an acquisition site at its call sites, and a helper that
releases a parameter counts as a release of the argument.  Deeper chains are
treated as escapes — precision over recall, like the rest of reprolint.
"""

from __future__ import annotations

import ast
from collections import deque
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Callable, Iterable, Iterator

from .project import FunctionInfo, ProjectIndex, dotted_call_name

if TYPE_CHECKING:  # pragma: no cover - typing only
    pass

# --------------------------------------------------------------------------- #
# resource kinds
# --------------------------------------------------------------------------- #

SHM_CREATE = "shm_create"
SHM_ATTACH = "shm_attach"
POOL = "pool"
FILE = "file"

#: Fully-qualified constructors that acquire a resource of each kind.
SHM_CONSTRUCTORS = frozenset({"multiprocessing.shared_memory.SharedMemory"})
POOL_CONSTRUCTORS = frozenset(
    {
        "concurrent.futures.ProcessPoolExecutor",
        "concurrent.futures.process.ProcessPoolExecutor",
        "concurrent.futures.ThreadPoolExecutor",
        "concurrent.futures.thread.ThreadPoolExecutor",
        "multiprocessing.Pool",
    }
)
FILE_CONSTRUCTORS = frozenset(
    {
        "open",
        "io.open",
        "gzip.open",
        "bz2.open",
        "lzma.open",
        "tempfile.TemporaryFile",
        "tempfile.NamedTemporaryFile",
    }
)

#: Method calls that release (part of) a tracked resource.  ``shutdown``
#: fully releases a pool; a created shm segment needs *both* ``close`` and
#: ``unlink``.
RELEASE_EFFECTS: dict[str, tuple[str, ...]] = {
    "close": ("closed",),
    "unlink": ("unlinked",),
    "shutdown": ("closed", "unlinked"),
}

#: Calls that cannot meaningfully raise for lifecycle purposes: without this
#: set, the canonical ``finally: handle.close()`` pattern would itself spawn
#: an exceptional edge on which the handle is still open.
_SAFE_BUILTIN_CALLS = frozenset(
    {"len", "isinstance", "range", "enumerate", "zip", "repr", "id", "print"}
)
_SAFE_METHOD_CALLS = frozenset(
    {"append", "add", "items", "keys", "values", "get", "extend", "update"}
) | frozenset(RELEASE_EFFECTS)


@dataclass(frozen=True)
class ResourceSite:
    """One acquisition: a variable bound to a fresh resource at a location."""

    var: str
    kind: str
    line: int
    col: int


@dataclass(frozen=True)
class Status:
    """Lattice element: one acquisition site with its release/escape bits."""

    site: ResourceSite
    closed: bool = False
    unlinked: bool = False
    escaped: bool = False

    @property
    def satisfied(self) -> bool:
        """Whether this state is terminal-safe at a function exit."""
        if self.escaped:
            return True
        if self.site.kind == SHM_CREATE:
            return self.closed and self.unlinked
        # attach-side shm, pools and files only need close()/shutdown().
        return self.closed


#: A dataflow environment: local name -> set of possible statuses.  A name
#: absent from the environment holds no tracked resource.
Env = dict[str, frozenset[Status]]


# --------------------------------------------------------------------------- #
# CFG
# --------------------------------------------------------------------------- #


@dataclass
class BasicBlock:
    """One CFG node: at most one statement, normal and exceptional edges."""

    index: int
    stmt: ast.stmt | None = None
    succs: list[int] = field(default_factory=list)
    exc_succs: list[int] = field(default_factory=list)
    preds: list[int] = field(default_factory=list)


@dataclass
class ControlFlowGraph:
    blocks: list[BasicBlock]
    entry: int
    exit: int
    raise_exit: int

    def reachable(self) -> set[int]:
        """Block indices reachable from the entry (normal or exception edge)."""
        seen: set[int] = set()
        queue = deque([self.entry])
        while queue:
            index = queue.popleft()
            if index in seen:
                continue
            seen.add(index)
            block = self.blocks[index]
            queue.extend(block.succs)
            queue.extend(block.exc_succs)
        return seen

    def blocks_for(self, stmt_type: type[ast.stmt]) -> list[BasicBlock]:
        return [
            block
            for block in self.blocks
            if block.stmt is not None and isinstance(block.stmt, stmt_type)
        ]


@dataclass(frozen=True)
class _Frame:
    """Where control transfers out of the current statement list go."""

    raise_to: int
    return_to: int
    break_to: int | None = None
    continue_to: int | None = None


def _guard_exprs(stmt: ast.stmt) -> list[ast.expr]:
    """The expressions a compound-statement header block evaluates."""
    if isinstance(stmt, (ast.If, ast.While)):
        return [stmt.test]
    if isinstance(stmt, ast.For):
        return [stmt.iter]
    if isinstance(stmt, ast.With):
        return [item.context_expr for item in stmt.items]
    if isinstance(stmt, ast.Match):
        return [stmt.subject]
    if isinstance(stmt, ast.Return):
        return [stmt.value] if stmt.value is not None else []
    if isinstance(stmt, ast.Assert):
        return [stmt.test] + ([stmt.msg] if stmt.msg is not None else [])
    return [stmt]  # simple statement: scan the whole node


def _may_raise(stmt: ast.stmt) -> bool:
    """Whether executing this (header) statement can raise: any unsafe call."""
    for expr in _guard_exprs(stmt):
        for node in ast.walk(expr):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name) and func.id in _SAFE_BUILTIN_CALLS:
                continue
            if isinstance(func, ast.Attribute) and func.attr in _SAFE_METHOD_CALLS:
                continue
            return True
    return False


class _Builder:
    def __init__(self) -> None:
        self.blocks: list[BasicBlock] = []

    def new_block(self, stmt: ast.stmt | None = None) -> int:
        block = BasicBlock(index=len(self.blocks), stmt=stmt)
        self.blocks.append(block)
        return block.index

    def link(self, src: int, dst: int) -> None:
        if dst not in self.blocks[src].succs:
            self.blocks[src].succs.append(dst)
            self.blocks[dst].preds.append(src)

    def link_exc(self, src: int, dst: int) -> None:
        if dst not in self.blocks[src].exc_succs:
            self.blocks[src].exc_succs.append(dst)
            self.blocks[dst].preds.append(src)

    # ------------------------------------------------------------------ #
    def build_stmts(self, stmts: Iterable[ast.stmt], pred: int | None, frame: _Frame) -> int | None:
        current = pred
        for stmt in stmts:
            if current is None:
                # Dead code after a return/raise/break: build it as a
                # disconnected island so reachability queries see it.
                current = self.new_block()
            current = self.build_stmt(stmt, current, frame)
        return current

    def build_stmt(self, stmt: ast.stmt, pred: int, frame: _Frame) -> int | None:
        if isinstance(stmt, ast.Return):
            block = self.new_block(stmt)
            self.link(pred, block)
            if _may_raise(stmt):
                self.link_exc(block, frame.raise_to)
            self.link(block, frame.return_to)
            return None
        if isinstance(stmt, ast.Raise):
            block = self.new_block(stmt)
            self.link(pred, block)
            self.link(block, frame.raise_to)
            return None
        if isinstance(stmt, ast.Break):
            block = self.new_block(stmt)
            self.link(pred, block)
            if frame.break_to is not None:
                self.link(block, frame.break_to)
            return None
        if isinstance(stmt, ast.Continue):
            block = self.new_block(stmt)
            self.link(pred, block)
            if frame.continue_to is not None:
                self.link(block, frame.continue_to)
            return None
        if isinstance(stmt, ast.If):
            return self._build_if(stmt, pred, frame)
        if isinstance(stmt, (ast.While, ast.For)):
            return self._build_loop(stmt, pred, frame)
        if isinstance(stmt, ast.With):
            return self._build_with(stmt, pred, frame)
        if isinstance(stmt, ast.Try) or (
            hasattr(ast, "TryStar") and isinstance(stmt, ast.TryStar)
        ):
            return self._build_try(stmt, pred, frame)
        if isinstance(stmt, ast.Match):
            return self._build_match(stmt, pred, frame)
        # Simple statement (incl. nested def/class headers).
        block = self.new_block(stmt)
        self.link(pred, block)
        if _may_raise(stmt):
            self.link_exc(block, frame.raise_to)
        return block

    def _fallthrough(self, after: int) -> int | None:
        return after if self.blocks[after].preds else None

    def _build_if(self, stmt: ast.If, pred: int, frame: _Frame) -> int | None:
        test = self.new_block(stmt)
        self.link(pred, test)
        if _may_raise(stmt):
            self.link_exc(test, frame.raise_to)
        after = self.new_block()
        then_exit = self.build_stmts(stmt.body, test, frame)
        if then_exit is not None:
            self.link(then_exit, after)
        if stmt.orelse:
            else_exit = self.build_stmts(stmt.orelse, test, frame)
            if else_exit is not None:
                self.link(else_exit, after)
        else:
            self.link(test, after)
        return self._fallthrough(after)

    def _build_loop(self, stmt: ast.While | ast.For, pred: int, frame: _Frame) -> int | None:
        head = self.new_block(stmt)
        self.link(pred, head)
        if _may_raise(stmt):
            self.link_exc(head, frame.raise_to)
        after = self.new_block()
        body_frame = replace(frame, break_to=after, continue_to=head)
        body_exit = self.build_stmts(stmt.body, head, body_frame)
        if body_exit is not None:
            self.link(body_exit, head)
        infinite = (
            isinstance(stmt, ast.While)
            and isinstance(stmt.test, ast.Constant)
            and bool(stmt.test.value)
        )
        if not infinite:
            if stmt.orelse:
                else_exit = self.build_stmts(stmt.orelse, head, frame)
                if else_exit is not None:
                    self.link(else_exit, after)
            else:
                self.link(head, after)
        return self._fallthrough(after)

    def _build_with(self, stmt: ast.With, pred: int, frame: _Frame) -> int | None:
        block = self.new_block(stmt)
        self.link(pred, block)
        if _may_raise(stmt):
            self.link_exc(block, frame.raise_to)
        return self.build_stmts(stmt.body, block, frame)

    def _build_try(self, stmt: ast.Try, pred: int, frame: _Frame) -> int | None:
        after = self.new_block()
        if stmt.finalbody:
            copies: dict[int | None, int | None] = {}

            def finally_to(target: int | None) -> int | None:
                if target is None:
                    return None
                if target not in copies:
                    entry = self.new_block()
                    copies[target] = entry
                    tail = self.build_stmts(stmt.finalbody, entry, frame)
                    if tail is not None:
                        self.link(tail, target)
                return copies[target]

            raise_to = finally_to(frame.raise_to)
            return_to = finally_to(frame.return_to)
            assert raise_to is not None and return_to is not None
            inner_frame = _Frame(
                raise_to=raise_to,
                return_to=return_to,
                break_to=finally_to(frame.break_to),
                continue_to=finally_to(frame.continue_to),
            )
            normal_target = finally_to(after)
            assert normal_target is not None
        else:
            inner_frame = frame
            normal_target = after

        if stmt.handlers:
            dispatch = self.new_block()
            body_frame = replace(inner_frame, raise_to=dispatch)
        else:
            dispatch = None
            body_frame = inner_frame

        body_exit = self.build_stmts(stmt.body, pred, body_frame)
        if stmt.orelse and body_exit is not None:
            body_exit = self.build_stmts(stmt.orelse, body_exit, inner_frame)
        if body_exit is not None:
            self.link(body_exit, normal_target)

        if dispatch is not None:
            for handler in stmt.handlers:
                entry = self.new_block(handler)
                self.link(dispatch, entry)
                handler_exit = self.build_stmts(handler.body, entry, inner_frame)
                if handler_exit is not None:
                    self.link(handler_exit, normal_target)
            if not any(_catches_everything(handler) for handler in stmt.handlers):
                # No catch-all handler: an unmatched exception propagates.
                self.link(dispatch, inner_frame.raise_to)
        return self._fallthrough(after)

    def _build_match(self, stmt: ast.Match, pred: int, frame: _Frame) -> int | None:
        subject = self.new_block(stmt)
        self.link(pred, subject)
        if _may_raise(stmt):
            self.link_exc(subject, frame.raise_to)
        after = self.new_block()
        for case in stmt.cases:
            case_exit = self.build_stmts(case.body, subject, frame)
            if case_exit is not None:
                self.link(case_exit, after)
        self.link(subject, after)
        return self._fallthrough(after)


def _catches_everything(handler: ast.ExceptHandler) -> bool:
    """Bare ``except:`` or ``except BaseException:`` (``Exception`` is not a
    catch-all: KeyboardInterrupt/SystemExit still propagate)."""
    return handler.type is None or (
        isinstance(handler.type, ast.Name) and handler.type.id == "BaseException"
    )


def build_cfg(node: ast.FunctionDef | ast.AsyncFunctionDef) -> ControlFlowGraph:
    """Lower one function body into a :class:`ControlFlowGraph`."""
    builder = _Builder()
    entry = builder.new_block()
    normal_exit = builder.new_block()
    raise_exit = builder.new_block()
    frame = _Frame(raise_to=raise_exit, return_to=normal_exit)
    tail = builder.build_stmts(node.body, entry, frame)
    if tail is not None:
        builder.link(tail, normal_exit)
    return ControlFlowGraph(
        blocks=builder.blocks, entry=entry, exit=normal_exit, raise_exit=raise_exit
    )


# --------------------------------------------------------------------------- #
# dataflow solver
# --------------------------------------------------------------------------- #


def _join_into(in_envs: dict[int, Env], dst: int, incoming: Env) -> bool:
    current = in_envs.get(dst)
    if current is None:
        in_envs[dst] = dict(incoming)
        return True
    changed = False
    for var, states in incoming.items():
        merged = current.get(var, frozenset()) | states
        if merged != current.get(var):
            current[var] = merged
            changed = True
    return changed


def solve_forward(
    cfg: ControlFlowGraph,
    transfer: Callable[[ast.stmt, Env], Env],
    initial: Env | None = None,
) -> dict[int, Env]:
    """Fixpoint iteration; returns the env *entering* each reachable block.

    Exceptional edges propagate the block's **pre**-state: a statement that
    raises applies none of its effects.
    """
    in_envs: dict[int, Env] = {cfg.entry: dict(initial or {})}
    worklist = deque([cfg.entry])
    while worklist:
        index = worklist.popleft()
        block = cfg.blocks[index]
        env = in_envs[index]
        out_normal = transfer(block.stmt, env) if block.stmt is not None else env
        for dst in block.succs:
            if _join_into(in_envs, dst, out_normal):
                worklist.append(dst)
        for dst in block.exc_succs:
            if _join_into(in_envs, dst, env):
                worklist.append(dst)
    return in_envs


# --------------------------------------------------------------------------- #
# helper summaries (one level of call-graph inlining)
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class FunctionSummary:
    """What calling a project helper does to resources, one level deep."""

    #: Kind of fresh, still-owned resource the helper returns (or ``None``).
    acquires_kind: str | None = None
    #: Positional parameter names, for mapping call arguments.
    param_names: tuple[str, ...] = ()
    #: Parameter name -> release bits the helper applies to that argument.
    param_release: dict[str, tuple[str, ...]] = field(default_factory=dict)


def _classify_external(call: ast.Call, aliases: dict[str, str]) -> str | None:
    """Acquisition kind of a stdlib constructor call, or ``None``."""
    dotted = dotted_call_name(call.func, aliases)
    if dotted is None:
        return None
    if dotted in SHM_CONSTRUCTORS:
        create = False
        if len(call.args) >= 2:
            arg = call.args[1]
            create = isinstance(arg, ast.Constant) and bool(arg.value)
        for keyword in call.keywords:
            if keyword.arg == "create":
                value = keyword.value
                create = isinstance(value, ast.Constant) and bool(value.value)
        return SHM_CREATE if create else SHM_ATTACH
    if dotted in POOL_CONSTRUCTORS:
        return POOL
    if dotted in FILE_CONSTRUCTORS:
        return FILE
    return None


def function_summary(
    function: FunctionInfo,
    index: ProjectIndex,
    _cache: dict[str, FunctionSummary] | None = None,
    _in_progress: frozenset[str] = frozenset(),
) -> FunctionSummary:
    """Summarise one helper: what it acquires/releases, one level deep."""
    if _cache is not None and function.qualname in _cache:
        return _cache[function.qualname]
    if function.qualname in _in_progress:  # recursion: no summary
        return FunctionSummary()
    args = function.node.args
    param_names = tuple(a.arg for a in [*args.posonlyargs, *args.args])

    param_release: dict[str, tuple[str, ...]] = {}
    for node in ast.walk(function.node):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in RELEASE_EFFECTS
            and isinstance(func.value, ast.Name)
            and func.value.id in param_names
        ):
            existing = param_release.get(func.value.id, ())
            merged = tuple(dict.fromkeys(existing + RELEASE_EFFECTS[func.attr]))
            param_release[func.value.id] = merged

    # Does the helper hand back a live resource it still owns at the return?
    acquires: str | None = None
    analysis = analyse_resources(
        function, index, summaries=None, _in_progress=_in_progress | {function.qualname}
    )
    aliases = _module_aliases(function, index)
    for block in analysis.cfg.blocks_for(ast.Return):
        stmt = block.stmt
        assert isinstance(stmt, ast.Return)
        value = stmt.value
        if isinstance(value, ast.Call):
            acquires = _classify_external(value, aliases) or acquires
        elif isinstance(value, ast.Name):
            env = analysis.in_envs.get(block.index, {})
            for status in env.get(value.id, frozenset()):
                if not status.escaped and not status.satisfied:
                    acquires = status.site.kind
    summary = FunctionSummary(
        acquires_kind=acquires, param_names=param_names, param_release=param_release
    )
    if _cache is not None:
        _cache[function.qualname] = summary
    return summary


def _module_aliases(function: FunctionInfo, index: ProjectIndex) -> dict[str, str]:
    module = index.modules.get(function.module)
    return module.import_aliases if module is not None else {}


# --------------------------------------------------------------------------- #
# resource transfer function
# --------------------------------------------------------------------------- #


class ResourceTransfer:
    """Gen/kill transfer over :data:`Env` for one function."""

    def __init__(
        self,
        function: FunctionInfo,
        index: ProjectIndex,
        summaries: dict[str, FunctionSummary] | None,
        _in_progress: frozenset[str] = frozenset(),
    ) -> None:
        self.function = function
        self.index = index
        self.summaries = summaries
        self.aliases = _module_aliases(function, index)
        self._in_progress = _in_progress
        #: ``unlink()`` calls observed on attach-side segments: (site, line, col).
        self.attach_unlinks: set[tuple[ResourceSite, int, int]] = set()

    # -- classification -------------------------------------------------- #
    def classify(self, call: ast.Call) -> str | None:
        kind = _classify_external(call, self.aliases)
        if kind is not None:
            return kind
        summary = self._callee_summary(call)
        if summary is not None:
            return summary.acquires_kind
        return None

    def _callee_summary(self, call: ast.Call) -> FunctionSummary | None:
        if self.summaries is None:
            return None
        target = self.index.resolve_call(self.function, call.func)
        if isinstance(target, FunctionInfo):
            return function_summary(
                target, self.index, self.summaries, self._in_progress
            )
        return None

    # -- env helpers ------------------------------------------------------ #
    @staticmethod
    def _escape(env: Env, name: str) -> None:
        states = env.get(name)
        if states:
            env[name] = frozenset(replace(s, escaped=True) for s in states)

    @staticmethod
    def _apply_release(env: Env, name: str, bits: tuple[str, ...]) -> None:
        states = env.get(name)
        if not states:
            return
        updated = set()
        for status in states:
            for bit in bits:
                status = replace(status, **{bit: True})
            updated.add(status)
        env[name] = frozenset(updated)

    # -- call effects ------------------------------------------------------ #
    def _process_calls(self, expr: ast.expr, env: Env) -> None:
        for node in ast.walk(expr):
            if isinstance(node, (ast.Yield, ast.YieldFrom)):
                value = node.value
                if isinstance(value, ast.Name):
                    self._escape(env, value.id)
                continue
            if not isinstance(node, ast.Call):
                continue
            handled_args: set[str] = set()
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in RELEASE_EFFECTS
                and isinstance(func.value, ast.Name)
                and func.value.id in env
            ):
                name = func.value.id
                if func.attr == "unlink":
                    for status in env[name]:
                        if status.site.kind == SHM_ATTACH and not status.escaped:
                            self.attach_unlinks.add(
                                (status.site, node.lineno, node.col_offset)
                            )
                self._apply_release(env, name, RELEASE_EFFECTS[func.attr])
            summary = self._callee_summary(node)
            if summary is not None and summary.param_release:
                for position, arg in enumerate(node.args):
                    if position >= len(summary.param_names):
                        break
                    param = summary.param_names[position]
                    if param in summary.param_release and isinstance(arg, ast.Name):
                        self._apply_release(env, arg.id, summary.param_release[param])
                        handled_args.add(arg.id)
                for keyword in node.keywords:
                    if (
                        keyword.arg in summary.param_release
                        and isinstance(keyword.value, ast.Name)
                    ):
                        self._apply_release(
                            env, keyword.value.id, summary.param_release[keyword.arg]
                        )
                        handled_args.add(keyword.value.id)
            # Any other tracked name handed to a call escapes our reasoning.
            for arg in [*node.args, *[k.value for k in node.keywords]]:
                if isinstance(arg, ast.Starred):
                    arg = arg.value
                if isinstance(arg, ast.Name) and arg.id not in handled_args:
                    self._escape(env, arg.id)

    # -- statement transfer ------------------------------------------------ #
    def __call__(self, stmt: ast.stmt, env: Env) -> Env:
        env = dict(env)
        if isinstance(stmt, ast.Assign):
            self._assign(stmt.targets, stmt.value, env)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._assign([stmt.target], stmt.value, env)
        elif isinstance(stmt, ast.AugAssign):
            self._process_calls(stmt.value, env)
        elif isinstance(stmt, ast.Expr):
            self._process_calls(stmt.value, env)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._process_calls(stmt.value, env)
                if isinstance(stmt.value, ast.Name):
                    self._escape(env, stmt.value.id)
        elif isinstance(stmt, ast.Raise):
            for expr in (stmt.exc, stmt.cause):
                if expr is not None:
                    self._process_calls(expr, env)
        elif isinstance(stmt, (ast.If, ast.While, ast.Match, ast.Assert)):
            for expr in _guard_exprs(stmt):
                self._process_calls(expr, env)
        elif isinstance(stmt, ast.For):
            self._process_calls(stmt.iter, env)
            for name in _target_names(stmt.target):
                env.pop(name, None)
        elif isinstance(stmt, ast.With):
            self._with_items(stmt, env)
        elif isinstance(stmt, ast.ExceptHandler):
            if stmt.name:
                env.pop(stmt.name, None)
        # Delete keeps the tracked state: ``del seg`` is not a release and
        # must not hide a leak.
        return env

    def _with_items(self, stmt: ast.With, env: Env) -> None:
        for item in stmt.items:
            self._process_calls(item.context_expr, env)
            var = item.optional_vars
            if not isinstance(var, ast.Name):
                continue
            kind = (
                self.classify(item.context_expr)
                if isinstance(item.context_expr, ast.Call)
                else None
            )
            if kind is not None:
                # Context-managed: __exit__ releases it on every path.
                site = ResourceSite(
                    var=var.id,
                    kind=kind,
                    line=item.context_expr.lineno,
                    col=item.context_expr.col_offset,
                )
                env[var.id] = frozenset({Status(site=site, closed=True, unlinked=True)})
            else:
                env.pop(var.id, None)

    def _assign(self, targets: list[ast.expr], value: ast.expr, env: Env) -> None:
        self._process_calls(value, env)
        single = targets[0] if len(targets) == 1 else None
        if isinstance(single, ast.Name) and isinstance(value, ast.Call):
            kind = self.classify(value)
            if kind is not None:
                site = ResourceSite(
                    var=single.id, kind=kind, line=value.lineno, col=value.col_offset
                )
                env[single.id] = frozenset({Status(site=site)})
                return
        if isinstance(value, ast.Name) and value.id in env:
            # Aliasing (or storing into a container/attribute): stop claiming
            # precise ownership of either name.
            self._escape(env, value.id)
            if isinstance(single, ast.Name):
                env[single.id] = env[value.id]
                return
        for target in targets:
            for name in _target_names(target):
                env.pop(name, None)


def _target_names(target: ast.expr) -> Iterator[str]:
    if isinstance(target, ast.Name):
        yield target.id
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _target_names(element)
    elif isinstance(target, ast.Starred):
        yield from _target_names(target.value)


# --------------------------------------------------------------------------- #
# per-function analysis
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class ResourceLeak:
    site: ResourceSite
    #: Unreleased at the normal exit on some path.
    on_normal_exit: bool
    #: Unreleased at the exceptional exit on some path.
    on_raise_exit: bool


@dataclass
class ResourceAnalysis:
    """Flow-analysis result for one function."""

    function: FunctionInfo
    cfg: ControlFlowGraph
    in_envs: dict[int, Env]
    leaks: list[ResourceLeak]
    attach_unlinks: list[tuple[ResourceSite, int, int]]


def analyse_resources(
    function: FunctionInfo,
    index: ProjectIndex,
    summaries: dict[str, FunctionSummary] | None = None,
    _in_progress: frozenset[str] = frozenset(),
) -> ResourceAnalysis:
    """Run the resource-lifecycle dataflow over one function."""
    cfg = build_cfg(function.node)
    transfer = ResourceTransfer(function, index, summaries, _in_progress)
    in_envs = solve_forward(cfg, transfer)

    unsatisfied: dict[ResourceSite, list[bool]] = {}
    for exit_index, slot in ((cfg.exit, 0), (cfg.raise_exit, 1)):
        env = in_envs.get(exit_index, {})
        for states in env.values():
            for status in states:
                if not status.satisfied:
                    unsatisfied.setdefault(status.site, [False, False])[slot] = True
    leaks = [
        ResourceLeak(site=site, on_normal_exit=flags[0], on_raise_exit=flags[1])
        for site, flags in sorted(
            unsatisfied.items(), key=lambda item: (item[0].line, item[0].col)
        )
    ]
    return ResourceAnalysis(
        function=function,
        cfg=cfg,
        in_envs=in_envs,
        leaks=leaks,
        attach_unlinks=sorted(transfer.attach_unlinks, key=lambda e: (e[1], e[2])),
    )
