"""``python -m tools.reprolint`` entry point."""

from .cli import main

raise SystemExit(main())
