"""The reprolint engine: collect files, run rules, match suppressions, report.

Suppression semantics (RL000):

* every ``# reprolint: disable=RLxxx`` must carry a ``-- reason`` tail —
  a reasonless suppression still suppresses (no double noise) but is
  reported as RL000;
* a suppression naming an unknown rule id is RL000;
* a suppression that matched no finding is stale and reported as RL000 —
  suppressions must not outlive the violation they excuse;
* RL000 findings are themselves unsuppressible.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from .model import Finding, SourceFile, Suppression, load_source_file
from .project import ProjectIndex
from .rules import RuleContext, registered_rule_ids, registered_rules, rule_titles

#: JSON schema version for the machine-readable report.
REPORT_VERSION = 1


class ReprolintError(Exception):
    """Unrecoverable analyzer error (bad path, syntax error): CLI exit 2."""


@dataclass
class Report:
    """Outcome of one analyzer run."""

    root: str
    files_scanned: list[str] = field(default_factory=list)
    findings: list[Finding] = field(default_factory=list)
    suppressed: list[tuple[Finding, Suppression]] = field(default_factory=list)

    @property
    def exit_code(self) -> int:
        return 1 if self.findings else 0

    def summary(self) -> dict[str, int]:
        by_rule: dict[str, int] = {}
        for finding in self.findings:
            by_rule[finding.rule] = by_rule.get(finding.rule, 0) + 1
        return dict(sorted(by_rule.items()))

    def to_json(self) -> dict[str, object]:
        return {
            "version": REPORT_VERSION,
            "root": self.root,
            "files_scanned": list(self.files_scanned),
            "rules": rule_titles(),
            "findings": [finding.to_json() for finding in self.findings],
            "suppressed": [
                {"finding": finding.to_json(), "suppression": suppression.to_json()}
                for finding, suppression in self.suppressed
            ],
            "summary": {
                "files": len(self.files_scanned),
                "findings": len(self.findings),
                "suppressed": len(self.suppressed),
                "by_rule": self.summary(),
            },
        }

    def render_text(self) -> str:
        lines = [finding.format() for finding in self.findings]
        lines.append(
            f"reprolint: {len(self.files_scanned)} files, "
            f"{len(self.findings)} findings, {len(self.suppressed)} suppressed"
        )
        return "\n".join(lines)

    def render_github(self) -> str:
        """GitHub Actions workflow commands: one ``::error`` per finding.

        The runner turns these into inline annotations on the PR diff; the
        trailing summary goes to the plain log either way.
        """
        lines = [
            f"::error file={f.path},line={f.line},col={f.col + 1},"
            f"title=reprolint {f.rule}::{f.message}"
            for f in self.findings
        ]
        lines.append(
            f"reprolint: {len(self.files_scanned)} files, "
            f"{len(self.findings)} findings, {len(self.suppressed)} suppressed"
        )
        return "\n".join(lines)

    def to_sarif(self) -> dict[str, object]:
        """The report as minimal SARIF 2.1.0 (for code-scanning upload)."""
        titles = rule_titles()
        return {
            "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
            "version": "2.1.0",
            "runs": [
                {
                    "tool": {
                        "driver": {
                            "name": "reprolint",
                            "informationUri": "docs/STATIC_ANALYSIS.md",
                            "rules": [
                                {
                                    "id": rule_id,
                                    "shortDescription": {"text": title},
                                }
                                for rule_id, title in sorted(titles.items())
                            ],
                        }
                    },
                    "results": [
                        {
                            "ruleId": finding.rule,
                            "level": "error",
                            "message": {"text": finding.message},
                            "locations": [
                                {
                                    "physicalLocation": {
                                        "artifactLocation": {"uri": finding.path},
                                        "region": {
                                            "startLine": finding.line,
                                            "startColumn": finding.col + 1,
                                        },
                                    }
                                }
                            ],
                        }
                        for finding in self.findings
                    ],
                }
            ],
        }

    def write_json(self, path: Path) -> None:
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_json(), indent=2) + "\n", encoding="utf-8")

    def write_sarif(self, path: Path) -> None:
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.to_sarif(), indent=2) + "\n", encoding="utf-8")


def collect_files(paths: list[Path], root: Path) -> list[SourceFile]:
    """Every ``.py`` file under ``paths`` (files or directories), sorted."""
    seen: set[Path] = set()
    collected: list[Path] = []
    for path in paths:
        target = path if path.is_absolute() else root / path
        if target.is_file() and target.suffix == ".py":
            candidates = [target]
        elif target.is_dir():
            candidates = sorted(target.rglob("*.py"))
        else:
            raise ReprolintError(f"no such file or directory: {path}")
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                collected.append(candidate)

    files: list[SourceFile] = []
    for path in sorted(collected):
        try:
            files.append(load_source_file(path, root))
        except SyntaxError as error:
            raise ReprolintError(f"syntax error in {path}: {error}") from error
        except ValueError as error:
            raise ReprolintError(
                f"{path} is outside the analysis root {root}: {error}"
            ) from error
    return files


def _suppression_hygiene(
    files: list[SourceFile], known_rules: set[str]
) -> list[Finding]:
    """RL000 findings: reasons required, ids known, nothing stale."""
    findings: list[Finding] = []
    for source_file in files:
        for suppression in source_file.suppressions:
            flagged = False
            if suppression.reason is None:
                findings.append(
                    Finding(
                        rule="RL000",
                        path=suppression.path,
                        line=suppression.comment_line,
                        col=0,
                        message=(
                            "suppression without a reason; write "
                            "'# reprolint: disable="
                            f"{','.join(suppression.rules)} -- <why this is safe>'"
                        ),
                    )
                )
                flagged = True
            for rule_id in suppression.rules:
                if rule_id == "RL000":
                    findings.append(
                        Finding(
                            rule="RL000",
                            path=suppression.path,
                            line=suppression.comment_line,
                            col=0,
                            message="RL000 (suppression hygiene) cannot be suppressed",
                        )
                    )
                    flagged = True
                elif rule_id not in known_rules:
                    findings.append(
                        Finding(
                            rule="RL000",
                            path=suppression.path,
                            line=suppression.comment_line,
                            col=0,
                            message=f"suppression names unknown rule {rule_id}",
                        )
                    )
                    flagged = True
            if flagged:
                continue
            stale = [
                rule_id
                for rule_id in suppression.rules
                if rule_id not in suppression.used_rules
            ]
            if stale:
                findings.append(
                    Finding(
                        rule="RL000",
                        path=suppression.path,
                        line=suppression.comment_line,
                        col=0,
                        message=(
                            f"stale suppression: {', '.join(stale)} matched no "
                            "finding on this line; delete it"
                        ),
                    )
                )
    return findings


def run_reprolint(paths: list[str | Path], root: str | Path | None = None) -> Report:
    """Analyze ``paths`` (relative to ``root``, default cwd) and report.

    Raises :class:`ReprolintError` for unusable inputs (missing paths,
    syntax errors); rule findings never raise.
    """
    root_path = Path(root) if root is not None else Path.cwd()
    root_path = root_path.resolve()
    files = collect_files([Path(p) for p in paths], root_path)

    index = ProjectIndex.build(files)
    context = RuleContext(files=files, index=index)

    raw_findings: list[Finding] = []
    for rule in registered_rules():
        raw_findings.extend(rule.check_project(context))
        for source_file in files:
            raw_findings.extend(rule.check_file(source_file, context))

    suppressions_by_path: dict[str, list[Suppression]] = {}
    for source_file in files:
        suppressions_by_path[source_file.relative_path] = source_file.suppressions

    report = Report(root=str(root_path), files_scanned=[f.relative_path for f in files])
    for finding in raw_findings:
        matched: Suppression | None = None
        for suppression in suppressions_by_path.get(finding.path, ()):
            if suppression.covers(finding):
                matched = suppression
                suppression.used_rules.add(finding.rule)
                break
        if matched is None:
            report.findings.append(finding)
        else:
            report.suppressed.append((finding, matched))

    report.findings.extend(
        _suppression_hygiene(files, set(registered_rule_ids()))
    )
    report.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return report
