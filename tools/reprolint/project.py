"""A lightweight whole-project index: modules, classes, functions, call edges.

Built once per run from the parsed ASTs, the index gives rules three things:

* **import aliasing** — ``np.random.default_rng`` is recognised whatever the
  module called ``numpy`` (RL001);
* **class/attribute typing** — a small, deliberately conservative inference
  pass (parameter annotations, ``self.x = Ctor(...)`` in ``__init__``,
  dataclass field annotations, return annotations) so method calls can be
  resolved to the class that actually receives them;
* **a call graph** — :meth:`ProjectIndex.reachable_functions` walks from an
  entry point through resolvable calls (RL004's shard-safety walk).

The resolver favours *precision over recall*: an attribute call whose
receiver type cannot be inferred is linked only when exactly one function in
the whole project bears that method name; otherwise the edge is dropped.  A
dropped edge can hide a violation, but a fabricated edge would drown the rule
in false positives — and the runtime parity tests remain the backstop.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .model import SourceFile


@dataclass
class AttributeStore:
    """One ``<expr>.attr = ...`` (or augmented/annotated) assignment."""

    attribute: str
    line: int
    col: int
    #: Receiver spelling (``self``, ``self.bandit``, ...) for messages.
    receiver: str


@dataclass
class FunctionInfo:
    """One function or method (nested functions get their own entry)."""

    qualname: str  # e.g. "repro.core.tuner.MabTuner._score_sharded.score_shard"
    name: str
    module: str  # dotted module name
    relative_path: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    class_name: str | None = None
    parent: "FunctionInfo | None" = None
    children: dict[str, "FunctionInfo"] = field(default_factory=dict)
    attribute_stores: list[AttributeStore] = field(default_factory=list)
    #: Call/reference expressions recorded for later resolution.
    call_sites: list[ast.expr] = field(default_factory=list)
    #: Conservative local variable typing: name -> project class name.
    local_types: dict[str, str] = field(default_factory=dict)
    #: ``name = some_call()`` assignments, typed once the index is complete.
    pending_call_types: list[tuple[str, ast.Call]] = field(default_factory=list)

    @property
    def return_class(self) -> str | None:
        return _annotation_class_name(self.node.returns)


@dataclass
class ClassInfo:
    name: str
    module: str
    relative_path: str
    node: ast.ClassDef
    methods: dict[str, FunctionInfo] = field(default_factory=dict)
    #: ``self.<attr>`` -> project class name (from __init__ and field types).
    attr_types: dict[str, str] = field(default_factory=dict)
    bases: tuple[str, ...] = ()


@dataclass
class ModuleInfo:
    dotted: str
    relative_path: str
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    classes: dict[str, ClassInfo] = field(default_factory=dict)
    #: local name -> fully dotted target ("np" -> "numpy",
    #: "shard_arms" -> "repro.core.arms.shard_arms").
    import_aliases: dict[str, str] = field(default_factory=dict)


def module_dotted_name(relative_path: str) -> str:
    """Dotted module name for a repo-relative path (src layout aware)."""
    parts = relative_path.split("/")
    if parts[0] == "src":
        parts = parts[1:]
    if not parts:
        return relative_path
    last = parts[-1]
    if last.endswith(".py"):
        last = last[: -len(".py")]
    parts = parts[:-1] + ([last] if last != "__init__" else [])
    return ".".join(parts) if parts else relative_path


def _annotation_class_name(annotation: ast.expr | None) -> str | None:
    """The bare class name an annotation resolves to, if it is a plain name.

    Handles string annotations (``-> "LinearScorer"``) and dotted names
    (takes the last component); gives up on unions, generics and ``None``.
    """
    if annotation is None:
        return None
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        try:
            annotation = ast.parse(annotation.value, mode="eval").body
        except SyntaxError:
            return None
    if isinstance(annotation, ast.Name):
        return annotation.id
    if isinstance(annotation, ast.Attribute):
        return annotation.attr
    return None


def dotted_call_name(node: ast.expr, aliases: dict[str, str]) -> str | None:
    """Fully-qualified dotted name of a call target, through import aliases.

    ``np.random.default_rng`` with ``import numpy as np`` resolves to
    ``numpy.random.default_rng``; ``randint`` with ``from random import
    randint`` resolves to ``random.randint``.  Returns ``None`` when the
    expression is not a plain (possibly dotted) name.
    """
    parts: list[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    parts.append(current.id)
    parts.reverse()
    head = aliases.get(parts[0], parts[0])
    return ".".join([head, *parts[1:]])


class _FunctionCollector(ast.NodeVisitor):
    """Collects functions/classes of one module without crossing scopes."""

    def __init__(self, module: ModuleInfo):
        self.module = module
        self._class_stack: list[ClassInfo] = []
        self._function_stack: list[FunctionInfo] = []

    # -------------------------- imports ------------------------------- #
    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            local = alias.asname or alias.name.split(".")[0]
            target = alias.name if alias.asname else alias.name.split(".")[0]
            self.module.import_aliases[local] = target

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        base = node.module or ""
        if node.level:
            package_parts = self.module.dotted.split(".")
            # Drop the module's own name, then one more per extra level.
            anchor = package_parts[: len(package_parts) - node.level]
            base = ".".join(anchor + ([base] if base else []))
        for alias in node.names:
            if alias.name == "*":
                continue
            local = alias.asname or alias.name
            self.module.import_aliases[local] = (
                f"{base}.{alias.name}" if base else alias.name
            )

    # -------------------------- defs ----------------------------------- #
    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        bases = tuple(
            name for name in (_annotation_class_name(base) for base in node.bases) if name
        )
        info = ClassInfo(
            name=node.name,
            module=self.module.dotted,
            relative_path=self.module.relative_path,
            node=node,
            bases=bases,
        )
        # Dataclass-style field annotations type the instance attributes.
        for statement in node.body:
            if isinstance(statement, ast.AnnAssign) and isinstance(
                statement.target, ast.Name
            ):
                annotated = _annotation_class_name(statement.annotation)
                if annotated:
                    info.attr_types[statement.target.id] = annotated
        self.module.classes[node.name] = info
        self._class_stack.append(info)
        for statement in node.body:
            self.visit(statement)
        self._class_stack.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._collect_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._collect_function(node)

    def _collect_function(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        parent = self._function_stack[-1] if self._function_stack else None
        enclosing_class = self._class_stack[-1] if self._class_stack and parent is None else None
        if parent is not None:
            qualname = f"{parent.qualname}.{node.name}"
        else:
            scope = f".{enclosing_class.name}" if enclosing_class is not None else ""
            qualname = f"{self.module.dotted}{scope}.{node.name}"
        info = FunctionInfo(
            qualname=qualname,
            name=node.name,
            module=self.module.dotted,
            relative_path=self.module.relative_path,
            node=node,
            class_name=enclosing_class.name if enclosing_class else (
                parent.class_name if parent else None
            ),
            parent=parent,
        )
        if parent is not None:
            parent.children[node.name] = info
        elif enclosing_class is not None:
            enclosing_class.methods[node.name] = info
        else:
            self.module.functions[node.name] = info

        self._seed_parameter_types(info)
        self._scan_body(info)

        self._function_stack.append(info)
        for statement in node.body:
            if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._collect_function(statement)
            elif isinstance(statement, ast.ClassDef):
                self.visit_ClassDef(statement)
            else:
                self._visit_nested_defs(statement)
        self._function_stack.pop()

        if info.name == "__init__" and enclosing_class is not None:
            self._harvest_init_attr_types(enclosing_class, info)

    def _visit_nested_defs(self, node: ast.AST) -> None:
        """Recurse into nested function/class definitions only."""
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._collect_function(child)
            elif isinstance(child, ast.ClassDef):
                self.visit_ClassDef(child)
            else:
                self._visit_nested_defs(child)

    def _seed_parameter_types(self, info: FunctionInfo) -> None:
        args = info.node.args
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            annotated = _annotation_class_name(arg.annotation)
            if annotated:
                info.local_types[arg.arg] = annotated

    def _scan_body(self, info: FunctionInfo) -> None:
        """Record attribute stores, call sites and local assignments.

        Stops at nested function/class boundaries — their bodies belong to
        their own :class:`FunctionInfo`.
        """

        def scan(node: ast.AST) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(
                    child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
                ):
                    continue
                if isinstance(child, ast.Assign):
                    for target in child.targets:
                        self._record_store_target(info, target)
                    self._record_local_type(info, child.targets, child.value)
                elif isinstance(child, (ast.AugAssign, ast.AnnAssign)):
                    if child.target is not None:
                        self._record_store_target(info, child.target)
                    if isinstance(child, ast.AnnAssign):
                        # Scan the value but not the annotation: a bare class
                        # name in an annotation is not a constructor call.
                        if child.value is not None:
                            scan(child.value)
                        continue
                elif isinstance(child, ast.Call):
                    info.call_sites.append(child)
                elif isinstance(child, ast.Name) and isinstance(child.ctx, ast.Load):
                    # A bare reference can be a callback handed to an executor.
                    info.call_sites.append(child)
                scan(child)

        # Scan only the body: parameter/return annotations are type
        # references, not calls or callback hand-offs.
        scan(ast.Module(body=list(info.node.body), type_ignores=[]))

    def _record_store_target(self, info: FunctionInfo, target: ast.expr) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._record_store_target(info, element)
            return
        if isinstance(target, ast.Attribute):
            receiver = ast.unparse(target.value)
            info.attribute_stores.append(
                AttributeStore(
                    attribute=target.attr,
                    line=target.lineno,
                    col=target.col_offset,
                    receiver=receiver,
                )
            )

    def _record_local_type(
        self, info: FunctionInfo, targets: list[ast.expr], value: ast.expr
    ) -> None:
        if len(targets) != 1 or not isinstance(targets[0], ast.Name):
            return
        name = targets[0].id
        if isinstance(value, ast.Name):
            existing = info.local_types.get(value.id)
            if existing:
                info.local_types[name] = existing
        elif isinstance(value, ast.Call):
            # Typed during a second pass, once the whole index is built and
            # the callee's return annotation can be resolved.
            info.pending_call_types.append((name, value))

    def _harvest_init_attr_types(self, cls: ClassInfo, init: FunctionInfo) -> None:
        for statement in ast.walk(init.node):
            if not isinstance(statement, ast.Assign) or len(statement.targets) != 1:
                continue
            target = statement.targets[0]
            if not (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                continue
            value = statement.value
            inferred: str | None = None
            if isinstance(value, ast.Call) and isinstance(value.func, ast.Name):
                inferred = value.func.id
            elif isinstance(value, ast.Name):
                inferred = init.local_types.get(value.id)
            if inferred:
                cls.attr_types.setdefault(target.attr, inferred)


#: Method names shared with the builtin containers/str: the unique-global-name
#: fallback must never link these, or every ``some_set.update(...)`` would be
#: resolved to a project method that happens to share the name.
_BUILTIN_METHOD_NAMES = frozenset(
    {
        "add",
        "append",
        "clear",
        "copy",
        "count",
        "discard",
        "extend",
        "format",
        "get",
        "index",
        "insert",
        "items",
        "join",
        "keys",
        "pop",
        "popitem",
        "remove",
        "reverse",
        "setdefault",
        "sort",
        "split",
        "strip",
        "update",
        "values",
        "write",
    }
)


class ProjectIndex:
    """Modules, classes and functions of every scanned file, plus resolution."""

    def __init__(self) -> None:
        self.modules: dict[str, ModuleInfo] = {}
        self.classes_by_name: dict[str, list[ClassInfo]] = {}
        self.methods_by_name: dict[str, list[FunctionInfo]] = {}

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    @classmethod
    def build(cls, files: Iterable["SourceFile"]) -> "ProjectIndex":
        index = cls()
        for source_file in files:
            module = ModuleInfo(
                dotted=module_dotted_name(source_file.relative_path),
                relative_path=source_file.relative_path,
            )
            _FunctionCollector(module).visit(source_file.tree)
            index.modules[module.dotted] = module
        for module in index.modules.values():
            for class_info in module.classes.values():
                index.classes_by_name.setdefault(class_info.name, []).append(class_info)
                for method in class_info.methods.values():
                    index.methods_by_name.setdefault(method.name, []).append(method)
        index._resolve_pending_call_types()
        return index

    def _resolve_pending_call_types(self) -> None:
        for function in self.iter_functions():
            for name, call in function.pending_call_types:
                resolved = self._infer_call_type(function, call)
                if resolved:
                    function.local_types[name] = resolved

    # ------------------------------------------------------------------ #
    # lookups
    # ------------------------------------------------------------------ #
    def iter_functions(self) -> Iterable[FunctionInfo]:
        def walk(function: FunctionInfo) -> Iterable[FunctionInfo]:
            yield function
            for child in function.children.values():
                yield from walk(child)

        for module in self.modules.values():
            for function in module.functions.values():
                yield from walk(function)
            for class_info in module.classes.values():
                for method in class_info.methods.values():
                    yield from walk(method)

    def find_functions(self, qualname_suffix: str) -> list[FunctionInfo]:
        """Functions whose qualified name ends with ``qualname_suffix``."""
        return [
            function
            for function in self.iter_functions()
            if function.qualname == qualname_suffix
            or function.qualname.endswith("." + qualname_suffix)
        ]

    def find_class(self, name: str, preferred_module: str | None = None) -> ClassInfo | None:
        candidates = self.classes_by_name.get(name, [])
        if not candidates:
            return None
        if preferred_module is not None:
            for candidate in candidates:
                if candidate.module == preferred_module:
                    return candidate
        return candidates[0]

    def class_method(self, class_name: str, method: str) -> FunctionInfo | None:
        """Look ``method`` up on ``class_name``, walking base classes by name."""
        seen: set[str] = set()
        queue = [class_name]
        while queue:
            current = queue.pop(0)
            if current in seen:
                continue
            seen.add(current)
            class_info = self.find_class(current)
            if class_info is None:
                continue
            if method in class_info.methods:
                return class_info.methods[method]
            queue.extend(class_info.bases)
        return None

    # ------------------------------------------------------------------ #
    # resolution
    # ------------------------------------------------------------------ #
    def _effective_local_types(self, function: FunctionInfo) -> dict[str, str]:
        """Local types including those inherited from enclosing functions."""
        chain: list[FunctionInfo] = []
        current: FunctionInfo | None = function
        while current is not None:
            chain.append(current)
            current = current.parent
        merged: dict[str, str] = {}
        for enclosing in reversed(chain):
            merged.update(enclosing.local_types)
        return merged

    def _infer_receiver_type(
        self, function: FunctionInfo, node: ast.expr
    ) -> str | None:
        local_types = self._effective_local_types(function)
        if isinstance(node, ast.Name):
            if node.id == "self" and function.class_name:
                return function.class_name
            return local_types.get(node.id)
        if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
            owner = (
                function.class_name
                if node.value.id == "self" and function.class_name
                else local_types.get(node.value.id)
            )
            if owner:
                class_info = self.find_class(owner)
                if class_info:
                    return class_info.attr_types.get(node.attr)
        if isinstance(node, ast.Call):
            return self._infer_call_type(function, node)
        return None

    def _infer_call_type(self, function: FunctionInfo, call: ast.Call) -> str | None:
        """Class produced by a call: constructor or annotated return type."""
        callee = self.resolve_call(function, call.func)
        if isinstance(callee, ClassInfo):
            return callee.name
        if isinstance(callee, FunctionInfo):
            return callee.return_class
        return None

    def resolve_call(
        self, function: FunctionInfo, func_expr: ast.expr
    ) -> "FunctionInfo | ClassInfo | None":
        """Resolve a call expression to a project function or class."""
        module = self.modules.get(function.module)
        if isinstance(func_expr, ast.Name):
            name = func_expr.id
            # Nested sibling / enclosing-scope function.
            current: FunctionInfo | None = function
            while current is not None:
                if name in current.children:
                    return current.children[name]
                if current.name == name:
                    return current
                current = current.parent
            if module is not None:
                if name in module.functions:
                    return module.functions[name]
                if name in module.classes:
                    return module.classes[name]
                alias = module.import_aliases.get(name)
                if alias is not None:
                    return self._resolve_dotted(alias)
            # Same-class method referenced without self (rare) — skip.
            return None
        if isinstance(func_expr, ast.Attribute):
            receiver = self._infer_receiver_type(function, func_expr.value)
            if receiver is not None:
                method = self.class_method(receiver, func_expr.attr)
                if method is not None:
                    return method
                # Known receiver but unknown method: do not fall through to
                # the global name match, which could link a different class.
                return None
            if func_expr.attr not in _BUILTIN_METHOD_NAMES:
                candidates = self.methods_by_name.get(func_expr.attr, [])
                if len(candidates) == 1:
                    return candidates[0]
        return None

    def _resolve_dotted(self, dotted: str) -> "FunctionInfo | ClassInfo | None":
        module_part, _, name = dotted.rpartition(".")
        module = self.modules.get(module_part)
        if module is None:
            return None
        if name in module.functions:
            return module.functions[name]
        if name in module.classes:
            return module.classes[name]
        return None

    # ------------------------------------------------------------------ #
    # reachability
    # ------------------------------------------------------------------ #
    def reachable_functions(self, entry: FunctionInfo) -> list[FunctionInfo]:
        """Every project function reachable from ``entry`` (entry included)."""
        seen: dict[str, FunctionInfo] = {}
        queue: list[FunctionInfo] = [entry]
        while queue:
            function = queue.pop()
            if function.qualname in seen:
                continue
            seen[function.qualname] = function
            for site in function.call_sites:
                # A Call resolves through its func; a bare Name reference (a
                # callback handed onwards) resolves directly.
                func_expr = site.func if isinstance(site, ast.Call) else site
                target = self.resolve_call(function, func_expr)
                if isinstance(target, ClassInfo):
                    for hook in ("__init__", "__post_init__"):
                        method = target.methods.get(hook)
                        if method is not None and method.qualname not in seen:
                            queue.append(method)
                    continue
                if isinstance(target, FunctionInfo) and target.qualname not in seen:
                    queue.append(target)
        return list(seen.values())
