"""Repo-native developer tooling (not shipped with the ``repro`` package)."""
