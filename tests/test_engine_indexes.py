"""Unit tests for secondary-index definitions, sizes and prefix logic."""

import pytest

from repro.engine import IndexDefinition, SchemaError, deduplicate, remove_prefix_redundant
from tests.conftest import make_sales_query


class TestDefinition:
    def test_index_id_encodes_key_and_includes(self):
        index = IndexDefinition("sales", ("day", "channel"), ("amount",))
        assert index.index_id == "ix_sales_day_channel(+amount)"

    def test_requires_key_columns(self):
        with pytest.raises(SchemaError):
            IndexDefinition("sales", ())

    def test_duplicate_key_columns_rejected(self):
        with pytest.raises(SchemaError):
            IndexDefinition("sales", ("day", "day"))

    def test_key_include_overlap_rejected(self):
        with pytest.raises(SchemaError):
            IndexDefinition("sales", ("day",), ("day",))

    def test_leading_column_and_prefix(self):
        index = IndexDefinition("sales", ("day", "channel", "amount"))
        assert index.leading_column() == "day"
        assert index.key_prefix(2) == ("day", "channel")

    def test_is_prefix_of(self):
        narrow = IndexDefinition("sales", ("day",))
        wide = IndexDefinition("sales", ("day", "channel"))
        other_table = IndexDefinition("customers", ("day",))
        assert narrow.is_prefix_of(wide)
        assert not wide.is_prefix_of(narrow)
        assert not other_table.is_prefix_of(wide)
        assert narrow.is_prefix_of(narrow)

    def test_covers_columns_and_query(self):
        index = IndexDefinition("sales", ("day", "channel"), ("amount",))
        assert index.covers_columns(("day", "amount"))
        assert not index.covers_columns(("day", "product_id"))
        query = make_sales_query()  # references amount, day, channel
        assert index.covers_query(query)

    def test_seekable_prefix_length(self):
        index = IndexDefinition("sales", ("day", "channel", "amount"))
        assert index.seekable_prefix_length({"day", "channel"}) == 2
        assert index.seekable_prefix_length({"channel"}) == 0
        assert index.seekable_prefix_length({"day", "amount"}) == 1


class TestSizing:
    def test_size_grows_with_columns(self, tiny_database_readonly):
        data = tiny_database_readonly.table_data("sales")
        narrow = IndexDefinition("sales", ("day",))
        wide = IndexDefinition("sales", ("day",), ("amount", "channel", "product_id"))
        assert wide.size_bytes(data) > narrow.size_bytes(data)

    def test_size_smaller_than_heap_for_narrow_index(self, tiny_database_readonly):
        data = tiny_database_readonly.table_data("sales")
        narrow = IndexDefinition("sales", ("day",))
        assert narrow.size_bytes(data) < data.total_bytes

    def test_depth_is_bounded(self, tiny_database_readonly):
        data = tiny_database_readonly.table_data("sales")
        index = IndexDefinition("sales", ("day", "channel"))
        assert 1 <= index.depth(data) <= 6

    def test_leaf_pages_positive(self, tiny_database_readonly):
        data = tiny_database_readonly.table_data("customers")
        index = IndexDefinition("customers", ("region",))
        assert index.leaf_pages(data) >= 1


class TestHelpers:
    def test_deduplicate_preserves_order(self):
        a = IndexDefinition("sales", ("day",))
        b = IndexDefinition("sales", ("channel",))
        assert deduplicate([a, b, a]) == [a, b]

    def test_remove_prefix_redundant(self):
        narrow = IndexDefinition("sales", ("day",))
        wide = IndexDefinition("sales", ("day", "channel"))
        unrelated = IndexDefinition("sales", ("channel",))
        survivors = remove_prefix_redundant([narrow, wide, unrelated])
        assert narrow not in survivors
        assert wide in survivors and unrelated in survivors
