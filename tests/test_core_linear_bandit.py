"""Tests for the C²UCB linear bandit learner."""

import numpy as np
import pytest

from repro.core import C2UCB


class TestInitialisation:
    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            C2UCB(dimension=0)
        with pytest.raises(ValueError):
            C2UCB(dimension=3, regularisation=0)

    def test_initial_state(self):
        bandit = C2UCB(dimension=3, regularisation=2.0)
        assert np.allclose(bandit.scatter_matrix, 2.0 * np.eye(3))
        assert np.allclose(bandit.response_vector, np.zeros(3))
        assert np.allclose(bandit.theta(), np.zeros(3))


class TestScoring:
    def test_ucb_at_least_expected_reward(self):
        bandit = C2UCB(dimension=4)
        contexts = np.random.default_rng(0).normal(size=(6, 4))
        expected = bandit.expected_rewards(contexts)
        ucb = bandit.upper_confidence_scores(contexts, alpha=1.0)
        assert np.all(ucb >= expected - 1e-12)

    def test_alpha_zero_means_pure_exploitation(self):
        bandit = C2UCB(dimension=4)
        contexts = np.random.default_rng(1).normal(size=(5, 4))
        assert np.allclose(
            bandit.upper_confidence_scores(contexts, alpha=0.0),
            bandit.expected_rewards(contexts),
        )

    def test_negative_alpha_rejected(self):
        bandit = C2UCB(dimension=2)
        with pytest.raises(ValueError):
            bandit.upper_confidence_scores(np.zeros((1, 2)), alpha=-1.0)

    def test_context_shape_validation(self):
        bandit = C2UCB(dimension=3)
        with pytest.raises(ValueError):
            bandit.expected_rewards(np.zeros((2, 4)))

    def test_one_dimensional_context_accepted(self):
        bandit = C2UCB(dimension=3)
        assert bandit.expected_rewards(np.zeros(3)).shape == (1,)


class TestLearning:
    def test_recovers_linear_reward_model(self):
        rng = np.random.default_rng(7)
        true_theta = np.array([1.5, -2.0, 0.5, 0.0, 3.0])
        bandit = C2UCB(dimension=5, regularisation=0.1)
        for _ in range(200):
            contexts = rng.normal(size=(4, 5))
            rewards = contexts @ true_theta + rng.normal(scale=0.01, size=4)
            bandit.update(contexts, rewards)
        assert np.allclose(bandit.theta(), true_theta, atol=0.05)

    def test_exploration_bonus_shrinks_with_observations(self):
        bandit = C2UCB(dimension=3)
        context = np.array([[1.0, 0.5, 0.0]])
        before = bandit.exploration_bonus(context)[0]
        for _ in range(50):
            bandit.update(context, np.array([1.0]))
        after = bandit.exploration_bonus(context)[0]
        assert after < before / 3

    def test_update_length_mismatch_rejected(self):
        bandit = C2UCB(dimension=2)
        with pytest.raises(ValueError):
            bandit.update(np.zeros((2, 2)), np.zeros(3))

    def test_empty_update_counts_round(self):
        bandit = C2UCB(dimension=2)
        bandit.update(np.zeros((0, 2)), np.zeros(0))
        assert bandit.rounds_observed == 1
        assert bandit.observations == 0

    def test_scatter_matrix_stays_positive_definite(self):
        rng = np.random.default_rng(3)
        bandit = C2UCB(dimension=4)
        for _ in range(20):
            bandit.update(rng.normal(size=(3, 4)), rng.normal(size=3))
        eigenvalues = np.linalg.eigvalsh(bandit.scatter_matrix)
        assert np.all(eigenvalues > 0)


class TestIncrementalInverse:
    """The maintained V^{-1} must match np.linalg.inv without ever calling it
    in the steady state."""

    def test_equivalence_over_random_update_forget_interleavings(self):
        rng = np.random.default_rng(42)
        dimension = 12
        bandit = C2UCB(dimension=dimension, regularisation=0.7, refresh_interval=64)
        for step in range(200):
            action = rng.uniform()
            if action < 0.15:
                bandit.forget(float(rng.uniform(0.2, 0.9)))
            else:
                k = int(rng.integers(1, 5))
                contexts = rng.normal(size=(k, dimension))
                rewards = rng.normal(size=k)
                bandit.update(contexts, rewards)
            reference = np.linalg.inv(bandit.scatter_matrix)
            assert np.allclose(bandit._inverse(), reference, atol=1e-8)
            assert np.allclose(bandit.theta(), reference @ bandit.response_vector, atol=1e-8)

    def test_no_full_inversion_in_steady_state(self):
        rng = np.random.default_rng(5)
        dimension = 16
        bandit = C2UCB(dimension=dimension, refresh_interval=10_000)
        contexts_pool = rng.normal(size=(50, dimension))
        # Warm-up round, then measure: scoring + rank-k updates must not
        # trigger any np.linalg.inv call.
        bandit.update(contexts_pool[:3], rng.normal(size=3))
        baseline = bandit.inversion_count
        for _ in range(100):
            bandit.upper_confidence_scores(contexts_pool, alpha=1.0)
            k = int(rng.integers(1, 4))
            rows = rng.integers(0, len(contexts_pool), size=k)
            bandit.update(contexts_pool[rows], rng.normal(size=k))
        assert bandit.inversion_count == baseline == 0

    def test_periodic_refresh_triggers_full_inversion(self):
        rng = np.random.default_rng(6)
        bandit = C2UCB(dimension=4, refresh_interval=8)
        for _ in range(16):
            bandit.update(rng.normal(size=(1, 4)), rng.normal(size=1))
        assert bandit.inversion_count >= 2

    def test_forget_reinverts_lazily_not_eagerly(self):
        rng = np.random.default_rng(7)
        bandit = C2UCB(dimension=4, refresh_interval=10_000)
        bandit.update(rng.normal(size=(3, 4)), rng.normal(size=3))
        before = bandit.inversion_count
        bandit.forget(0.5)
        assert bandit.inversion_count == before
        bandit.theta()
        assert bandit.inversion_count == before + 1


class TestForgettingAndReset:
    def test_forget_keeps_theta_consistent_with_blended_state(self):
        """theta() after forget must equal V_blend^{-1} b_blend exactly."""
        rng = np.random.default_rng(11)
        bandit = C2UCB(dimension=6, regularisation=2.0)
        for _ in range(20):
            bandit.update(rng.normal(size=(2, 6)), rng.normal(size=2))
        keep = 0.35
        expected_v = keep * bandit.scatter_matrix + (1 - keep) * 2.0 * np.eye(6)
        expected_b = keep * bandit.response_vector
        bandit.forget(keep)
        assert np.allclose(bandit.scatter_matrix, expected_v)
        assert np.allclose(bandit.response_vector, expected_b)
        assert np.allclose(bandit.theta(), np.linalg.solve(expected_v, expected_b), atol=1e-10)

    def test_forget_interpolates_towards_prior(self):
        bandit = C2UCB(dimension=2, regularisation=1.0)
        bandit.update(np.array([[1.0, 0.0]]), np.array([5.0]))
        theta_before = bandit.theta()[0]
        bandit.forget(0.5)
        theta_after = bandit.theta()[0]
        assert 0 < theta_after < theta_before
        bandit.forget(0.0)
        assert np.allclose(bandit.theta(), np.zeros(2))

    def test_forget_validation(self):
        bandit = C2UCB(dimension=2)
        with pytest.raises(ValueError):
            bandit.forget(1.5)

    def test_reset_restores_initial_state(self):
        bandit = C2UCB(dimension=2)
        bandit.update(np.ones((1, 2)), np.array([1.0]))
        bandit.reset()
        assert np.allclose(bandit.theta(), np.zeros(2))
        assert bandit.observations == 0

    def test_tie_break_is_tiny(self):
        bandit = C2UCB(dimension=2)
        jitter = bandit.tie_break(10)
        assert jitter.shape == (10,)
        assert np.all(np.abs(jitter) < 1e-6)
