"""Unit tests for the perf-trajectory guard (``benchmarks/check_perf_trajectory.py``).

The guard is CI infrastructure: it blocks a PR from silently committing a
slower ``BENCH_recommend.json`` over the recorded trajectory.  Its comparison
logic is tested here, inside tier-1, so the guard itself cannot rot.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

_MODULE_PATH = Path(__file__).parent.parent / "benchmarks" / "check_perf_trajectory.py"
_spec = importlib.util.spec_from_file_location("check_perf_trajectory", _MODULE_PATH)
check_perf_trajectory = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(check_perf_trajectory)

collect_p50s = check_perf_trajectory.collect_p50s
compare = check_perf_trajectory.compare
main = check_perf_trajectory.main


def payload(p50_at_500: float, extra: dict | None = None) -> dict:
    body = {
        "incremental": {
            "500": {"p50_ms": p50_at_500, "p95_ms": p50_at_500 * 2},
            "2000": {"p50_ms": p50_at_500 * 4},
        },
        "recommend_sharded": {
            "series": {"500": {"max_shard": {"p50_ms": 0.05}}},
        },
    }
    body.update(extra or {})
    return body


class TestCollect:
    def test_flattens_nested_series_by_json_path(self):
        series = collect_p50s(payload(0.2))
        assert series == {
            "incremental.500": 0.2,
            "incremental.2000": 0.8,
            "recommend_sharded.series.500.max_shard": 0.05,
        }

    def test_ignores_non_numeric_and_boolean_p50(self):
        assert collect_p50s({"a": {"p50_ms": "fast"}, "b": {"p50_ms": True}}) == {}

    def test_empty_payload(self):
        assert collect_p50s({}) == {}
        assert collect_p50s({"smoke_mode": True, "rounds": 30}) == {}


class TestCompare:
    def test_within_bar_passes(self):
        regressions, shared = compare(payload(0.2), payload(0.9), max_regression=5.0)
        assert regressions == []
        assert len(shared) == 3

    def test_regression_beyond_bar_is_reported(self):
        regressions, shared = compare(payload(0.2), payload(1.2), max_regression=5.0)
        assert [name for name, *_ in regressions] == [
            "incremental.2000",
            "incremental.500",
        ]
        name, base_ms, cand_ms, ratio = regressions[1]
        assert (base_ms, cand_ms) == (0.2, 1.2)
        assert ratio == pytest.approx(6.0)

    def test_only_shared_series_are_compared(self):
        baseline = payload(0.2, {"retired_series": {"p50_ms": 1.0}})
        candidate = payload(0.2, {"brand_new_series": {"p50_ms": 99.0}})
        regressions, shared = compare(baseline, candidate, max_regression=5.0)
        assert regressions == []
        assert "retired_series" not in shared
        assert "brand_new_series" not in shared

    def test_zero_baseline_is_skipped(self):
        regressions, shared = compare(
            {"a": {"p50_ms": 0.0}}, {"a": {"p50_ms": 5.0}}, max_regression=5.0
        )
        assert regressions == [] and shared == []


class TestCli:
    def write(self, tmp_path: Path, name: str, body: dict) -> Path:
        path = tmp_path / name
        path.write_text(json.dumps(body))
        return path

    def test_exit_zero_on_healthy_candidate(self, tmp_path, capsys):
        base = self.write(tmp_path, "base.json", payload(0.2))
        cand = self.write(tmp_path, "cand.json", payload(0.3))
        assert main([str(base), str(cand)]) == 0
        assert "3 series compared" in capsys.readouterr().out

    def test_exit_one_on_regression(self, tmp_path, capsys):
        base = self.write(tmp_path, "base.json", payload(0.2))
        cand = self.write(tmp_path, "cand.json", payload(2.5))
        assert main([str(base), str(cand), "--max-regression", "5"]) == 1
        assert "FAIL incremental.500" in capsys.readouterr().err

    def test_exit_two_on_missing_file_or_no_overlap(self, tmp_path, capsys):
        base = self.write(tmp_path, "base.json", payload(0.2))
        assert main([str(base), str(tmp_path / "absent.json")]) == 2
        other = self.write(tmp_path, "other.json", {"unrelated": {"p50_ms": 1.0}})
        assert main([str(base), str(other)]) == 2
        assert "no overlapping" in capsys.readouterr().err

    def test_committed_artifact_is_a_valid_baseline(self, tmp_path):
        """The file in the repo must always work as the guard's baseline."""
        committed = Path(__file__).parent.parent / "benchmarks" / "results" / "BENCH_recommend.json"
        series = collect_p50s(json.loads(committed.read_text()))
        assert "incremental.500" in series
        assert all(value > 0 for value in series.values())


class TestDirectoryMode:
    def write_dir(self, root: Path, files: dict[str, dict]) -> Path:
        root.mkdir(exist_ok=True)
        for name, body in files.items():
            (root / name).write_text(json.dumps(body))
        return root

    def tiered(self, p50: float) -> dict:
        return {"placements": {"hot_cold": {"wall_step": {"p50_ms": p50}}}}

    def test_compares_every_guarded_file_present_in_both(self, tmp_path, capsys):
        base = self.write_dir(
            tmp_path / "base",
            {"BENCH_recommend.json": payload(0.2), "BENCH_tiered.json": self.tiered(10.0)},
        )
        cand = self.write_dir(
            tmp_path / "cand",
            {"BENCH_recommend.json": payload(0.3), "BENCH_tiered.json": self.tiered(12.0)},
        )
        assert main([str(base), str(cand)]) == 0
        out = capsys.readouterr().out
        assert "4 series compared" in out
        assert "BENCH_tiered.json:placements.hot_cold.wall_step" in out

    def test_regression_in_any_guarded_file_fails(self, tmp_path, capsys):
        base = self.write_dir(
            tmp_path / "base",
            {"BENCH_recommend.json": payload(0.2), "BENCH_tiered.json": self.tiered(10.0)},
        )
        cand = self.write_dir(
            tmp_path / "cand",
            {"BENCH_recommend.json": payload(0.2), "BENCH_tiered.json": self.tiered(90.0)},
        )
        assert main([str(base), str(cand), "--max-regression", "5"]) == 1
        assert "FAIL BENCH_tiered.json:placements.hot_cold.wall_step" in capsys.readouterr().err

    def test_missing_guarded_file_is_skipped_not_fatal(self, tmp_path):
        """A PR adding a new guarded file still passes against an old baseline."""
        base = self.write_dir(tmp_path / "base", {"BENCH_recommend.json": payload(0.2)})
        cand = self.write_dir(
            tmp_path / "cand",
            {"BENCH_recommend.json": payload(0.2), "BENCH_tiered.json": self.tiered(1.0)},
        )
        assert main([str(base), str(cand)]) == 0

    def test_no_guarded_files_at_all_is_an_error(self, tmp_path, capsys):
        base = self.write_dir(tmp_path / "base", {"other.json": payload(0.2)})
        cand = self.write_dir(tmp_path / "cand", {"other.json": payload(0.2)})
        assert main([str(base), str(cand)]) == 2
        assert "no guarded files" in capsys.readouterr().err

    def test_mixing_file_and_directory_is_an_error(self, tmp_path, capsys):
        base = self.write_dir(tmp_path / "base", {"BENCH_recommend.json": payload(0.2)})
        lone = tmp_path / "cand.json"
        lone.write_text(json.dumps(payload(0.2)))
        assert main([str(base), str(lone)]) == 2
        assert "not a mixture" in capsys.readouterr().err
