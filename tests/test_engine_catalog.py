"""Unit tests for the database catalog: index DDL and the memory budget."""

import pytest

from repro.engine import (
    Database,
    DuplicateIndexError,
    IndexDefinition,
    MemoryBudgetExceededError,
    UnknownIndexError,
    UnknownTableError,
)
from tests.conftest import build_tiny_schema, build_tiny_specs


class TestConstruction:
    def test_from_specs_builds_all_tables(self, tiny_database_readonly):
        assert set(tiny_database_readonly.table_names) == {"sales", "customers"}
        assert tiny_database_readonly.data_size_bytes > 0

    def test_missing_table_spec_raises(self):
        with pytest.raises(UnknownTableError):
            Database.from_specs(
                schema=build_tiny_schema(),
                table_specs=build_tiny_specs()[:1],  # customers missing
                sample_rows=100,
            )

    def test_statistics_catalog_populated(self, tiny_database_readonly):
        statistics = tiny_database_readonly.statistics
        assert statistics.row_count("sales") == 200_000
        assert statistics.column("sales", "channel") is not None

    def test_summary(self, tiny_database_readonly):
        summary = tiny_database_readonly.summary()
        assert summary["schema"] == "tiny"
        assert "sales" in summary["tables"]


class TestRefreshStatistics:
    def test_refresh_invalidates_size_caches_and_rebuilds_statistics(self, tiny_database):
        from repro.engine import build_table_data

        index = IndexDefinition("sales", ("day",), ("amount",))
        # Prime every statistics-derived cache.
        size_before = tiny_database.index_size_bytes(index)
        data_size_before = tiny_database.data_size_bytes
        assert tiny_database.statistics.row_count("sales") == 200_000

        # The sales table doubles in logical size (same sample, new row count).
        old = tiny_database.table_data("sales")
        tiny_database._tables["sales"] = build_table_data(
            old.table, old.columns, full_row_count=old.full_row_count * 2
        )
        # Caches still serve the pre-change estimates until a refresh...
        assert tiny_database.index_size_bytes(index) == size_before
        assert tiny_database.data_size_bytes == data_size_before

        tiny_database.refresh_statistics()
        assert tiny_database.statistics.row_count("sales") == 400_000
        assert tiny_database.index_size_bytes(index) > size_before
        assert tiny_database.data_size_bytes > data_size_before


class TestIndexDDL:
    def test_create_and_drop_index(self, tiny_database):
        index = IndexDefinition("sales", ("day",), ("amount",))
        creation_seconds = tiny_database.create_index(index)
        assert creation_seconds > 0
        assert tiny_database.has_index(index)
        assert tiny_database.used_index_bytes == tiny_database.index_size_bytes(index)
        drop_seconds = tiny_database.drop_index(index)
        assert drop_seconds >= 0
        assert not tiny_database.has_index(index)
        assert tiny_database.used_index_bytes == 0

    def test_duplicate_creation_rejected(self, tiny_database):
        index = IndexDefinition("sales", ("day",))
        tiny_database.create_index(index)
        with pytest.raises(DuplicateIndexError):
            tiny_database.create_index(index)

    def test_drop_unknown_index_rejected(self, tiny_database):
        with pytest.raises(UnknownIndexError):
            tiny_database.drop_index(IndexDefinition("sales", ("day",)))

    def test_memory_budget_enforced(self, tiny_database):
        tiny_database.memory_budget_bytes = 1  # effectively zero
        with pytest.raises(MemoryBudgetExceededError):
            tiny_database.create_index(IndexDefinition("sales", ("day",)))

    def test_indexes_for_table(self, tiny_database):
        sales_index = IndexDefinition("sales", ("day",))
        customer_index = IndexDefinition("customers", ("region",))
        tiny_database.create_index(sales_index)
        tiny_database.create_index(customer_index)
        assert tiny_database.indexes_for_table("sales") == [sales_index]

    def test_drop_all_indexes(self, tiny_database):
        tiny_database.create_index(IndexDefinition("sales", ("day",)))
        tiny_database.create_index(IndexDefinition("customers", ("region",)))
        tiny_database.drop_all_indexes()
        assert tiny_database.materialised_indexes == []


class TestApplyConfiguration:
    def test_transition_creates_and_drops(self, tiny_database):
        first = IndexDefinition("sales", ("day",))
        second = IndexDefinition("sales", ("channel",))
        change = tiny_database.apply_configuration([first])
        assert [index.index_id for index in change.created] == [first.index_id]
        change = tiny_database.apply_configuration([second])
        assert [index.index_id for index in change.dropped] == [first.index_id]
        assert [index.index_id for index in change.created] == [second.index_id]
        assert change.creation_seconds_by_index[second.index_id] > 0

    def test_idempotent_configuration(self, tiny_database):
        index = IndexDefinition("sales", ("day",))
        tiny_database.apply_configuration([index])
        change = tiny_database.apply_configuration([index])
        assert change.created == [] and change.dropped == []
        assert change.total_seconds == 0

    def test_over_budget_indexes_skipped_not_raised(self, tiny_database):
        tiny_database.memory_budget_bytes = 1
        change = tiny_database.apply_configuration([IndexDefinition("sales", ("day",))])
        assert change.created == []
        assert not tiny_database.materialised_indexes

    def test_fits_in_budget(self, tiny_database):
        small = IndexDefinition("customers", ("region",))
        assert tiny_database.fits_in_budget([small])
        tiny_database.memory_budget_bytes = 10
        assert not tiny_database.fits_in_budget([small])
        assert tiny_database.available_index_bytes == 10
