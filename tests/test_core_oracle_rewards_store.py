"""Tests for the greedy oracle, reward shaping and the query store."""

import pytest

from repro.core import Arm, GreedyOracle, QueryStore, ScoredArm, compute_round_rewards, super_arm_reward
from repro.engine import ConfigurationChange, ExecutionResult, IndexDefinition, TableAccessResult
from tests.conftest import make_sales_query


def scored(table: str, key: tuple[str, ...], score: float, size: int,
           templates: set[str] | None = None, covering: bool = False) -> ScoredArm:
    arm = Arm(index=IndexDefinition(table, key), source_templates=templates or {"t"})
    if covering:
        arm.covering_for_queries = {"q#1"}
    return ScoredArm(arm=arm, score=score, size_bytes=size)


class TestGreedyOracle:
    def test_prunes_negative_scores(self):
        result = GreedyOracle().select([scored("sales", ("day",), -1.0, 10)], None)
        assert result.selected == []

    def test_respects_memory_budget(self):
        arms = [
            scored("sales", ("day",), 3.0, 100),
            scored("customers", ("region",), 2.0, 100),
            scored("sales", ("channel",), 1.0, 100),
        ]
        result = GreedyOracle().select(arms, memory_budget_bytes=150)
        assert len(result.selected) == 1
        assert result.total_size_bytes <= 150

    def test_greedy_order_by_score(self):
        arms = [
            scored("sales", ("day",), 1.0, 10),
            scored("customers", ("region",), 5.0, 10),
        ]
        result = GreedyOracle().select(arms, None)
        assert result.selected[0].score == 5.0

    def test_same_leading_column_filtered_within_round(self):
        arms = [
            scored("sales", ("day", "channel"), 5.0, 10),
            scored("sales", ("day",), 4.0, 10),
            scored("sales", ("channel",), 3.0, 10),
        ]
        result = GreedyOracle().select(arms, None)
        keys = {s.arm.index.key_columns for s in result.selected}
        assert ("day", "channel") in keys
        assert ("day",) not in keys  # same table and leading column as the selected arm
        assert ("channel",) in keys

    def test_covering_index_filters_other_arms_of_same_template(self):
        covering = scored("sales", ("day",), 5.0, 10, templates={"t1"}, covering=True)
        other_same_template = scored("sales", ("channel",), 4.0, 10, templates={"t1"})
        other_template = scored("customers", ("region",), 3.0, 10, templates={"t2"})
        result = GreedyOracle().select([covering, other_same_template, other_template], None)
        ids = result.selected_index_ids
        assert covering.index_id in ids
        assert other_same_template.index_id not in ids
        assert other_template.index_id in ids

    def test_skips_too_large_arm_but_considers_smaller(self):
        arms = [
            scored("sales", ("day",), 5.0, 1000),
            scored("customers", ("region",), 1.0, 50),
        ]
        result = GreedyOracle().select(arms, memory_budget_bytes=100)
        assert [s.arm.table for s in result.selected] == ["customers"]

    def test_unbudgeted_selection_takes_all_positive_diverse_arms(self):
        arms = [
            scored("sales", ("day",), 2.0, 10),
            scored("customers", ("region",), 1.0, 10),
        ]
        result = GreedyOracle().select(arms, None)
        assert len(result.selected) == 2
        assert result.total_score == pytest.approx(3.0)

    def test_empty_input(self):
        result = GreedyOracle().select([], 100)
        assert result.selected == [] and result.total_size_bytes == 0


def execution_result_with_access(index_id, gain, full_scan=10.0, query="q#1", template="q"):
    actual = full_scan - gain
    return ExecutionResult(
        query_id=query,
        template_id=template,
        total_seconds=actual,
        access_results=[
            TableAccessResult(
                table="sales",
                method="index_seek",
                index_id=index_id,
                actual_seconds=actual,
                full_scan_seconds=full_scan,
                true_rows=100,
            )
        ],
    )


class TestRewards:
    def test_gain_summed_across_queries(self):
        results = [
            execution_result_with_access("ix_a", 4.0, query="q#1"),
            execution_result_with_access("ix_a", 3.0, query="q#2"),
        ]
        rewards = compute_round_rewards(results, ConfigurationChange())
        assert rewards.reward_for("ix_a") == pytest.approx(7.0)
        assert rewards.used_index_ids == {"ix_a"}

    def test_creation_cost_charged_once(self):
        results = [execution_result_with_access("ix_a", 4.0)]
        change = ConfigurationChange(creation_seconds_by_index={"ix_a": 10.0})
        rewards = compute_round_rewards(results, change)
        assert rewards.reward_for("ix_a") == pytest.approx(-6.0)

    def test_unused_created_index_gets_pure_penalty(self):
        change = ConfigurationChange(creation_seconds_by_index={"ix_b": 5.0})
        rewards = compute_round_rewards([], change)
        assert rewards.reward_for("ix_b") == pytest.approx(-5.0)
        assert rewards.reward_for("ix_unknown") == 0.0

    def test_negative_gain_regression(self):
        results = [execution_result_with_access("ix_a", -3.0)]
        rewards = compute_round_rewards(results, ConfigurationChange())
        assert rewards.reward_for("ix_a") == pytest.approx(-3.0)

    def test_creation_cost_weight(self):
        change = ConfigurationChange(creation_seconds_by_index={"ix_a": 10.0})
        rewards = compute_round_rewards([], change, creation_cost_weight=0.5)
        assert rewards.reward_for("ix_a") == pytest.approx(-5.0)

    def test_super_arm_reward_sums_played_arms(self):
        results = [execution_result_with_access("ix_a", 4.0)]
        change = ConfigurationChange(creation_seconds_by_index={"ix_b": 5.0})
        rewards = compute_round_rewards(results, change)
        assert super_arm_reward(rewards, {"ix_a", "ix_b"}) == pytest.approx(-1.0)


class TestQueryStore:
    def test_add_round_tracks_templates(self):
        store = QueryStore()
        summary = store.add_round([make_sales_query("a#1", "a"), make_sales_query("b#1", "b")], 1)
        assert summary.new_templates == 2
        assert summary.shift_intensity == 1.0
        assert len(store) == 2

    def test_shift_intensity_with_known_templates(self):
        store = QueryStore()
        store.add_round([make_sales_query("a#1", "a")], 1)
        summary = store.add_round([make_sales_query("a#2", "a"), make_sales_query("b#1", "b")], 2)
        assert summary.known_templates == 1
        assert summary.new_templates == 1
        assert summary.shift_intensity == pytest.approx(0.5)

    def test_queries_of_interest_window(self):
        store = QueryStore()
        store.add_round([make_sales_query("a#1", "a")], 1)
        store.add_round([make_sales_query("b#1", "b")], 5)
        recent = store.queries_of_interest(current_round=6, window_rounds=2)
        assert [query.template_id for query in recent] == ["b"]
        wide = store.queries_of_interest(current_round=6, window_rounds=10)
        assert {query.template_id for query in wide} == {"a", "b"}

    def test_queries_of_interest_window_spans_completed_rounds(self):
        """``window_rounds=N`` covers the last N *completed* rounds.

        Regression test for an off-by-one: recommending for round 4 with a
        window of 2 must include templates last seen in rounds 2 and 3, not
        just round 3.
        """
        store = QueryStore()
        store.add_round([make_sales_query("a#1", "a")], 1)
        store.add_round([make_sales_query("b#1", "b")], 2)
        store.add_round([make_sales_query("c#1", "c")], 3)
        window_two = store.queries_of_interest(current_round=4, window_rounds=2)
        assert {query.template_id for query in window_two} == {"b", "c"}
        window_one = store.queries_of_interest(current_round=4, window_rounds=1)
        assert {query.template_id for query in window_one} == {"c"}

    def test_latest_instance_returned(self):
        store = QueryStore()
        store.add_round([make_sales_query("a#1", "a")], 1)
        newest = make_sales_query("a#2", "a")
        store.add_round([newest], 2)
        assert store.queries_of_interest(3)[0].query_id == newest.query_id

    def test_instance_history_bounded(self):
        store = QueryStore(max_instances_per_template=2)
        for round_number in range(1, 6):
            store.add_round([make_sales_query(f"a#{round_number}", "a")], round_number)
        record = store.template("a")
        assert len(record.recent_instances) == 2
        assert record.frequency == 5

    def test_evict_stale(self):
        store = QueryStore()
        store.add_round([make_sales_query("a#1", "a")], 1)
        store.add_round([make_sales_query("b#1", "b")], 10)
        evicted = store.evict_stale(current_round=12, max_idle_rounds=5)
        assert evicted == 1
        assert store.known_template_ids() == {"b"}

    def test_clear(self):
        store = QueryStore()
        store.add_round([make_sales_query()], 1)
        store.clear()
        assert len(store) == 0

    def test_invalid_history_size(self):
        with pytest.raises(ValueError):
            QueryStore(max_instances_per_template=0)
