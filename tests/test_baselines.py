"""Tests for the NoIndex, PDTool and DDQN baselines."""

import numpy as np
import pytest

from repro.baselines import (
    DDQNConfig,
    DDQNTuner,
    MLP,
    MLPConfig,
    NoIndexTuner,
    PDToolConfig,
    PDToolTuner,
    ReplayBuffer,
    Transition,
    build_ddqn_sc,
)
from repro.engine import ConfigurationChange, Executor, IndexDefinition
from repro.optimizer import Planner
from tests.conftest import make_join_query, make_sales_query


class TestNoIndex:
    def test_always_empty(self, tiny_database):
        tuner = NoIndexTuner()
        for round_number in (1, 2, 3):
            assert tuner.recommend(round_number).configuration == []
        tuner.observe(1, [], [], ConfigurationChange())
        tuner.reset()
        assert tuner.recommend(10).configuration == []


class TestPDTool:
    def test_no_recommendation_without_training_workload(self, tiny_database):
        tuner = PDToolTuner(tiny_database)
        recommendation = tuner.recommend(1)
        assert recommendation.configuration == []
        assert recommendation.recommendation_seconds == 0.0

    def test_invocation_selects_useful_indexes(self, tiny_database):
        tuner = PDToolTuner(tiny_database)
        training = [make_sales_query(f"s#{i}", "s") for i in range(3)]
        recommendation = tuner.recommend(2, training_queries=training)
        assert recommendation.configuration
        assert recommendation.recommendation_seconds > 0
        assert any(index.table == "sales" for index in recommendation.configuration)

    def test_configuration_persists_between_invocations(self, tiny_database):
        tuner = PDToolTuner(tiny_database)
        first = tuner.recommend(2, training_queries=[make_sales_query()])
        later = tuner.recommend(3)
        assert later.configuration == first.configuration
        assert later.recommendation_seconds == 0.0

    def test_budget_respected(self, tiny_database):
        tiny_database.memory_budget_bytes = 4 * 1024 * 1024
        tuner = PDToolTuner(tiny_database)
        recommendation = tuner.recommend(2, training_queries=[make_sales_query(), make_join_query()])
        total = sum(tiny_database.index_size_bytes(index) for index in recommendation.configuration)
        assert total <= tiny_database.memory_budget_bytes

    def test_recommendation_time_grows_with_workload_size(self, tiny_database):
        small = PDToolTuner(tiny_database).recommend(
            2, training_queries=[make_sales_query(f"a#{i}", "a") for i in range(2)]
        )
        large = PDToolTuner(tiny_database).recommend(
            2,
            training_queries=[make_sales_query(f"a#{i}", "a") for i in range(20)]
            + [make_join_query(f"b#{i}", "b") for i in range(20)],
        )
        assert large.recommendation_seconds > small.recommendation_seconds

    def test_invocation_time_limit_clips_modelled_time(self, tiny_database):
        config = PDToolConfig(invocation_time_limit_seconds=25.0)
        tuner = PDToolTuner(tiny_database, config)
        recommendation = tuner.recommend(
            2, training_queries=[make_sales_query(f"a#{i}", "a") for i in range(30)]
        )
        assert recommendation.recommendation_seconds <= 25.0

    def test_observe_is_a_noop_and_reset_clears(self, tiny_database):
        tuner = PDToolTuner(tiny_database)
        tuner.recommend(2, training_queries=[make_sales_query()])
        tuner.observe(2, [], [], ConfigurationChange())
        assert tuner.invocations
        tuner.reset()
        assert tuner.recommend(3).configuration == []
        assert tuner.invocations == []

    def test_merged_candidates_are_valid_indexes(self, tiny_database):
        tuner = PDToolTuner(tiny_database)
        indexes = [
            IndexDefinition("sales", ("day", "channel")),
            IndexDefinition("sales", ("day",), ("amount",)),
            IndexDefinition("sales", ("channel",)),
        ]
        merged = tuner._merged_candidates(indexes)
        assert merged
        for index in merged:
            assert not set(index.key_columns) & set(index.include_columns)


class TestMLP:
    def test_output_shape(self):
        network = MLP(MLPConfig(input_dim=4, hidden_layers=(8, 8), output_dim=2))
        outputs = network.predict(np.zeros((5, 4)))
        assert outputs.shape == (5, 2)

    def test_learns_linear_function(self):
        rng = np.random.default_rng(0)
        network = MLP(MLPConfig(input_dim=3, hidden_layers=(16, 16), learning_rate=5e-3, seed=1))
        weights = np.array([1.0, -2.0, 0.5])
        losses = []
        for _ in range(400):
            inputs = rng.normal(size=(32, 3))
            targets = (inputs @ weights).reshape(-1, 1)
            losses.append(network.train_step(inputs, targets))
        assert losses[-1] < losses[0] * 0.1

    def test_parameter_copy(self):
        first = MLP(MLPConfig(input_dim=2, seed=1))
        second = MLP(MLPConfig(input_dim=2, seed=2))
        inputs = np.ones((1, 2))
        assert not np.allclose(first.predict(inputs), second.predict(inputs))
        second.copy_from(first)
        assert np.allclose(first.predict(inputs), second.predict(inputs))

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            MLPConfig(input_dim=0)
        with pytest.raises(ValueError):
            MLPConfig(input_dim=2, learning_rate=0)


class TestReplayBuffer:
    def make_transition(self, reward=1.0):
        return Transition(
            features=np.zeros(4), reward=reward, next_candidate_features=np.zeros((2, 4)), done=False
        )

    def test_capacity_enforced_fifo(self):
        buffer = ReplayBuffer(capacity=3)
        for reward in range(5):
            buffer.add(self.make_transition(float(reward)))
        assert len(buffer) == 3
        rewards = {transition.reward for transition in buffer.sample(3)}
        assert rewards <= {2.0, 3.0, 4.0}

    def test_sample_bounded_by_size(self):
        buffer = ReplayBuffer()
        buffer.add(self.make_transition())
        assert len(buffer.sample(10)) == 1
        buffer.clear()
        assert buffer.sample(10) == []

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            ReplayBuffer(capacity=0)


class TestDDQN:
    def test_epsilon_schedule(self):
        config = DDQNConfig()
        assert config.epsilon_at(0) == pytest.approx(1.0)
        assert config.epsilon_at(2400) == pytest.approx(0.01, abs=1e-3)
        assert config.epsilon_at(10_000) == pytest.approx(0.01)

    def test_cold_start_empty(self, tiny_database):
        tuner = DDQNTuner(tiny_database)
        assert tuner.recommend(1).configuration == []

    def test_round_loop_learns_without_error(self, tiny_database):
        tuner = DDQNTuner(tiny_database, DDQNConfig(batch_size=4, train_steps_per_round=2))
        planner = Planner(tiny_database)
        executor = Executor(tiny_database, noise_sigma=0.0)
        queries = [make_sales_query(f"s#{i}", "s") for i in range(2)]
        for round_number in range(1, 5):
            recommendation = tuner.recommend(round_number)
            change = tiny_database.apply_configuration(recommendation.configuration)
            results = [executor.execute(planner.plan(query)) for query in queries]
            tuner.observe(round_number, queries, results, change)
        assert tuner.samples_seen > 0

    def test_empty_qoi_retains_current_configuration(self, tiny_database):
        """Like the MAB tuner, an empty-QoI round must not drop materialised indexes."""
        tuner = DDQNTuner(tiny_database)
        planner = Planner(tiny_database)
        executor = Executor(tiny_database, noise_sigma=0.0)
        queries = [make_sales_query(f"s#{i}", "s") for i in range(2)]
        for round_number in range(1, 4):
            recommendation = tuner.recommend(round_number)
            change = tiny_database.apply_configuration(recommendation.configuration)
            results = [executor.execute(planner.plan(query)) for query in queries]
            tuner.observe(round_number, queries, results, change)
        materialised = set(tiny_database.materialised_index_ids)
        assert materialised, "rounds 1-3 should have materialised at least one index"
        tuner.query_store.evict_stale(current_round=4, max_idle_rounds=0)
        recommendation = tuner.recommend(4)
        assert {index.index_id for index in recommendation.configuration} == materialised
        change = tiny_database.apply_configuration(recommendation.configuration)
        assert change.dropped == []

    def test_configuration_respects_budget(self, tiny_database):
        tiny_database.memory_budget_bytes = 4 * 1024 * 1024
        tuner = DDQNTuner(tiny_database)
        queries = [make_sales_query()]
        tuner.observe(1, queries, [], ConfigurationChange())
        recommendation = tuner.recommend(2)
        total = sum(tiny_database.index_size_bytes(index) for index in recommendation.configuration)
        assert total <= tiny_database.memory_budget_bytes

    def test_single_column_variant(self, tiny_database):
        tuner = build_ddqn_sc(tiny_database)
        assert tuner.name == "DDQN_SC"
        queries = [make_sales_query()]
        tuner.observe(1, queries, [], ConfigurationChange())
        recommendation = tuner.recommend(2)
        assert all(len(index.key_columns) == 1 for index in recommendation.configuration)
        assert all(not index.include_columns for index in recommendation.configuration)

    def test_reset(self, tiny_database):
        tuner = DDQNTuner(tiny_database)
        tuner.observe(1, [make_sales_query()], [], ConfigurationChange())
        tuner.recommend(2)
        tuner.reset()
        assert tuner.samples_seen == 0
        assert tuner.recommend(1).configuration == []
