"""Tests for the public API: registry, sessions, competitions and parity.

The parity test pins the central refactor guarantee of the api_redesign PR:
``run_simulation`` — now a thin loop over :class:`repro.api.TuningSession` —
reproduces the pre-refactor driver's reports exactly.  The reset tests pin
the contract that ``Tuner.reset()`` makes a rerun from round 0 bit-identical
to a fresh tuner, for every registered tuner.
"""

from __future__ import annotations

import dataclasses
import pickle

import pytest

from repro.api import (
    DatabaseSpec,
    Recommendation,
    SimulationOptions,
    Tuner,
    TunerSpec,
    TuningSession,
    UnknownTunerError,
    create_tuner,
    register_tuner,
    registered_tuner_names,
    run_competition,
    run_simulation,
)
from repro.api.registry import _PRIMARY_NAMES, _REGISTRY, _normalise
from repro.engine.execution import Executor
from repro.harness import ExperimentSettings, build_workload_rounds, make_tuner
from repro.optimizer.planner import Planner
from repro.workloads import StaticWorkload, get_benchmark


def tiny_spec(benchmark_name: str = "ssb", seed: int = 4) -> DatabaseSpec:
    return DatabaseSpec(benchmark_name, scale_factor=0.1, sample_rows=200, seed=seed)


@pytest.fixture(scope="module")
def ssb_rounds():
    benchmark = get_benchmark("ssb")
    database = tiny_spec().create()
    return StaticWorkload(database, benchmark.templates[:4], n_rounds=4, seed=1).materialise()


# --------------------------------------------------------------------- #
# registry
# --------------------------------------------------------------------- #
class TestRegistry:
    def test_builtin_names_registered(self):
        names = registered_tuner_names()
        assert {"MAB", "NoIndex", "PDTool", "DDQN", "DDQN_SC"} <= set(names)

    def test_create_tuner_by_name_and_alias(self):
        database = tiny_spec().create()
        for name, expected in [
            ("NoIndex", "NoIndex"),
            ("mab", "MAB"),
            ("PDTool", "PDTool"),
            ("DDQN", "DDQN"),
            ("DDQN-SC", "DDQN_SC"),
            ("ddqn_sc", "DDQN_SC"),
        ]:
            assert create_tuner(name, database).name == expected

    def test_unknown_tuner_error_names_and_lists(self):
        database = tiny_spec().create()
        with pytest.raises(ValueError, match="bogus.*registered tuners.*MAB"):
            create_tuner("bogus", database)
        # the legacy contract (KeyError) still holds
        with pytest.raises(KeyError):
            create_tuner("bogus", database)
        assert issubclass(UnknownTunerError, ValueError)
        assert issubclass(UnknownTunerError, KeyError)

    def test_spec_drives_pdtool_tpcds_random_cap(self):
        database = tiny_spec().create()
        capped = create_tuner(
            "PDTool",
            database,
            TunerSpec("tpcds", "random", pdtool_invocation_limit_seconds=123.0),
        )
        assert capped.config.invocation_time_limit_seconds == 123.0
        uncapped = create_tuner("PDTool", database, TunerSpec("tpch", "static"))
        assert uncapped.config.invocation_time_limit_seconds is None

    def test_register_custom_tuner(self):
        @register_tuner("_TestEcho")
        class EchoTuner(Tuner):
            name = "_TestEcho"

            def __init__(self, database):
                self.database = database

            def recommend(self, round_number, training_queries=None):
                return Recommendation()

            def observe(self, round_number, queries, results, change):
                pass

        try:
            database = tiny_spec().create()
            tuner = create_tuner("_testecho", database)
            assert isinstance(tuner, EchoTuner)
            assert tuner.database is database
            assert "_TestEcho" in registered_tuner_names()
        finally:
            _REGISTRY.pop(_normalise("_TestEcho"), None)
            _PRIMARY_NAMES.remove("_TestEcho")

    def test_make_tuner_shim_deprecated_but_working(self, tiny_database):
        with pytest.warns(DeprecationWarning, match="create_tuner"):
            tuner = make_tuner("MAB", tiny_database)
        assert tuner.name == "MAB"
        settings = ExperimentSettings()
        with pytest.warns(DeprecationWarning):
            pdtool = make_tuner("PDTool", tiny_database, "tpcds", "random", settings)
        assert (
            pdtool.config.invocation_time_limit_seconds
            == settings.tpcds_random_pdtool_limit_seconds
        )
        with pytest.warns(DeprecationWarning):
            with pytest.raises(KeyError):
                make_tuner("nope", tiny_database)

    def test_harness_interface_shim_deprecated(self):
        import importlib
        import sys

        sys.modules.pop("repro.harness.interface", None)
        with pytest.warns(DeprecationWarning, match="repro.api"):
            module = importlib.import_module("repro.harness.interface")
        assert module.Tuner is Tuner

    def test_database_spec_is_picklable_factory(self):
        spec = tiny_spec()
        clone = pickle.loads(pickle.dumps(spec))
        database = clone()
        assert database.schema.name == spec.create().schema.name


# --------------------------------------------------------------------- #
# sessions
# --------------------------------------------------------------------- #
class TestTuningSession:
    def test_explicit_phase_cycle(self, ssb_rounds):
        database = tiny_spec().create()
        session = TuningSession(
            database, create_tuner("MAB", database), SimulationOptions(benchmark_name="ssb")
        )
        recommendation = session.recommend()
        assert isinstance(recommendation, Recommendation)
        results = session.execute(ssb_rounds[0].queries)
        assert len(results) == len(ssb_rounds[0].queries)
        round_report = session.observe()
        assert round_report.round_number == 1
        assert round_report.n_queries == len(ssb_rounds[0].queries)
        assert session.report.n_rounds == 1

    def test_step_streams_queries_without_workload_rounds(self, ssb_rounds):
        database = tiny_spec().create()
        session = TuningSession(database, create_tuner("MAB", database))
        for workload_round in ssb_rounds:
            session.step(workload_round.queries)
        assert session.report.n_rounds == len(ssb_rounds)
        assert [r.round_number for r in session.report.rounds] == [1, 2, 3, 4]
        assert session.report.rounds[-1].configuration_size >= 1

    def test_out_of_order_calls_raise(self, ssb_rounds):
        database = tiny_spec().create()
        session = TuningSession(database, create_tuner("NoIndex", database))
        with pytest.raises(RuntimeError, match="expected recommend"):
            session.execute(ssb_rounds[0].queries)
        session.recommend()
        with pytest.raises(RuntimeError, match="expected execute"):
            session.observe()
        with pytest.raises(RuntimeError, match="expected execute"):
            session.recommend()
        session.execute(ssb_rounds[0].queries)
        with pytest.raises(RuntimeError, match="expected observe"):
            session.execute(ssb_rounds[0].queries)
        session.observe()

    def test_options_callbacks_and_results(self, ssb_rounds):
        database = tiny_spec().create()
        seen = []
        options = SimulationOptions(
            benchmark_name="ssb",
            keep_results=True,
            on_round=lambda report, results: seen.append(report.round_number),
        )
        session = TuningSession(database, create_tuner("NoIndex", database), options)
        for workload_round in ssb_rounds[:2]:
            session.step_workload_round(workload_round)
        assert seen == [1, 2]
        assert len(session.results_by_round) == 2
        assert session.trace.report is session.report


# --------------------------------------------------------------------- #
# parity with the pre-refactor batch driver
# --------------------------------------------------------------------- #
def seed_protocol_reference(database, tuner, workload_rounds, options):
    """A verbatim replica of the pre-refactor ``run_simulation`` loop.

    Kept here as the parity oracle: the session-based driver must charge the
    exact same model-costs and produce the exact same configurations.
    """
    planner = Planner(database)
    executor = Executor(database, noise_sigma=options.noise_sigma, seed=options.executor_seed)
    rows = []
    for workload_round in workload_rounds:
        training = (
            workload_round.pdtool_training_queries if workload_round.invoke_pdtool else None
        )
        recommendation = tuner.recommend(
            workload_round.round_number, training_queries=training
        )
        change = database.apply_configuration(recommendation.configuration)
        results = []
        execution_seconds = 0.0
        for query in workload_round.queries:
            plan = planner.plan(query)
            result = executor.execute(plan)
            results.append(result)
            execution_seconds += result.total_seconds
        tuner.observe(
            workload_round.round_number, workload_round.queries, results, change
        )
        rows.append(
            {
                "round": workload_round.round_number,
                "creation": change.creation_seconds + change.drop_seconds,
                "execution": execution_seconds,
                "configuration": sorted(ix.index_id for ix in database.materialised_indexes),
                "bytes": database.used_index_bytes,
            }
        )
    return rows


class TestRunSimulationParity:
    def test_mab_tpch_quick_parity_with_seed_protocol(self):
        """Acceptance: the session-based ``run_simulation`` reproduces the seed
        driver's per-round model times and configurations for MAB on TPC-H
        quick settings."""
        settings = ExperimentSettings.quick().with_overrides(
            scale_factor=1.0, sample_rows=500, static_rounds=6
        )
        benchmark = get_benchmark("tpch")
        database_spec = settings.database_spec("tpch")
        rounds = build_workload_rounds(
            benchmark, database_spec.create(), "static", settings
        )
        options = SimulationOptions(
            noise_sigma=settings.noise_sigma, benchmark_name="tpch"
        )

        # Reference: the seed protocol, inlined above.
        ref_database = database_spec.create()
        ref_rows = seed_protocol_reference(
            ref_database, create_tuner("MAB", ref_database), rounds, options
        )

        # Candidate: the session-based driver.
        database = database_spec.create()
        configurations = []
        options = dataclasses.replace(
            options,
            on_round=lambda report, results: configurations.append(
                sorted(ix.index_id for ix in database.materialised_indexes)
            ),
        )
        trace = run_simulation(database, create_tuner("MAB", database), rounds, options)

        assert trace.report.n_rounds == len(ref_rows)
        for round_report, ref, configuration in zip(
            trace.report.rounds, ref_rows, configurations
        ):
            assert round_report.round_number == ref["round"]
            assert round_report.creation_seconds == ref["creation"]
            assert round_report.execution_seconds == ref["execution"]
            assert round_report.configuration_bytes == ref["bytes"]
            assert configuration == ref["configuration"]
        # the bandit actually did something
        assert trace.report.total_creation_seconds > 0
        assert trace.report.rounds[-1].configuration_size >= 1


# --------------------------------------------------------------------- #
# competitions: parallel == sequential
# --------------------------------------------------------------------- #
class TestRunCompetition:
    ENTRIES = ("NoIndex", "MAB", "PDTool")

    def _reports(self, ssb_rounds, workers):
        spec = tiny_spec()
        return run_competition(
            spec,
            {name: name for name in self.ENTRIES},
            ssb_rounds,
            SimulationOptions(benchmark_name="ssb"),
            workers=workers,
        )

    def test_parallel_matches_sequential(self, ssb_rounds):
        sequential = self._reports(ssb_rounds, workers=1)
        parallel = self._reports(ssb_rounds, workers=3)
        assert list(sequential) == list(self.ENTRIES)
        assert list(parallel) == list(self.ENTRIES)
        for label in self.ENTRIES:
            a, b = sequential[label], parallel[label]
            assert a.tuner_name == b.tuner_name == label
            assert [r.creation_seconds for r in a.rounds] == [
                r.creation_seconds for r in b.rounds
            ]
            assert [r.execution_seconds for r in a.rounds] == [
                r.execution_seconds for r in b.rounds
            ]
            assert [r.configuration_bytes for r in a.rounds] == [
                r.configuration_bytes for r in b.rounds
            ]

    def test_on_round_callback_rejected_in_parallel(self, ssb_rounds):
        options = SimulationOptions(on_round=lambda report, results: None)
        with pytest.raises(ValueError, match="on_round"):
            run_competition(
                tiny_spec(), {"NoIndex": "NoIndex", "MAB": "MAB"}, ssb_rounds,
                options, workers=2,
            )

    def test_callable_entries_still_work_sequentially(self, ssb_rounds):
        from repro.baselines import NoIndexTuner

        reports = run_competition(
            tiny_spec(),
            {"custom": lambda database: NoIndexTuner()},
            ssb_rounds[:2],
            workers=1,
        )
        assert reports["custom"].tuner_name == "custom"
        assert reports["custom"].n_rounds == 2


# --------------------------------------------------------------------- #
# Tuner.reset(): rerun from round 0 is bit-identical to a fresh tuner
# --------------------------------------------------------------------- #
class TestResetBitIdentity:
    @pytest.mark.parametrize("name", ["NoIndex", "MAB", "PDTool", "DDQN", "DDQN_SC"])
    def test_reset_rerun_matches_fresh_run(self, name, ssb_rounds):
        database = tiny_spec().create()
        tuner = create_tuner(name, database, TunerSpec("ssb", "static"))
        session = TuningSession(
            database, tuner, SimulationOptions(benchmark_name="ssb")
        )
        for workload_round in ssb_rounds:
            session.step_workload_round(workload_round)
        fresh = session.report

        # Reset everything (tuner state, materialised indexes, executor noise
        # stream) and replay the identical workload.
        session.reset()
        assert database.materialised_indexes == []
        for workload_round in ssb_rounds:
            session.step_workload_round(workload_round)
        replay = session.report

        assert replay.n_rounds == fresh.n_rounds
        for a, b in zip(fresh.rounds, replay.rounds):
            assert a.round_number == b.round_number
            assert a.creation_seconds == b.creation_seconds
            assert a.execution_seconds == b.execution_seconds
            assert a.configuration_size == b.configuration_size
            assert a.configuration_bytes == b.configuration_bytes
            assert a.indexes_created == b.indexes_created
            assert a.indexes_dropped == b.indexes_dropped
