"""Property tests for the adversarial workload stressors (``repro.workloads.stress``).

The contract under test: every registered stressor is deterministic under its
seed (same seed ⇒ bit-identical round streams, across instances *and* across
re-iterations of one instance), its events are frozen picklable specs that
actually change the database, and the per-stressor shape properties hold —
flash spikes multiply then collapse, churned templates never return (low
repeat rate), seasonal rotation keeps the hot set coming back (high repeat
rate), schema growth activates tables on schedule, tier migrations land on
their scheduled rounds.
"""

from __future__ import annotations

import pickle

import pytest

from repro.api import SimulationOptions, TuningSession, create_tuner
from repro.workloads import (
    ChurnWorkload,
    FlashTrafficWorkload,
    SchemaGrowthWorkload,
    SeasonalWorkload,
    StressWorkload,
    TableGrowthEvent,
    TierMigrationEvent,
    TierMigrationWorkload,
    UnknownStressorError,
    available_stressors,
    get_benchmark,
    get_stressor,
    round_to_round_repeat_rate,
    sequence_fingerprint,
)

STRESSOR_NAMES = ("churn", "flash_traffic", "schema_growth", "seasonal", "tier_migration")


@pytest.fixture(scope="module")
def ssb():
    benchmark = get_benchmark("ssb")
    database = benchmark.create_database(scale_factor=0.1, sample_rows=200, seed=4)
    return database, benchmark.templates[:6]


# --------------------------------------------------------------------- #
# registry
# --------------------------------------------------------------------- #
class TestStressorRegistry:
    def test_all_five_stressors_registered(self):
        assert available_stressors() == sorted(STRESSOR_NAMES)

    def test_lookup_returns_stress_subclasses(self):
        for name in available_stressors():
            cls = get_stressor(name)
            assert issubclass(cls, StressWorkload)

    def test_lookup_normalises_spelling(self):
        assert get_stressor("Flash-Traffic") is FlashTrafficWorkload
        assert get_stressor(" tier migration ") is TierMigrationWorkload

    def test_unknown_name_lists_registered_stressors(self):
        with pytest.raises(UnknownStressorError) as excinfo:
            get_stressor("volcano")
        message = str(excinfo.value)
        assert "volcano" in message
        for name in STRESSOR_NAMES:
            assert name in message

    def test_error_is_both_key_and_value_error(self):
        with pytest.raises(KeyError):
            get_stressor("nope")
        with pytest.raises(ValueError):
            get_stressor("nope")


# --------------------------------------------------------------------- #
# determinism: the tentpole property
# --------------------------------------------------------------------- #
class TestDeterminism:
    @pytest.mark.parametrize("name", STRESSOR_NAMES)
    def test_same_seed_bit_identical_streams(self, ssb, name):
        database, templates = ssb
        cls = get_stressor(name)
        first = cls(database, templates, seed=17).materialise()
        second = cls(database, templates, seed=17).materialise()
        assert sequence_fingerprint(first) == sequence_fingerprint(second)

    @pytest.mark.parametrize("name", STRESSOR_NAMES)
    def test_rounds_reiteration_matches_materialise(self, ssb, name):
        database, templates = ssb
        sequence = get_stressor(name)(database, templates, seed=17)
        materialised = sequence.materialise()
        # Unlike the classic regimes (whose shared rng is consumed), a
        # stressor's rounds() restarts from the seed on every call.
        reiterated = list(sequence.rounds())
        assert sequence_fingerprint(reiterated) == sequence_fingerprint(materialised)

    @pytest.mark.parametrize("name", STRESSOR_NAMES)
    def test_different_seeds_diverge(self, ssb, name):
        database, templates = ssb
        cls = get_stressor(name)
        first = cls(database, templates, seed=17).materialise()
        second = cls(database, templates, seed=18).materialise()
        assert sequence_fingerprint(first) != sequence_fingerprint(second)


# --------------------------------------------------------------------- #
# repeat-rate bounds: churn low, periodic high
# --------------------------------------------------------------------- #
class TestRepeatRateBounds:
    def test_churn_repeat_rate_is_low(self, ssb):
        database, templates = ssb
        rounds = ChurnWorkload(
            database, templates, n_rounds=20, churn_rate=0.7, seed=5
        ).materialise()
        assert round_to_round_repeat_rate(rounds) < 0.35

    def test_seasonal_repeat_rate_is_high(self, ssb):
        database, templates = ssb
        rounds = SeasonalWorkload(database, templates, n_rounds=20, seed=5).materialise()
        assert round_to_round_repeat_rate(rounds) > 0.5

    def test_churn_rate_one_never_repeats(self, ssb):
        database, templates = ssb
        rounds = ChurnWorkload(
            database, templates, n_rounds=10, churn_rate=1.0, seed=5
        ).materialise()
        assert round_to_round_repeat_rate(rounds) == 0.0

    def test_churned_templates_never_return(self, ssb):
        database, templates = ssb
        rounds = ChurnWorkload(
            database, templates, n_rounds=15, churn_rate=0.6, seed=5
        ).materialise()
        seen_adhoc: set[str] = set()
        for workload_round in rounds:
            adhoc = {
                query.template_id
                for query in workload_round.queries
                if query.template_id.startswith("adhoc-")
            }
            assert not (adhoc & seen_adhoc), "an ad-hoc template was reused"
            seen_adhoc |= adhoc


# --------------------------------------------------------------------- #
# per-stressor shape properties
# --------------------------------------------------------------------- #
class TestFlashTraffic:
    def test_spike_multiplies_then_collapses(self, ssb):
        database, templates = ssb
        sequence = FlashTrafficWorkload(
            database,
            templates,
            n_rounds=12,
            spike_multiplier=10,
            spike_start=5,
            spike_length=3,
            spike_template_index=0,
            seed=5,
        )
        rounds = sequence.materialise()
        baseline = len(templates)
        hot = templates[0].template_id
        for workload_round in rounds:
            hot_count = sum(
                1 for q in workload_round.queries if q.template_id == hot
            )
            if workload_round.round_number in sequence.spike_rounds:
                assert len(workload_round.queries) == baseline + 9
                assert hot_count == 10
            else:
                assert len(workload_round.queries) == baseline
                assert hot_count == 1

    def test_spike_parameters_validated(self, ssb):
        database, templates = ssb
        with pytest.raises(ValueError):
            FlashTrafficWorkload(database, templates, spike_multiplier=1)
        with pytest.raises(ValueError):
            FlashTrafficWorkload(database, templates, spike_length=0)
        with pytest.raises(ValueError):
            FlashTrafficWorkload(database, templates, spike_template_index=99)


class TestSeasonal:
    def test_weights_are_periodic(self, ssb):
        database, templates = ssb
        sequence = SeasonalWorkload(database, templates, n_rounds=20, period=8, seed=5)
        assert sequence.weights(3) == pytest.approx(sequence.weights(11))
        assert sequence.weights(3) != pytest.approx(sequence.weights(7))

    def test_amplitude_validated(self, ssb):
        database, templates = ssb
        with pytest.raises(ValueError):
            SeasonalWorkload(database, templates, amplitude=1.0)
        with pytest.raises(ValueError):
            SeasonalWorkload(database, templates, period=1)


class TestSchemaGrowth:
    def test_tables_activate_on_schedule(self, ssb):
        database, templates = ssb
        sequence = SchemaGrowthWorkload(
            database, templates, n_rounds=16, growth_every=4, seed=5
        )
        rounds = sequence.materialise()
        schedule = sequence.growth_schedule()
        assert schedule, "SSB templates should span more tables than the core set"
        core = set(sequence.core_tables)
        for workload_round in rounds:
            tables_now = {
                table for query in workload_round.queries for table in query.tables
            }
            arrived = {
                table
                for rnd, table in schedule.items()
                if rnd <= workload_round.round_number
            }
            assert tables_now <= core | arrived
            if workload_round.round_number in schedule:
                event = workload_round.events[0]
                assert isinstance(event, TableGrowthEvent)
                assert event.table == schedule[workload_round.round_number]
                assert workload_round.is_shift_round
            if workload_round.round_number < min(schedule):
                assert not workload_round.events

    def test_growth_event_grows_rows_and_refreshes_statistics(self, ssb):
        database, _ = ssb
        benchmark = get_benchmark("ssb")
        fresh = benchmark.create_database(scale_factor=0.1, sample_rows=200, seed=4)
        table = fresh.table_names[0]
        before = fresh.table_data(table).full_row_count
        TableGrowthEvent(table, 3.0).apply(fresh)
        assert fresh.table_data(table).full_row_count == before * 3
        assert fresh.statistics.row_count(table) == before * 3


class TestTierMigration:
    def test_migrations_land_on_scheduled_rounds(self, ssb):
        database, templates = ssb
        sequence = TierMigrationWorkload(database, templates, n_rounds=12, seed=5)
        rounds = sequence.materialise()
        schedule = sequence.migration_schedule()
        assert len(schedule) == 2  # one promote, one demote by default
        for workload_round in rounds:
            expected = schedule.get(workload_round.round_number, ())
            assert workload_round.events == expected
            assert workload_round.is_shift_round == bool(expected)

    def test_default_hot_table_is_most_referenced(self, ssb):
        database, templates = ssb
        sequence = TierMigrationWorkload(database, templates, seed=5)
        counts: dict[str, int] = {}
        for template in templates:
            for table in template.tables:
                counts[table] = counts.get(table, 0) + 1
        assert counts[sequence.default_hot_table()] == max(counts.values())

    def test_out_of_range_migration_round_rejected(self, ssb):
        database, templates = ssb
        with pytest.raises(ValueError):
            TierMigrationWorkload(
                database, templates, n_rounds=5, migrations=((9, "lineorder", None),)
            )


# --------------------------------------------------------------------- #
# events: frozen, picklable, and actually applied by sessions
# --------------------------------------------------------------------- #
class TestEvents:
    @pytest.mark.parametrize(
        "event",
        [
            TierMigrationEvent("lineorder", "inmemory"),
            TierMigrationEvent("lineorder", None),
            TableGrowthEvent("lineorder", 2.5),
        ],
    )
    def test_events_are_frozen_and_picklable(self, event):
        assert pickle.loads(pickle.dumps(event)) == event
        with pytest.raises(AttributeError):
            event.table = "other"
        assert event.describe()

    def test_tier_migration_event_changes_pricing_tier(self):
        benchmark = get_benchmark("ssb")
        database = benchmark.create_database(scale_factor=0.1, sample_rows=200, seed=4)
        table = database.table_names[0]
        default = database.backend_profile_for(table).name
        TierMigrationEvent(table, "inmemory").apply(database)
        assert database.backend_profile_for(table).name == "inmemory"
        TierMigrationEvent(table, None).apply(database)
        assert database.backend_profile_for(table).name == default

    def test_session_applies_events_before_recommendation(self, ssb):
        _, templates = ssb
        benchmark = get_benchmark("ssb")
        database = benchmark.create_database(scale_factor=0.1, sample_rows=200, seed=4)
        session = TuningSession(database, create_tuner("NoIndex", database))
        sequence = TierMigrationWorkload(database, templates, n_rounds=6, seed=5)
        schedule = sequence.migration_schedule()
        promote_round = min(schedule)
        hot = sequence.default_hot_table()
        default_tier = database.backend_profile_for(hot).name
        for workload_round in sequence.rounds():
            session.step_workload_round(workload_round)
            if promote_round <= workload_round.round_number < max(schedule):
                assert database.backend_profile_for(hot).name == "inmemory"
        assert database.backend_profile_for(hot).name == default_tier

    def test_apply_events_option_disables_application(self, ssb):
        _, templates = ssb
        benchmark = get_benchmark("ssb")
        database = benchmark.create_database(scale_factor=0.1, sample_rows=200, seed=4)
        session = TuningSession(
            database,
            create_tuner("NoIndex", database),
            SimulationOptions(apply_events=False),
        )
        sequence = TierMigrationWorkload(database, templates, n_rounds=6, seed=5)
        hot = sequence.default_hot_table()
        default_tier = database.backend_profile_for(hot).name
        for workload_round in sequence.rounds():
            session.step_workload_round(workload_round)
            assert database.backend_profile_for(hot).name == default_tier

    def test_apply_events_mid_round_is_rejected(self, ssb):
        _, templates = ssb
        benchmark = get_benchmark("ssb")
        database = benchmark.create_database(scale_factor=0.1, sample_rows=200, seed=4)
        session = TuningSession(database, create_tuner("NoIndex", database))
        session.recommend()
        with pytest.raises(RuntimeError, match="execute"):
            session.apply_events([TierMigrationEvent(database.table_names[0])])

    def test_grow_table_detaches_tenant_views(self):
        benchmark = get_benchmark("ssb")
        database = benchmark.create_database(scale_factor=0.1, sample_rows=200, seed=4)
        view_a, view_b = database.tenant_view(), database.tenant_view()
        table = database.table_names[0]
        before = database.table_data(table).full_row_count
        TableGrowthEvent(table, 5.0).apply(view_a)
        assert view_a.table_data(table).full_row_count == before * 5
        # Siblings and the parent keep their original statistics snapshot.
        assert view_b.table_data(table).full_row_count == before
        assert database.table_data(table).full_row_count == before

    def test_grow_table_rejects_nonpositive_multiplier(self):
        benchmark = get_benchmark("ssb")
        database = benchmark.create_database(scale_factor=0.1, sample_rows=200, seed=4)
        with pytest.raises(ValueError):
            database.grow_table(database.table_names[0], 0.0)


# --------------------------------------------------------------------- #
# constructor validation shared by the base class
# --------------------------------------------------------------------- #
class TestValidation:
    @pytest.mark.parametrize("name", STRESSOR_NAMES)
    def test_nonpositive_rounds_rejected(self, ssb, name):
        database, templates = ssb
        with pytest.raises(ValueError):
            get_stressor(name)(database, templates, n_rounds=0)

    def test_churn_rate_bounds(self, ssb):
        database, templates = ssb
        with pytest.raises(ValueError):
            ChurnWorkload(database, templates, churn_rate=1.5)
