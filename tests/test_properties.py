"""Property-based tests (hypothesis) for core data structures and invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Arm, C2UCB, GreedyOracle, ScoredArm
from repro.engine import (
    Column,
    IndexDefinition,
    Operator,
    Predicate,
    Table,
    TableData,
    evaluate_predicate,
    pages_touched_by_random_fetches,
)
from repro.harness import speedup_percentage

# ----------------------------------------------------------------------- #
# predicate evaluation vs a straightforward ground truth
# ----------------------------------------------------------------------- #
values_strategy = st.lists(st.integers(min_value=-50, max_value=50), min_size=1, max_size=80)


@given(values=values_strategy, literal=st.integers(-50, 50))
def test_equality_predicate_matches_ground_truth(values, literal):
    array = np.array(values)
    mask = evaluate_predicate(array, Predicate("t", "a", Operator.EQ, literal))
    assert mask.sum() == sum(1 for value in values if value == literal)


@given(values=values_strategy, low=st.integers(-50, 50), width=st.integers(0, 40))
def test_between_predicate_matches_ground_truth(values, low, width):
    high = low + width
    array = np.array(values)
    mask = evaluate_predicate(array, Predicate("t", "a", Operator.BETWEEN, (low, high)))
    assert mask.sum() == sum(1 for value in values if low <= value <= high)


@given(values=values_strategy, literal=st.integers(-50, 50))
def test_range_predicates_partition_the_rows(values, literal):
    array = np.array(values)
    below = evaluate_predicate(array, Predicate("t", "a", Operator.LT, literal)).sum()
    equal = evaluate_predicate(array, Predicate("t", "a", Operator.EQ, literal)).sum()
    above = evaluate_predicate(array, Predicate("t", "a", Operator.GT, literal)).sum()
    assert below + equal + above == len(values)


@given(values=values_strategy, literal=st.integers(-50, 50))
def test_true_selectivity_bounds_and_conjunction_monotonicity(values, literal):
    table = Table("t", [Column("a"), Column("b")])
    data = TableData(
        table=table,
        columns={"a": np.array(values), "b": np.array(values)},
        full_row_count=max(len(values), 1000),
    )
    single = (Predicate("t", "a", Operator.LE, literal),)
    double = single + (Predicate("t", "b", Operator.GE, -10),)
    single_selectivity = data.true_selectivity(single)
    double_selectivity = data.true_selectivity(double)
    assert 0 < single_selectivity <= 1
    assert 0 < double_selectivity <= 1
    # adding a conjunct can never increase true selectivity
    assert double_selectivity <= single_selectivity + 1e-12


# ----------------------------------------------------------------------- #
# cost-model approximations
# ----------------------------------------------------------------------- #
@given(rows=st.integers(0, 10_000_000), pages=st.integers(1, 1_000_000))
def test_pages_touched_bounded_and_nonnegative(rows, pages):
    touched = pages_touched_by_random_fetches(rows, pages)
    assert 0.0 <= touched <= pages
    assert touched <= rows or rows == 0 or touched <= pages


# ----------------------------------------------------------------------- #
# the bandit learner
# ----------------------------------------------------------------------- #
@settings(max_examples=25, deadline=None)
@given(
    dimension=st.integers(2, 8),
    n_updates=st.integers(1, 10),
    seed=st.integers(0, 1000),
)
def test_c2ucb_invariants(dimension, n_updates, seed):
    rng = np.random.default_rng(seed)
    bandit = C2UCB(dimension=dimension)
    for _ in range(n_updates):
        contexts = rng.normal(size=(3, dimension))
        rewards = rng.normal(size=3)
        bandit.update(contexts, rewards)
    # the scatter matrix stays symmetric positive definite
    scatter = bandit.scatter_matrix
    assert np.allclose(scatter, scatter.T)
    assert np.all(np.linalg.eigvalsh(scatter) > 0)
    # UCB scores always dominate the point estimates
    probe = rng.normal(size=(5, dimension))
    assert np.all(
        bandit.upper_confidence_scores(probe, alpha=0.7) >= bandit.expected_rewards(probe) - 1e-9
    )


# ----------------------------------------------------------------------- #
# the greedy oracle
# ----------------------------------------------------------------------- #
scored_arm_strategy = st.lists(
    st.tuples(
        st.sampled_from(["t1", "t2", "t3"]),
        st.sampled_from(["a", "b", "c", "d"]),
        st.floats(min_value=-5, max_value=5, allow_nan=False),
        st.integers(min_value=1, max_value=500),
    ),
    max_size=20,
)


@settings(max_examples=60, deadline=None)
@given(raw_arms=scored_arm_strategy, budget=st.integers(0, 1500))
def test_oracle_never_exceeds_budget_and_never_selects_negative(raw_arms, budget):
    scored_arms = []
    for position, (table, column, score, size) in enumerate(raw_arms):
        index = IndexDefinition(table, (column, f"extra_{position}"))
        arm = Arm(index=index, source_templates={f"template_{position}"})
        scored_arms.append(ScoredArm(arm=arm, score=score, size_bytes=size))
    result = GreedyOracle().select(scored_arms, memory_budget_bytes=budget)
    assert result.total_size_bytes <= budget
    assert all(selected.score > 0 for selected in result.selected)
    # no two selected arms on the same table share a leading column
    leading = [(s.arm.index.table, s.arm.index.leading_column()) for s in result.selected]
    assert len(leading) == len(set(leading))


# ----------------------------------------------------------------------- #
# metrics
# ----------------------------------------------------------------------- #
@given(
    baseline=st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
    candidate=st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
)
def test_speedup_percentage_bounds(baseline, candidate):
    value = speedup_percentage(baseline, candidate)
    assert value <= 100.0
    if baseline > 0 and candidate <= baseline:
        assert 0.0 <= value <= 100.0


# ----------------------------------------------------------------------- #
# index definitions
# ----------------------------------------------------------------------- #
@given(
    columns=st.lists(
        st.sampled_from(["a", "b", "c", "d", "e"]), min_size=1, max_size=5, unique=True
    )
)
def test_index_prefix_relation_is_reflexive_and_antisymmetric(columns):
    index = IndexDefinition("t", tuple(columns))
    assert index.is_prefix_of(index)
    if len(columns) > 1:
        narrow = IndexDefinition("t", tuple(columns[:-1]))
        assert narrow.is_prefix_of(index)
        assert not index.is_prefix_of(narrow)


@given(
    key=st.lists(st.sampled_from(["a", "b", "c"]), min_size=1, max_size=3, unique=True),
    prefix_length=st.integers(0, 5),
)
def test_index_key_prefix_never_longer_than_key(key, prefix_length):
    index = IndexDefinition("t", tuple(key))
    assert len(index.key_prefix(prefix_length)) <= len(key)
