"""Per-table placement through the public API: specs, options, workers, parity.

The acceptance bars of the tiered-storage PR at the API level:

* a *uniform* placement (every table explicitly on ``hdd``) is bit-identical
  to PR 4's single-profile ``hdd`` behaviour for all five tuners — per-table
  resolution must not perturb the reproduction;
* placements travel through every spelling (:class:`DatabaseSpec`,
  :class:`SimulationOptions`, :class:`TieredBackend`) and across
  ``run_competition(workers>1)`` process boundaries;
* ``set_backend("ssd")`` then ``set_backend("hdd")`` restores a fresh-``hdd``
  database exactly — bit-identical plans and rewards (the PR's second
  bugfix satellite);
* promoting a table mid-run changes the very next round's observed times
  (the migration scenario the benchmark turns into a workload shift).
"""

from __future__ import annotations

import pickle

import pytest

from repro.api import (
    DatabaseSpec,
    SimulationOptions,
    TieredBackend,
    TunerSpec,
    TuningSession,
    UnknownPlacementTableError,
    create_tuner,
    get_backend,
    run_competition,
)
from repro.workloads import StaticWorkload, get_benchmark

ALL_TUNERS = ["NoIndex", "MAB", "PDTool", "DDQN", "DDQN_SC"]

#: Every SSB table, pinned explicitly on the default tier — the "uniform
#: placement" that must be indistinguishable from no placement at all.
SSB_TABLES = ("customer", "date_dim", "lineorder", "part", "supplier")


def tiny_spec(**kwargs) -> DatabaseSpec:
    return DatabaseSpec("ssb", scale_factor=0.1, sample_rows=200, seed=4, **kwargs)


@pytest.fixture(scope="module")
def ssb_rounds():
    benchmark = get_benchmark("ssb")
    database = tiny_spec().create()
    return StaticWorkload(database, benchmark.templates[:4], n_rounds=4, seed=1).materialise()


def run_session(ssb_rounds, tuner_name: str, spec: DatabaseSpec, options: SimulationOptions):
    database = spec.create()
    tuner = create_tuner(tuner_name, database, TunerSpec("ssb", "static"))
    session = TuningSession(database, tuner, options)
    for workload_round in ssb_rounds:
        session.step_workload_round(workload_round)
    configuration = sorted(ix.index_id for ix in database.materialised_indexes)
    return session.report, configuration


def assert_reports_identical(a, b):
    assert a.n_rounds == b.n_rounds
    # recommendation_seconds is measured wall-clock (jittery by nature), so
    # parity is pinned on the model-time and configuration columns.
    for left, right in zip(a.rounds, b.rounds):
        assert left.round_number == right.round_number
        assert left.creation_seconds == right.creation_seconds
        assert left.execution_seconds == right.execution_seconds
        assert left.configuration_size == right.configuration_size
        assert left.configuration_bytes == right.configuration_bytes


# --------------------------------------------------------------------- #
# uniform placement == single-profile hdd, for every tuner
# --------------------------------------------------------------------- #
class TestUniformPlacementParity:
    @pytest.mark.parametrize("name", ALL_TUNERS)
    def test_all_tables_on_hdd_matches_single_profile(self, name, ssb_rounds):
        options = SimulationOptions(benchmark_name="ssb")
        seed_report, seed_configuration = run_session(
            ssb_rounds, name, tiny_spec(), options
        )

        uniform = {table: "hdd" for table in SSB_TABLES}
        via_spec, spec_configuration = run_session(
            ssb_rounds, name, tiny_spec(table_backends=uniform), options
        )
        via_options, options_configuration = run_session(
            ssb_rounds, name, tiny_spec(),
            SimulationOptions(benchmark_name="ssb", table_backends=uniform),
        )
        via_tiered, tiered_configuration = run_session(
            ssb_rounds, name,
            tiny_spec(table_backends=TieredBackend(hot_tables=SSB_TABLES, hot="hdd", cold="hdd")),
            options,
        )

        for report in (via_spec, via_options, via_tiered):
            assert_reports_identical(seed_report, report)
        for configuration in (spec_configuration, options_configuration, tiered_configuration):
            assert configuration == seed_configuration


# --------------------------------------------------------------------- #
# plumbing and serialisation
# --------------------------------------------------------------------- #
class TestPlacementPlumbing:
    def test_session_applies_options_placement(self):
        database = tiny_spec().create()
        TuningSession(
            database,
            create_tuner("NoIndex", database),
            SimulationOptions(table_backends={"lineorder": "inmemory"}),
        )
        assert database.backend_profile_for("lineorder").name == "inmemory"
        assert database.backend_profile_for("customer").name == "hdd"

    def test_session_rejects_unknown_placement_table(self):
        database = tiny_spec().create()
        with pytest.raises(UnknownPlacementTableError, match="orders"):
            TuningSession(
                database,
                create_tuner("NoIndex", database),
                SimulationOptions(table_backends={"orders": "ssd"}),
            )

    def test_session_rejects_backend_plus_tiered_backend(self):
        """Mirrors the Database ctor: a TieredBackend names both tiers itself.

        Without the guard the TieredBackend's cold tier would silently
        replace the requested ``backend``.
        """
        database = tiny_spec().create()
        with pytest.raises(ValueError, match="not both"):
            TuningSession(
                database,
                create_tuner("NoIndex", database),
                SimulationOptions(
                    backend="ssd",
                    table_backends=TieredBackend(hot_tables=("lineorder",)),
                ),
            )
        # backend + a plain overrides mapping remains a valid combination
        session = TuningSession(
            database,
            create_tuner("NoIndex", database),
            SimulationOptions(
                backend="ssd", table_backends={"lineorder": "inmemory"}
            ),
        )
        assert session.database.backend_profile.name == "ssd"
        assert session.database.backend_profile_for("lineorder").name == "inmemory"

    def test_spec_with_placement_is_picklable(self):
        tiered = TieredBackend(hot_tables=("lineorder",), cold="ssd")
        spec = tiny_spec(table_backends=tiered)
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec
        database = clone.create()
        assert database.backend_profile.name == "ssd"
        assert database.backend_profile_for("lineorder").name == "inmemory"
        # a raw mapping (with a profile instance inside) travels too
        spec = tiny_spec(table_backends={"lineorder": get_backend("cloud")})
        clone = pickle.loads(pickle.dumps(spec))
        assert clone.create().backend_profile_for("lineorder").name == "cloud"

    def test_options_with_placement_are_picklable(self):
        options = SimulationOptions(
            table_backends=TieredBackend(hot_tables=("lineorder",))
        )
        clone = pickle.loads(pickle.dumps(options))
        assert clone.table_backends == options.table_backends

    def test_tiered_backend_round_trips_through_competition_workers(self, ssb_rounds):
        """Placements must survive ``run_competition(workers>1)`` pickling.

        The spec carries a :class:`TieredBackend` and the options a raw
        mapping; with two workers both travel through pickled task
        submissions, and the merged reports must be identical to a
        sequential run's.
        """
        spec = tiny_spec(table_backends=TieredBackend(hot_tables=("lineorder",)))
        options = SimulationOptions(
            benchmark_name="ssb", table_backends={"customer": get_backend("ssd")}
        )
        entries = {"NoIndex": "NoIndex", "MAB": "MAB"}
        sequential = run_competition(spec, entries, ssb_rounds, options, workers=1)
        parallel = run_competition(spec, entries, ssb_rounds, options, workers=2)
        assert list(sequential) == list(parallel) == list(entries)
        for label in entries:
            assert_reports_identical(sequential[label], parallel[label])

    def test_tiered_placement_changes_observed_times(self, ssb_rounds):
        """Hot tables in memory must make the same workload cheaper.

        (No such ordering is asserted for ``cloud``: the object store streams
        full scans *faster* than spinning disk — its penalty is random I/O
        and per-request latency, pinned in ``test_engine_backend.py`` — so a
        scan-only NoIndex workload can legitimately get cheaper there.)
        """
        options = SimulationOptions(benchmark_name="ssb")
        flat, _ = run_session(ssb_rounds, "NoIndex", tiny_spec(), options)
        tiered, _ = run_session(
            ssb_rounds, "NoIndex",
            tiny_spec(table_backends=TieredBackend(hot_tables=("lineorder",))),
            options,
        )
        assert tiered.total_execution_seconds < flat.total_execution_seconds


# --------------------------------------------------------------------- #
# set_backend round trip (bugfix satellite)
# --------------------------------------------------------------------- #
class TestSetBackendRoundTrip:
    @pytest.mark.parametrize("name", ["MAB", "PDTool"])
    def test_ssd_then_hdd_equals_fresh_hdd(self, name, ssb_rounds):
        """``set_backend`` leaves no residue: the round trip is bit-identical.

        Pins the invalidation audit — everything the database caches (data
        size, hypothetical index sizes, statistics) is a byte quantity, and
        per-table overrides are cleared — by demanding identical plans and
        rewards from a session on a round-tripped database vs a fresh one.
        """
        fresh = tiny_spec().create()
        toured = tiny_spec().create()
        toured.set_backend("ssd")
        toured.set_table_backend("lineorder", "cloud")  # placement residue too
        # touch timing-dependent caches while mis-tiered
        toured.cost_model.full_scan_seconds(toured.table_data("lineorder"))
        toured.set_backend("hdd")
        assert toured.backend_profile == fresh.backend_profile
        assert toured.table_backends == {}

        options = SimulationOptions(benchmark_name="ssb")
        reports = {}
        configurations = {}
        for label, database in (("fresh", fresh), ("toured", toured)):
            tuner = create_tuner(name, database, TunerSpec("ssb", "static"))
            session = TuningSession(database, tuner, options)
            for workload_round in ssb_rounds:
                session.step_workload_round(workload_round)
            reports[label] = session.report
            configurations[label] = sorted(
                ix.index_id for ix in database.materialised_indexes
            )
        assert_reports_identical(reports["fresh"], reports["toured"])
        assert configurations["fresh"] == configurations["toured"]


# --------------------------------------------------------------------- #
# migration mid-run
# --------------------------------------------------------------------- #
class TestMigrationMidRun:
    def test_promote_changes_the_next_rounds_observations(self, ssb_rounds):
        """The bandit sees data movement as a shift in observed times."""
        database = tiny_spec().create()
        tuner = create_tuner("NoIndex", database)
        session = TuningSession(database, tuner, SimulationOptions(benchmark_name="ssb"))
        cold = [session.step_workload_round(r).execution_seconds for r in ssb_rounds[:2]]
        database.promote("lineorder", "inmemory")
        hot = [session.step_workload_round(r).execution_seconds for r in ssb_rounds[2:]]
        # lineorder dominates every SSB query; promoting it mid-run must cut
        # the observed round times immediately and decisively
        assert max(hot) < min(cold)
        database.demote("lineorder")
        assert database.table_backends == {}
