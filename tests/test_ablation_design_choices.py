"""Ablations of the MAB design choices called out in DESIGN.md.

These are small-scale versions of the paper's design discussion: covering
arms, the exploration boost, forgetting on workload shifts and the oracle's
negative-score pruning.  They assert robust, qualitative properties (the
variant still works, and the mechanism has the intended directional effect)
rather than exact numbers.
"""

from __future__ import annotations

import pytest

from repro.core import MabConfig, MabTuner
from repro.harness import SimulationOptions, run_simulation
from repro.workloads import ShiftingWorkload, StaticWorkload, get_benchmark


@pytest.fixture(scope="module")
def ssb():
    return get_benchmark("ssb")


def fresh_database(benchmark, seed=7):
    return benchmark.create_database(scale_factor=1.0, sample_rows=800, seed=seed)


def run_static(benchmark, config: MabConfig, n_rounds: int = 8):
    database = fresh_database(benchmark)
    rounds = StaticWorkload(database, benchmark.templates[:6], n_rounds=n_rounds, seed=3).materialise()
    tuner = MabTuner(database, config)
    trace = run_simulation(database, tuner, rounds, SimulationOptions(benchmark_name="ssb"))
    return trace.report, tuner, database


class TestCoveringArms:
    def test_disabling_covering_arms_still_converges(self, ssb):
        report, _, database = run_static(ssb, MabConfig(include_covering_arms=False))
        assert report.rounds[-1].execution_seconds <= report.rounds[0].execution_seconds
        assert all(not ix.include_columns for ix in database.materialised_indexes)

    def test_covering_arms_do_not_hurt_final_execution(self, ssb):
        with_covering, _, _ = run_static(ssb, MabConfig(include_covering_arms=True))
        without_covering, _, _ = run_static(ssb, MabConfig(include_covering_arms=False))
        assert (
            with_covering.rounds[-1].execution_seconds
            <= without_covering.rounds[-1].execution_seconds * 1.15
        )


class TestExplorationBoost:
    def test_zero_alpha_pure_exploitation_still_functions(self, ssb):
        greedy, tuner, _ = run_static(ssb, MabConfig(alpha=0.0, alpha_floor=0.0))
        assert greedy.total_execution_seconds > 0
        assert tuner.known_arm_count > 0

    def test_exploration_materialises_indexes(self, ssb):
        exploring, _, database = run_static(ssb, MabConfig(alpha=2.0))
        assert exploring.total_creation_seconds > 0

    def test_alpha_floor_keeps_exploring(self, ssb):
        config = MabConfig(alpha=1.0, alpha_decay=0.5, alpha_floor=0.25)
        assert config.alpha_at(50) == pytest.approx(0.25)


class TestForgetting:
    def test_shift_threshold_bounds(self):
        assert MabConfig(shift_detection_threshold=1.0).shift_detection_threshold == 1.0
        with pytest.raises(ValueError):
            MabConfig(shift_detection_threshold=1.5)

    def test_forgetting_fires_on_real_shifts(self, ssb):
        database = fresh_database(ssb)
        rounds = ShiftingWorkload(
            database, ssb.templates, n_groups=2, rounds_per_group=3, seed=5
        ).materialise()
        tuner = MabTuner(database, MabConfig(shift_detection_threshold=0.6))
        run_simulation(database, tuner, rounds, SimulationOptions())
        assert tuner.shift_events  # the group change is detected from the queries alone


class TestCreationCostWeight:
    def test_ignoring_creation_cost_creates_at_least_as_much(self, ssb):
        charged, _, _ = run_static(ssb, MabConfig(creation_cost_weight=1.0))
        free, _, _ = run_static(ssb, MabConfig(creation_cost_weight=0.0))
        assert free.total_creation_seconds >= charged.total_creation_seconds * 0.5
