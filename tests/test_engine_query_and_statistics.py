"""Unit tests for the logical query model and optimiser-visible statistics."""

import pytest

from repro.engine import (
    JoinPredicate,
    Operator,
    Predicate,
    Query,
    build_column_statistics,
    build_table_statistics,
    merge_queries,
)
from tests.conftest import make_join_query, make_sales_query


class TestPredicate:
    def test_render(self):
        assert Predicate("t", "a", Operator.EQ, 5).render() == "t.a = 5"
        assert Predicate("t", "a", Operator.BETWEEN, (1, 2)).render() == "t.a BETWEEN 1 AND 2"
        assert Predicate("t", "a", Operator.IN, (1, 2)).render() == "t.a IN (1, 2)"

    def test_between_requires_pair(self):
        with pytest.raises(ValueError):
            Predicate("t", "a", Operator.BETWEEN, 5)

    def test_in_requires_tuple(self):
        with pytest.raises(ValueError):
            Predicate("t", "a", Operator.IN, 5)

    def test_is_range(self):
        assert Operator.BETWEEN.is_range
        assert not Operator.EQ.is_range


class TestJoinPredicate:
    def test_involvement_and_column_lookup(self):
        join = JoinPredicate("a", "x", "b", "y")
        assert join.involves("a") and join.involves("b") and not join.involves("c")
        assert join.column_for("a") == "x"
        assert join.column_for("b") == "y"
        assert join.column_for("c") is None
        assert join.render() == "a.x = b.y"


class TestQuery:
    def test_column_helpers(self):
        query = make_join_query()
        assert query.predicate_columns_for("sales") == ("day",)
        assert query.join_columns_for("sales") == ("customer_id",)
        assert "amount" in query.payload_columns_for("sales")
        referenced = query.referenced_columns_for("sales")
        assert set(referenced) == {"day", "customer_id", "amount"}

    def test_predicate_on_unknown_table_rejected(self):
        with pytest.raises(ValueError):
            Query(
                query_id="q",
                template_id="q",
                tables=("sales",),
                predicates=(Predicate("other", "a", Operator.EQ, 1),),
            )

    def test_join_on_unknown_table_rejected(self):
        with pytest.raises(ValueError):
            Query(
                query_id="q",
                template_id="q",
                tables=("sales",),
                joins=(JoinPredicate("sales", "customer_id", "customers", "customer_id"),),
            )

    def test_payload_on_unknown_table_rejected(self):
        with pytest.raises(ValueError):
            Query(
                query_id="q",
                template_id="q",
                tables=("sales",),
                payload={"customers": ("segment",)},
            )

    def test_render_sql_ish(self):
        sql = make_sales_query().render()
        assert sql.startswith("SELECT")
        assert "FROM sales" in sql
        assert "sales.day <=" in sql

    def test_render_without_payload_uses_count(self):
        query = Query(query_id="q", template_id="q", tables=("sales",))
        assert "COUNT(*)" in query.render()

    def test_merge_queries_deduplicates(self):
        query = make_sales_query()
        assert len(merge_queries([query, query])) == 1


class TestStatistics:
    def test_column_statistics_basics(self, tiny_database_readonly):
        data = tiny_database_readonly.table_data("sales")
        statistics = build_column_statistics(data, "channel")
        assert statistics.distinct_count == 5
        assert statistics.equality_selectivity() == pytest.approx(0.2)
        assert statistics.min_value == 0 and statistics.max_value == 4

    def test_unique_column_statistics(self, tiny_database_readonly):
        data = tiny_database_readonly.table_data("sales")
        statistics = build_column_statistics(data, "sale_id")
        assert statistics.is_unique
        assert statistics.equality_selectivity() < 1e-4

    def test_range_fraction_uniformity(self, tiny_database_readonly):
        data = tiny_database_readonly.table_data("sales")
        statistics = build_column_statistics(data, "day")
        fraction = statistics.range_fraction(None, statistics.min_value + 0.25 * statistics.value_span)
        assert 0.2 < fraction < 0.3

    def test_range_fraction_with_histogram(self, tiny_database_readonly):
        data = tiny_database_readonly.table_data("sales")
        statistics = build_column_statistics(data, "day", histogram_buckets=10)
        assert len(statistics.histogram) == 10
        total = sum(bucket.fraction for bucket in statistics.histogram)
        assert total == pytest.approx(1.0, abs=1e-6)
        assert 0.0 <= statistics.range_fraction(0, 100) <= 1.0

    def test_range_fraction_empty_range(self, tiny_database_readonly):
        data = tiny_database_readonly.table_data("sales")
        statistics = build_column_statistics(data, "day")
        assert statistics.range_fraction(50, 10) == 0.0

    def test_table_statistics_and_catalog(self, tiny_database_readonly):
        table_statistics = build_table_statistics(tiny_database_readonly.table_data("customers"))
        assert table_statistics.row_count == 5_000
        assert table_statistics.column("region") is not None
        catalog = tiny_database_readonly.statistics
        assert catalog.column("customers", "region") is not None
        assert catalog.column("customers", "missing") is None
        assert catalog.row_count("missing_table") == 0
        assert "sales" in catalog.table_names
