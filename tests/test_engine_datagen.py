"""Unit tests for the synthetic column-data generators."""

import numpy as np
import pytest

from repro.engine import (
    Categorical,
    DataGenerationError,
    DateRange,
    Derived,
    ForeignKeyRef,
    SequentialKey,
    TableSpec,
    UniformFloat,
    UniformInt,
    ZipfianInt,
    scale_rows,
)


@pytest.fixture()
def rng():
    return np.random.default_rng(0)


class TestSimpleGenerators:
    def test_sequential_key_is_dense_and_unique(self, rng):
        values = SequentialKey(start=5).generate(100, rng, {})
        assert values[0] == 5 and values[-1] == 104
        assert len(np.unique(values)) == 100

    def test_uniform_int_bounds(self, rng):
        values = UniformInt(10, 20).generate(1000, rng, {})
        assert values.min() >= 10 and values.max() <= 20
        assert UniformInt(10, 20).approximate_distinct == 11

    def test_uniform_int_invalid_bounds(self):
        with pytest.raises(DataGenerationError):
            UniformInt(5, 4)

    def test_uniform_float_bounds(self, rng):
        values = UniformFloat(0.0, 1.0).generate(500, rng, {})
        assert values.min() >= 0.0 and values.max() < 1.0

    def test_uniform_float_invalid(self):
        with pytest.raises(DataGenerationError):
            UniformFloat(1.0, 1.0)

    def test_date_range(self, rng):
        values = DateRange(start_day=100, n_days=10).generate(200, rng, {})
        assert values.min() >= 100 and values.max() < 110

    def test_categorical_codes_and_weights(self, rng):
        generator = Categorical(3, weights=(0.8, 0.1, 0.1))
        values = generator.generate(2000, rng, {})
        assert set(np.unique(values)) <= {0, 1, 2}
        # the heavy category dominates
        assert (values == 0).mean() > 0.6

    def test_categorical_invalid_weights(self):
        with pytest.raises(DataGenerationError):
            Categorical(3, weights=(0.5, 0.5))


class TestZipfian:
    def test_skew_concentrates_mass(self, rng):
        skewed = ZipfianInt(low=0, n_distinct=100, skew=2.0).generate(5000, rng, {})
        uniform = ZipfianInt(low=0, n_distinct=100, skew=0.0).generate(5000, rng, {})
        top_skewed = np.bincount(skewed).max() / len(skewed)
        top_uniform = np.bincount(uniform).max() / len(uniform)
        assert top_skewed > 3 * top_uniform

    def test_values_within_domain(self, rng):
        values = ZipfianInt(low=10, n_distinct=5, skew=1.0).generate(1000, rng, {})
        assert values.min() >= 10 and values.max() < 15

    def test_invalid_parameters(self):
        with pytest.raises(DataGenerationError):
            ZipfianInt(low=0, n_distinct=0)
        with pytest.raises(DataGenerationError):
            ZipfianInt(low=0, n_distinct=10, skew=-1)


class TestForeignKeyRef:
    def test_references_in_parent_domain(self, rng):
        values = ForeignKeyRef(parent_cardinality=50).generate(1000, rng, {})
        assert values.min() >= 1 and values.max() <= 50

    def test_skewed_references(self, rng):
        values = ForeignKeyRef(parent_cardinality=1000, skew=2.0).generate(5000, rng, {})
        top_share = np.bincount(values).max() / len(values)
        assert top_share > 0.2

    def test_distinct_hint(self):
        assert ForeignKeyRef(parent_cardinality=123).approximate_distinct == 123


class TestDerived:
    def test_correlation_with_source(self, rng):
        source = UniformInt(0, 100).generate(2000, rng, {})
        derived = Derived("src", slope=2.0, offset=5.0, noise=1).generate(
            2000, rng, {"src": source}
        )
        correlation = np.corrcoef(source, derived)[0, 1]
        assert correlation > 0.95

    def test_missing_source_raises(self, rng):
        with pytest.raises(DataGenerationError):
            Derived("missing").generate(10, rng, {})

    def test_modulo_keeps_domain_bounded(self, rng):
        source = UniformInt(0, 1000).generate(500, rng, {})
        derived = Derived("src", modulo=7).generate(500, rng, {"src": source})
        assert derived.min() >= 0 and derived.max() < 7


class TestTableSpec:
    def test_generation_order_supports_derived(self, rng):
        spec = TableSpec("t", 1000, {
            "a": UniformInt(0, 10),
            "b": Derived("a", slope=1.0),
        })
        sample = spec.generate_sample(100, rng)
        assert set(sample) == {"a", "b"}
        assert len(sample["a"]) == 100

    def test_sample_capped_by_row_count(self, rng):
        spec = TableSpec("t", 50, {"a": UniformInt(0, 10)})
        sample = spec.generate_sample(1000, rng)
        assert len(sample["a"]) == 50

    def test_invalid_row_count(self):
        with pytest.raises(DataGenerationError):
            TableSpec("t", 0, {})

    def test_determinism_given_seed(self):
        spec = TableSpec("t", 1000, {"a": UniformInt(0, 1000)})
        first = spec.generate_sample(200, np.random.default_rng(9))["a"]
        second = spec.generate_sample(200, np.random.default_rng(9))["a"]
        assert np.array_equal(first, second)


def test_scale_rows():
    assert scale_rows(1000, 10) == 10_000
    assert scale_rows(1000, 0.0001) == 1
    assert scale_rows(3, 1) == 3
