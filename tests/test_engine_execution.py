"""Tests for the execution simulator: timing, index usage and per-index gains."""

import pytest

from repro.engine import Executor, IndexDefinition
from repro.optimizer import Planner
from tests.conftest import make_join_query, make_sales_query


@pytest.fixture()
def planner(tiny_database):
    return Planner(tiny_database)


@pytest.fixture()
def executor(tiny_database):
    return Executor(tiny_database, noise_sigma=0.0)


class TestExecution:
    def test_full_scan_execution_reports_no_index_usage(self, tiny_database, planner, executor):
        result = executor.execute(planner.plan(make_sales_query()))
        assert result.total_seconds > 0
        assert result.indexes_used == set()
        access = result.access_for("sales")
        assert access is not None
        assert access.index_gain_seconds == 0.0

    def test_covering_index_reduces_time_and_reports_gain(self, tiny_database, planner, executor):
        query = make_sales_query()
        baseline = executor.execute(planner.plan(query)).total_seconds
        index = IndexDefinition("sales", ("day", "channel"), ("amount",))
        tiny_database.create_index(index)
        result = executor.execute(planner.plan(query))
        assert result.total_seconds < baseline
        assert index.index_id in result.indexes_used
        assert result.gain_for_index(index.index_id) > 0

    def test_join_query_execution(self, tiny_database, planner, executor):
        result = executor.execute(planner.plan(make_join_query()))
        assert result.total_seconds > 0
        assert {access.table for access in result.access_results} == {"sales", "customers"}

    def test_noise_zero_is_deterministic(self, tiny_database, planner):
        query = make_sales_query()
        first = Executor(tiny_database, noise_sigma=0.0).execute(planner.plan(query))
        second = Executor(tiny_database, noise_sigma=0.0).execute(planner.plan(query))
        assert first.total_seconds == pytest.approx(second.total_seconds)

    def test_noise_seed_reproducibility(self, tiny_database, planner):
        query = make_sales_query()
        plan = planner.plan(query)
        first = Executor(tiny_database, noise_sigma=0.1, seed=5).execute(plan)
        second = Executor(tiny_database, noise_sigma=0.1, seed=5).execute(plan)
        assert first.total_seconds == pytest.approx(second.total_seconds)

    def test_result_metadata(self, tiny_database, planner, executor):
        query = make_sales_query()
        result = executor.execute(planner.plan(query))
        assert result.query_id == query.query_id
        assert result.template_id == query.template_id
        assert result.plan_description
        assert result.estimated_seconds > 0

    def test_access_full_scan_reference_matches_cost_model(
        self, tiny_database, planner, executor
    ):
        result = executor.execute(planner.plan(make_sales_query()))
        access = result.access_for("sales")
        expected = tiny_database.cost_model.full_scan_seconds(tiny_database.table_data("sales"))
        assert access.full_scan_seconds == pytest.approx(expected)

    def test_misestimated_plan_can_regress(self, tiny_database, planner):
        """An index chosen on misestimates can make the query slower (negative gain)."""
        import numpy as np

        executor = Executor(tiny_database, noise_sigma=0.0)
        data = tiny_database.table_data("sales")
        values, counts = np.unique(data.column_array("product_id"), return_counts=True)
        heavy = int(values[counts.argmax()])
        from repro.engine import Operator, Predicate, Query

        query = Query(
            query_id="q_skew#0",
            template_id="q_skew",
            tables=("sales",),
            predicates=(Predicate("sales", "product_id", Operator.EQ, heavy),),
            payload={"sales": ("amount", "day", "channel")},
        )
        baseline = executor.execute(planner.plan(query, configuration=[])).total_seconds
        # A non-covering index on the (skewed) product_id column: the optimiser
        # thinks an equality predicate is highly selective and picks a seek,
        # but the heavy hitter matches a large fraction of the table.
        index = IndexDefinition("sales", ("product_id",))
        tiny_database.create_index(index)
        plan = planner.plan(query)
        if plan.accesses["sales"].index is None:
            pytest.skip("optimiser did not pick the index under this data seed")
        result = executor.execute(plan)
        assert result.gain_for_index(index.index_id) < 0
        assert result.total_seconds > baseline
