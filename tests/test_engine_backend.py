"""Tests for storage-backend profiles and their registry.

Pins the tentpole guarantees of the multi-backend PR: the default profile is
bit-identical to the historical hard-coded constants (``hdd``), the built-in
``ssd``/``inmemory`` tiers re-time the same formulas coherently (narrower
random/sequential gap, cheaper I/O), profiles are frozen and picklable, and
the registry mirrors the tuner registry's ergonomics — including an
:class:`~repro.engine.UnknownBackendError` that lists every registered name.
"""

from __future__ import annotations

import pickle

import pytest

from repro.engine import (
    BackendProfile,
    CostModel,
    CostModelParameters,
    Database,
    UnknownBackendError,
    get_backend,
    register_backend,
    registered_backend_names,
    resolve_backend,
)
from repro.engine.backend import _PRIMARY_NAMES, _REGISTRY, _normalise
from repro.engine.indexes import IndexDefinition
from repro.workloads import get_benchmark


@pytest.fixture(scope="module")
def tiny_database() -> Database:
    return get_benchmark("ssb").create_database(scale_factor=0.1, sample_rows=200)


# --------------------------------------------------------------------- #
# registry
# --------------------------------------------------------------------- #
class TestRegistry:
    def test_builtin_names_registered(self):
        assert registered_backend_names() == ["hdd", "ssd", "inmemory", "cloud"]

    def test_lookup_by_name_and_alias(self):
        for name, expected in [
            ("hdd", "hdd"),
            ("HDD", "hdd"),
            ("disk", "hdd"),
            ("default", "hdd"),
            ("ssd", "ssd"),
            ("nvme", "ssd"),
            ("flash", "ssd"),
            ("inmemory", "inmemory"),
            ("in-memory", "inmemory"),
            ("ram", "inmemory"),
            ("cloud", "cloud"),
            ("s3", "cloud"),
            ("object_store", "cloud"),
        ]:
            assert get_backend(name).name == expected

    def test_unknown_backend_error_names_and_lists(self):
        with pytest.raises(ValueError, match="floppy.*registered backends.*hdd.*ssd.*inmemory"):
            get_backend("floppy")
        # Same exception satisfies KeyError handlers, like UnknownTunerError.
        with pytest.raises(KeyError):
            get_backend("floppy")
        assert issubclass(UnknownBackendError, KeyError)
        assert issubclass(UnknownBackendError, ValueError)

    def test_register_custom_backend(self):
        try:
            profile = register_backend(
                "test_tape", profile=BackendProfile(name="test_tape", random_page_read_seconds=5.0)
            )
            assert get_backend("test-tape") == profile
            assert "test_tape" in registered_backend_names()

            @register_backend("test_san")
            def _san() -> BackendProfile:
                return BackendProfile(name="test_san", per_query_overhead_seconds=0.2)

            assert get_backend("test_san").per_query_overhead_seconds == 0.2
        finally:
            for name in ("test_tape", "test_san"):
                _REGISTRY.pop(_normalise(name), None)
                if name in _PRIMARY_NAMES:
                    _PRIMARY_NAMES.remove(name)

    def test_resolve_backend_accepts_all_spellings(self):
        assert resolve_backend(None) == get_backend("hdd")
        assert resolve_backend("ssd").name == "ssd"
        custom = BackendProfile(name="custom", cpu_hash_seconds=1e-9)
        assert resolve_backend(custom) is custom


# --------------------------------------------------------------------- #
# profiles
# --------------------------------------------------------------------- #
class TestProfiles:
    def test_default_profile_is_hdd(self):
        """The zero-argument profile carries the historical constants exactly."""
        hdd = get_backend("hdd")
        assert hdd == BackendProfile()
        assert hdd.sequential_read_bytes_per_second == 200e6
        assert hdd.sequential_write_bytes_per_second == 150e6
        assert hdd.random_page_read_seconds == 2.0e-4
        assert hdd.cpu_tuple_seconds == 2.0e-7
        assert hdd.cpu_sort_compare_seconds == 5.0e-8
        assert hdd.cpu_hash_seconds == 1.5e-7
        assert hdd.per_query_overhead_seconds == 0.05
        assert hdd.covering_cpu_discount == 0.5
        assert hdd.sort_spill_threshold_bytes == 1 << 30
        assert hdd.index_drop_seconds == 0.1

    def test_cost_model_parameters_is_profile_alias(self):
        assert CostModelParameters is BackendProfile

    def test_profiles_are_frozen_and_hashable(self):
        profile = get_backend("ssd")
        with pytest.raises(AttributeError):
            profile.random_page_read_seconds = 0.0
        assert len({get_backend(n) for n in registered_backend_names()}) == 4

    @pytest.mark.parametrize("name", ["hdd", "ssd", "inmemory", "cloud"])
    def test_profiles_pickle_round_trip(self, name):
        profile = get_backend(name)
        clone = pickle.loads(pickle.dumps(profile))
        assert clone == profile
        assert CostModel(clone).full_scan_seconds is not None

    def test_random_sequential_gap_narrows_down_the_tiers(self):
        """The defining axis: HDD punishes random I/O, memory barely does."""
        hdd, ssd, mem = (get_backend(n) for n in ("hdd", "ssd", "inmemory"))
        assert hdd.random_to_sequential_ratio > ssd.random_to_sequential_ratio
        assert ssd.random_to_sequential_ratio > mem.random_to_sequential_ratio
        assert hdd.random_page_read_seconds > ssd.random_page_read_seconds
        assert ssd.random_page_read_seconds > mem.random_page_read_seconds

    def test_summary_is_serialisable(self):
        summary = get_backend("ssd").summary()
        assert summary["name"] == "ssd"
        assert summary["random_to_sequential_ratio"] < 3

    def test_cloud_profile_is_latency_dominated(self):
        """The object store: random fetches dwarf even the HDD's penalty."""
        cloud, hdd = get_backend("cloud"), get_backend("hdd")
        assert cloud.random_to_sequential_ratio > 100
        assert cloud.random_to_sequential_ratio > 10 * hdd.random_to_sequential_ratio
        assert cloud.random_page_read_seconds > hdd.random_page_read_seconds
        # decent sequential bandwidth — streaming beats the spinning disks
        assert cloud.sequential_read_bytes_per_second > hdd.sequential_read_bytes_per_second
        # reads stream faster than writes: the asymmetry the sort-spill
        # accounting must bill per pass
        assert cloud.sequential_read_bytes_per_second > cloud.sequential_write_bytes_per_second
        # per-request latency shows up as a fat fixed per-query overhead too
        assert cloud.per_query_overhead_seconds > hdd.per_query_overhead_seconds


# --------------------------------------------------------------------- #
# cost model under different backends
# --------------------------------------------------------------------- #
class TestBackendCostModel:
    def test_cost_model_accepts_name_profile_or_nothing(self):
        default = CostModel()
        by_name = CostModel("hdd")
        by_profile = CostModel(get_backend("hdd"))
        assert default.profile == by_name.profile == by_profile.profile
        assert default.parameters is default.profile  # legacy accessor

    def test_every_operator_gets_cheaper_down_the_tiers(self, tiny_database):
        data = tiny_database.table_data("lineorder")
        index = IndexDefinition("lineorder", ("lo_orderdate",))
        models = {name: CostModel(name) for name in ("hdd", "ssd", "inmemory")}
        for op in (
            lambda m: m.full_scan_seconds(data),
            lambda m: m.index_seek_seconds(index, data, 500, covering=False),
            lambda m: m.index_only_scan_seconds(index, data),
            lambda m: m.index_creation_seconds(index, data),
            lambda m: m.index_drop_seconds(index, data),
        ):
            assert op(models["hdd"]) > op(models["ssd"]) > op(models["inmemory"])

    def test_inmemory_sorts_never_spill(self):
        rows = 200_000_000  # far beyond the 1 GB HDD/SSD work memory
        hdd, mem = CostModel("hdd"), CostModel("inmemory")
        # CPU term is backend-independent; the HDD sort additionally pays the
        # spill I/O, so it must exceed the pure-CPU in-memory sort.
        assert hdd.sort_seconds(rows) > mem.sort_seconds(rows)

    def test_default_database_prices_on_hdd(self, tiny_database):
        assert tiny_database.backend_profile.name == "hdd"
        assert tiny_database.backend_profile == BackendProfile()


# --------------------------------------------------------------------- #
# database plumbing
# --------------------------------------------------------------------- #
class TestDatabaseBackend:
    def test_create_database_with_backend_name(self):
        database = get_benchmark("ssb").create_database(
            scale_factor=0.1, sample_rows=200, backend="ssd"
        )
        assert database.backend_profile.name == "ssd"

    def test_backend_and_cost_model_are_mutually_exclusive(self, tiny_database):
        with pytest.raises(ValueError, match="not both"):
            Database(
                schema=tiny_database.schema,
                tables={name: tiny_database.table_data(name) for name in tiny_database.table_names},
                cost_model=CostModel(),
                backend="ssd",
            )

    def test_set_backend_swaps_pricing_not_data(self):
        database = get_benchmark("ssb").create_database(scale_factor=0.1, sample_rows=200)
        index = IndexDefinition("lineorder", ("lo_orderdate",))
        size_before = database.index_size_bytes(index)
        scan_hdd = database.cost_model.full_scan_seconds(database.table_data("lineorder"))
        profile = database.set_backend("inmemory")
        assert profile.name == "inmemory"
        assert database.backend_profile.name == "inmemory"
        # byte quantities are tier-independent; seconds are not
        assert database.index_size_bytes(index) == size_before
        scan_mem = database.cost_model.full_scan_seconds(database.table_data("lineorder"))
        assert scan_mem < scan_hdd
        # The CPU term is tier-independent, so the whole gap is I/O — and the
        # in-memory I/O term must be a ~100x smaller slice of it.
        data = database.table_data("lineorder")
        cpu = data.full_row_count * database.backend_profile.cpu_tuple_seconds
        assert (scan_mem - cpu) < (scan_hdd - cpu) / 50

    def test_set_backend_unknown_name_lists_backends(self, tiny_database):
        with pytest.raises(UnknownBackendError, match="registered backends"):
            tiny_database.set_backend("punchcard")
