"""Tests for the benchmark definitions, templates and workload sequencers."""

import numpy as np
import pytest

from repro.engine import Operator
from repro.workloads import (
    BENCHMARK_NAMES,
    RandomWorkload,
    ShiftingWorkload,
    StaticWorkload,
    available_benchmarks,
    get_benchmark,
    round_to_round_repeat_rate,
)
from repro.workloads.templates import PredicateTemplate, ValueMode, between, eq, in_list, top_fraction


class TestRegistry:
    def test_all_paper_benchmarks_available(self):
        assert set(BENCHMARK_NAMES) <= set(available_benchmarks())

    def test_unknown_benchmark_raises(self):
        with pytest.raises(KeyError):
            get_benchmark("nonexistent")

    def test_name_normalisation(self):
        assert get_benchmark("TPC-H").name == "tpch"


class TestBenchmarkDefinitions:
    @pytest.mark.parametrize("name,template_count", [
        ("tpch", 22),
        ("tpch_skew", 22),
        ("ssb", 13),
        ("tpcds", 99),
        ("imdb", 33),
    ])
    def test_template_counts_match_paper(self, name, template_count):
        assert get_benchmark(name).template_count == template_count

    @pytest.mark.parametrize("name", ["tpch", "ssb", "tpcds", "imdb"])
    def test_templates_reference_real_schema_columns(self, name):
        """Every template's tables, joins, predicates and payloads must exist."""
        benchmark = get_benchmark(name)
        schema = benchmark.schema
        for template in benchmark.templates:
            for table in template.tables:
                assert schema.has_table(table)
            for predicate in template.predicates:
                schema.validate_columns(predicate.table, [predicate.column])
                assert predicate.table in template.tables
            for join in template.joins:
                schema.validate_columns(join.left_table, [join.left_column])
                schema.validate_columns(join.right_table, [join.right_column])
            for table, columns in template.payload.items():
                schema.validate_columns(table, columns)

    def test_template_ids_unique(self):
        for name in BENCHMARK_NAMES:
            ids = get_benchmark(name).template_ids()
            assert len(ids) == len(set(ids))

    def test_row_counts_scale_with_scale_factor(self):
        benchmark = get_benchmark("tpch")
        small = {spec.table_name: spec.row_count for spec in benchmark.table_specs(1)}
        large = {spec.table_name: spec.row_count for spec in benchmark.table_specs(10)}
        assert large["lineitem"] == 10 * small["lineitem"]
        assert large["nation"] == small["nation"]  # fixed-size dimension

    def test_imdb_is_fixed_size(self):
        benchmark = get_benchmark("imdb")
        one = {spec.table_name: spec.row_count for spec in benchmark.table_specs(1)}
        ten = {spec.table_name: spec.row_count for spec in benchmark.table_specs(10)}
        assert one == ten

    def test_create_database_applies_memory_budget_multiplier(self):
        benchmark = get_benchmark("ssb")
        database = benchmark.create_database(scale_factor=0.1, sample_rows=200, memory_budget_multiplier=0.5)
        assert database.memory_budget_bytes == pytest.approx(database.data_size_bytes * 0.5, rel=0.01)

    def test_tpch_skew_data_more_skewed_than_uniform(self):
        uniform = get_benchmark("tpch").create_database(scale_factor=0.1, sample_rows=500, seed=2)
        skewed = get_benchmark("tpch_skew").create_database(scale_factor=0.1, sample_rows=500, seed=2)

        def top_share(database):
            values = database.table_data("lineitem").column_array("l_quantity")
            _, counts = np.unique(values, return_counts=True)
            return counts.max() / counts.sum()

        assert top_share(skewed) > 3 * top_share(uniform)


class TestTemplates:
    def test_instantiation_produces_valid_queries(self, tpch_benchmark, tpch_small_database):
        rng = np.random.default_rng(1)
        for template in tpch_benchmark.templates:
            query = template.instantiate(tpch_small_database, rng)
            assert query.template_id == template.template_id
            assert query.tables == template.tables
            assert len(query.predicates) == len(template.predicates)

    def test_instances_get_unique_ids_and_fresh_literals(self, tpch_benchmark, tpch_small_database):
        rng = np.random.default_rng(1)
        template = tpch_benchmark.templates[5]  # Q6: range-heavy
        first = template.instantiate(tpch_small_database, rng)
        second = template.instantiate(tpch_small_database, rng)
        assert first.query_id != second.query_id
        assert first.predicates != second.predicates

    def test_predicate_helpers(self, tiny_database_readonly, rng):
        helpers = [
            eq("sales", "channel"),
            in_list("sales", "channel", 2),
            between("sales", "day", 0.1, 0.2),
            top_fraction("sales", "amount"),
        ]
        for template in helpers:
            predicate = template.instantiate(tiny_database_readonly, rng)
            assert predicate.table == template.table
            assert predicate.column == template.column
            selectivity = tiny_database_readonly.table_data("sales").true_selectivity((predicate,))
            assert 0 < selectivity <= 1

    def test_fixed_mode_requires_value(self, tiny_database_readonly, rng):
        template = PredicateTemplate("sales", "day", Operator.EQ, mode=ValueMode.FIXED)
        with pytest.raises(ValueError):
            template.instantiate(tiny_database_readonly, rng)
        fixed = PredicateTemplate(
            "sales", "day", Operator.EQ, mode=ValueMode.FIXED, fixed_value=5
        )
        assert fixed.instantiate(tiny_database_readonly, rng).value == 5


class TestSequencers:
    @pytest.fixture()
    def templates(self, ssb_benchmark):
        return ssb_benchmark.templates

    @pytest.fixture()
    def database(self, ssb_benchmark):
        return ssb_benchmark.create_database(scale_factor=0.1, sample_rows=200, seed=4)

    def test_static_rounds_contain_all_templates(self, database, templates):
        rounds = StaticWorkload(database, templates, n_rounds=3).materialise()
        assert len(rounds) == 3
        for workload_round in rounds:
            assert len(workload_round.queries) == len(templates)
        assert rounds[1].invoke_pdtool
        assert rounds[1].pdtool_training_queries
        assert not rounds[0].invoke_pdtool and not rounds[2].invoke_pdtool

    def test_shifting_groups_are_disjoint(self, database, templates):
        sequence = ShiftingWorkload(database, templates, n_groups=3, rounds_per_group=2)
        rounds = sequence.materialise()
        assert len(rounds) == sequence.total_rounds == 6
        group_templates = [
            {query.template_id for query in rounds[i].queries} for i in (0, 2, 4)
        ]
        assert group_templates[0] & group_templates[1] == set()
        assert group_templates[1] & group_templates[2] == set()
        # PDTool invoked on the second round of each group
        assert [r.round_number for r in rounds if r.invoke_pdtool] == [2, 4, 6]
        # shift flag on the first round of each new group
        assert [r.round_number for r in rounds if r.is_shift_round] == [3, 5]

    def test_random_repeat_rate_close_to_target(self, database, templates):
        rounds = RandomWorkload(
            database, templates, n_rounds=12, repeat_rate=0.5, seed=2
        ).materialise()
        rate = round_to_round_repeat_rate(rounds)
        assert 0.35 <= rate <= 0.7

    def test_random_pdtool_schedule(self, database, templates):
        rounds = RandomWorkload(database, templates, n_rounds=13, pdtool_every=4).materialise()
        assert [r.round_number for r in rounds if r.invoke_pdtool] == [5, 9, 13]
        invoked = rounds[4]
        assert invoked.pdtool_training_queries  # trained on the queries since last invocation

    def test_invalid_parameters(self, database, templates):
        with pytest.raises(ValueError):
            StaticWorkload(database, templates, n_rounds=0)
        with pytest.raises(ValueError):
            RandomWorkload(database, templates, repeat_rate=2.0)
        with pytest.raises(ValueError):
            ShiftingWorkload(database, templates, n_groups=0)
        with pytest.raises(ValueError):
            StaticWorkload(database, [], n_rounds=1)

    def test_sequences_are_reproducible_given_seed(self, database, templates):
        first = StaticWorkload(database, templates, n_rounds=2, seed=9).materialise()
        # a database generated identically yields identical literals
        second = StaticWorkload(database, templates, n_rounds=2, seed=9).materialise()
        assert [q.predicates for q in first[0].queries] == [q.predicates for q in second[0].queries]
