"""Tests for the harness: metrics, reporting, simulation driver and experiments."""

import pytest

from repro.baselines import NoIndexTuner
from repro.core import MabTuner
from repro.harness import (
    ExperimentSettings,
    MissingBaselineError,
    RoundReport,
    RunReport,
    SafetyReport,
    SimulationOptions,
    rank_by_safety,
    safety_reports,
    aggregate_rl_series,
    build_workload_rounds,
    convergence_series,
    exploration_cost_summary,
    final_round_execution_comparison,
    format_table,
    make_tuner,
    run_simulation,
    run_workload_experiment,
    speedup_percentage,
    speedup_summary,
    table1_breakdown,
    table2_database_size,
    totals_summary,
)
from repro.workloads import StaticWorkload, get_benchmark


def make_report(name="MAB", totals=(10.0, 20.0)) -> RunReport:
    report = RunReport(tuner_name=name, benchmark_name="tiny", workload_type="static")
    for round_number, total in enumerate(totals, start=1):
        report.rounds.append(RoundReport(
            round_number=round_number,
            recommendation_seconds=1.0,
            creation_seconds=2.0,
            execution_seconds=total - 3.0,
            n_queries=5,
        ))
    return report


class TestMetrics:
    def test_round_total(self):
        round_report = RoundReport(1, recommendation_seconds=1, creation_seconds=2, execution_seconds=3)
        assert round_report.total_seconds == 6

    def test_run_aggregates(self):
        report = make_report(totals=(10.0, 20.0))
        assert report.total_seconds == pytest.approx(30.0)
        assert report.total_recommendation_seconds == pytest.approx(2.0)
        assert report.total_creation_seconds == pytest.approx(4.0)
        assert report.exploration_cost_seconds == pytest.approx(6.0)
        assert report.per_round_totals() == [pytest.approx(10.0), pytest.approx(20.0)]
        assert report.final_round_execution_seconds() == pytest.approx(17.0)
        assert report.breakdown_minutes()["total"] == pytest.approx(0.5)
        assert report.summary()["rounds"] == 2

    def test_speedup_percentage(self):
        assert speedup_percentage(100, 75) == pytest.approx(25.0)
        assert speedup_percentage(100, 125) == pytest.approx(-25.0)
        assert speedup_percentage(0, 10) == 0.0


class TestSafetyMetrics:
    @staticmethod
    def report_with(name, totals, drops=()):
        report = RunReport(tuner_name=name, benchmark_name="tiny", workload_type="stress")
        drops = tuple(drops) or (0,) * len(totals)
        for round_number, (total, dropped) in enumerate(zip(totals, drops), start=1):
            report.rounds.append(RoundReport(
                round_number=round_number,
                execution_seconds=total,
                indexes_dropped=dropped,
            ))
        return report

    def test_from_reports_metrics(self):
        baseline = self.report_with("NoIndex", (10.0, 10.0, 10.0, 10.0))
        # round speedups: 2.0x (win), 0.5x (regression), 1.0x, 1.25x (win)
        candidate = self.report_with("MAB", (5.0, 20.0, 10.0, 8.0), drops=(0, 2, 0, 0))
        safety = SafetyReport.from_reports(candidate, baseline)
        assert safety.tuner_name == "MAB" and safety.baseline_name == "NoIndex"
        assert safety.per_round_regret == pytest.approx([-5.0, 10.0, 0.0, -2.0])
        assert safety.total_regret_seconds == pytest.approx(3.0)
        assert safety.worst_round_regression_ratio == pytest.approx(0.5)
        assert safety.regression_rounds == [2]
        assert safety.regression_count == 1
        assert safety.win_count == 2
        assert safety.rollback_count == 1
        summary = safety.summary()
        assert summary["regression_rounds"] == 1 and summary["win_rounds"] == 2

    def test_zero_round_runs(self):
        safety = SafetyReport.from_reports(
            self.report_with("MAB", ()), self.report_with("NoIndex", ())
        )
        assert safety.n_rounds == 0
        assert safety.total_regret_seconds == 0.0
        assert safety.worst_round_regression_ratio == 1.0
        assert safety.regression_rounds == []
        assert safety.win_count == 0 and safety.rollback_count == 0

    def test_never_regressing_tuner_has_empty_regression_list(self):
        baseline = self.report_with("NoIndex", (10.0, 10.0, 10.0))
        candidate = self.report_with("MAB", (8.0, 5.0, 10.0))
        safety = SafetyReport.from_reports(candidate, baseline)
        assert safety.regression_rounds == []
        assert safety.worst_round_regression_ratio >= 1.0

    def test_zero_cost_candidate_round_is_degenerate_win(self):
        baseline = self.report_with("NoIndex", (10.0, 0.0))
        candidate = self.report_with("MAB", (0.0, 0.0))
        safety = SafetyReport.from_reports(candidate, baseline)
        assert safety.per_round_speedup[0] == float("inf")
        assert safety.per_round_speedup[1] == 1.0
        assert safety.regression_rounds == []

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError, match="different lengths"):
            SafetyReport.from_reports(
                self.report_with("MAB", (1.0,)), self.report_with("NoIndex", (1.0, 2.0))
            )

    def test_missing_baseline_raises_listed_names_error(self):
        runs = {
            "MAB": self.report_with("MAB", (1.0,)),
            "DDQN": self.report_with("DDQN", (2.0,)),
        }
        with pytest.raises(MissingBaselineError) as excinfo:
            safety_reports(runs)
        message = str(excinfo.value)
        assert "NoIndex" in message and "DDQN" in message and "MAB" in message
        # Registry style: catchable as KeyError or ValueError alike.
        assert isinstance(excinfo.value, KeyError)
        assert isinstance(excinfo.value, ValueError)

    def test_safety_reports_pairs_every_non_baseline_run(self):
        runs = {
            "NoIndex": self.report_with("NoIndex", (10.0, 10.0)),
            "MAB": self.report_with("MAB", (8.0, 9.0)),
            "DDQN": self.report_with("DDQN", (30.0, 40.0)),
        }
        safety = safety_reports(runs)
        assert sorted(safety) == ["DDQN", "MAB"]
        assert all(s.baseline_name == "NoIndex" for s in safety.values())

    def test_rank_by_safety_orders_worst_round_first(self):
        baseline = self.report_with("NoIndex", (10.0, 10.0, 10.0))
        runs = {
            "NoIndex": baseline,
            # one catastrophic round (0.1x) but only one regression
            "Spiky": self.report_with("Spiky", (100.0, 8.0, 8.0)),
            # two mild regressions (0.9x) and no catastrophe
            "Steady": self.report_with("Steady", (11.0, 11.0, 8.0)),
        }
        ranking = rank_by_safety(safety_reports(runs))
        assert ranking == ["Steady", "Spiky"]


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [["1", "2"], ["333", "4"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "333" in lines[2] or "333" in lines[3]

    def test_convergence_and_totals(self):
        reports = {"MAB": make_report("MAB"), "PDTool": make_report("PDTool", totals=(12.0, 24.0))}
        series = convergence_series(reports)
        assert "round" in series and "MAB" in series and "PDTool" in series
        totals = totals_summary(reports)
        assert "tuner" in totals
        assert "MAB" in totals

    def test_speedup_summary(self):
        reports = {"MAB": make_report("MAB", (10.0, 10.0)), "PDTool": make_report("PDTool", (20.0, 20.0))}
        text = speedup_summary(reports)
        assert "50.0%" in text
        assert "unavailable" in speedup_summary({"MAB": reports["MAB"]})

    def test_table_formatters(self):
        reports = {"PDTool": make_report("PDTool"), "MAB": make_report("MAB")}
        table1 = table1_breakdown({"static": {"tiny": reports}})
        assert "static" in table1 and "tiny" in table1
        table2 = table2_database_size({1.0: reports, 10.0: reports})
        assert "scale_factor" in table2
        assert "exploration_cost_s" in exploration_cost_summary(reports)
        assert "final_round_execution_s" in final_round_execution_comparison(reports)


class TestSimulation:
    @pytest.fixture()
    def ssb_setup(self, ssb_benchmark):
        database = ssb_benchmark.create_database(scale_factor=0.1, sample_rows=200, seed=4)
        rounds = StaticWorkload(database, ssb_benchmark.templates[:4], n_rounds=3, seed=1).materialise()
        return database, rounds

    def test_noindex_run_accounting(self, ssb_setup):
        database, rounds = ssb_setup
        trace = run_simulation(database, NoIndexTuner(), rounds, SimulationOptions(benchmark_name="ssb"))
        report = trace.report
        assert report.n_rounds == 3
        assert report.total_creation_seconds == 0.0
        assert report.total_recommendation_seconds == 0.0
        assert report.total_execution_seconds > 0
        for round_report in report.rounds:
            assert round_report.configuration_size == 0
            assert round_report.n_queries == 4

    def test_mab_run_creates_indexes_and_keeps_results(self, ssb_setup):
        database, rounds = ssb_setup
        options = SimulationOptions(benchmark_name="ssb", keep_results=True)
        trace = run_simulation(database, MabTuner(database), rounds, options)
        assert trace.report.total_creation_seconds > 0
        assert len(trace.results_by_round) == 3
        assert trace.report.rounds[-1].configuration_size >= 1

    def test_round_totals_are_component_sums(self, ssb_setup):
        database, rounds = ssb_setup
        trace = run_simulation(database, MabTuner(database), rounds)
        for round_report in trace.report.rounds:
            assert round_report.total_seconds == pytest.approx(
                round_report.recommendation_seconds
                + round_report.creation_seconds
                + round_report.execution_seconds
            )

    def test_wall_clock_phase_instrumentation(self, ssb_setup):
        database, rounds = ssb_setup
        trace = run_simulation(database, MabTuner(database), rounds)
        for round_report in trace.report.rounds:
            assert round_report.wall_recommend_seconds >= 0.0
            assert round_report.wall_execute_seconds > 0.0
            assert round_report.wall_total_seconds == pytest.approx(
                round_report.wall_recommend_seconds
                + round_report.wall_apply_seconds
                + round_report.wall_execute_seconds
                + round_report.wall_observe_seconds
            )
        totals = trace.report.wall_phase_totals()
        assert set(totals) == {"recommend", "apply", "execute", "observe", "total"}
        assert totals["total"] == pytest.approx(
            sum(r.wall_total_seconds for r in trace.report.rounds)
        )
        assert totals["total"] > 0.0

    def test_on_round_callback_invoked(self, ssb_setup):
        database, rounds = ssb_setup
        seen = []
        options = SimulationOptions(on_round=lambda report, results: seen.append(report.round_number))
        run_simulation(database, NoIndexTuner(), rounds, options)
        assert seen == [1, 2, 3]


class TestExperiments:
    def test_make_tuner_names(self, tiny_database):
        # make_tuner is a deprecated shim over repro.api.create_tuner.
        for name, expected in [
            ("NoIndex", "NoIndex"),
            ("MAB", "MAB"),
            ("PDTool", "PDTool"),
            ("DDQN", "DDQN"),
            ("DDQN_SC", "DDQN_SC"),
        ]:
            with pytest.warns(DeprecationWarning):
                assert make_tuner(name, tiny_database).name == expected
        with pytest.warns(DeprecationWarning):
            with pytest.raises(KeyError, match="registered tuners"):
                make_tuner("unknown", tiny_database)
            with pytest.raises(ValueError, match="registered tuners"):
                make_tuner("unknown", tiny_database)

    def test_settings_quick_and_overrides(self):
        settings = ExperimentSettings.quick()
        assert settings.static_rounds < ExperimentSettings().static_rounds
        assert settings.with_overrides(static_rounds=3).static_rounds == 3

    def test_build_workload_rounds_types(self):
        benchmark = get_benchmark("ssb")
        settings = ExperimentSettings.quick().with_overrides(sample_rows=200, scale_factor=0.1)
        database = benchmark.create_database(scale_factor=0.1, sample_rows=200)
        static = build_workload_rounds(benchmark, database, "static", settings)
        assert len(static) == settings.static_rounds
        shifting = build_workload_rounds(benchmark, database, "shifting", settings)
        assert len(shifting) == settings.shifting_groups * settings.shifting_rounds_per_group
        random_rounds = build_workload_rounds(benchmark, database, "random", settings)
        assert len(random_rounds) == settings.random_rounds
        with pytest.raises(KeyError):
            build_workload_rounds(benchmark, database, "bogus", settings)

    def test_small_end_to_end_experiment(self):
        settings = ExperimentSettings.quick().with_overrides(
            scale_factor=1.0, sample_rows=300, static_rounds=4
        )
        reports = run_workload_experiment("ssb", "static", ("NoIndex", "MAB"), settings)
        assert set(reports) == {"NoIndex", "MAB"}
        assert reports["NoIndex"].n_rounds == 4
        # the bandit must never be slower than NoIndex by execution alone in
        # the final round once it has had a few rounds to learn
        assert reports["MAB"].rounds[-1].execution_seconds <= reports["NoIndex"].rounds[-1].execution_seconds * 1.1

    def test_aggregate_rl_series(self):
        reports = [make_report(totals=(10.0, 20.0)), make_report(totals=(20.0, 30.0))]
        series = aggregate_rl_series(reports)
        assert series["mean"] == [pytest.approx(15.0), pytest.approx(25.0)]
        assert len(series["median"]) == 2
        assert aggregate_rl_series([])["mean"] == []
