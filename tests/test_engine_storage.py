"""Unit tests for materialised table storage and true-statistics measurement."""

import numpy as np
import pytest

from repro.engine import (
    Column,
    ColumnType,
    Operator,
    PAGE_SIZE_BYTES,
    Predicate,
    SchemaError,
    Table,
    TableData,
    UnknownColumnError,
    build_table_data,
    evaluate_predicate,
)


@pytest.fixture()
def small_table_data() -> TableData:
    table = Table("t", [Column("a"), Column("b"), Column("c", ColumnType.DECIMAL)])
    columns = {
        "a": np.arange(100),
        "b": np.repeat(np.arange(10), 10),
        "c": np.linspace(0.0, 1.0, 100),
    }
    return TableData(table=table, columns=columns, full_row_count=10_000)


class TestEvaluatePredicate:
    def test_equality(self):
        values = np.array([1, 2, 2, 3])
        mask = evaluate_predicate(values, Predicate("t", "a", Operator.EQ, 2))
        assert mask.tolist() == [False, True, True, False]

    def test_ranges(self):
        values = np.array([1, 5, 10])
        assert evaluate_predicate(values, Predicate("t", "a", Operator.LT, 5)).sum() == 1
        assert evaluate_predicate(values, Predicate("t", "a", Operator.LE, 5)).sum() == 2
        assert evaluate_predicate(values, Predicate("t", "a", Operator.GT, 5)).sum() == 1
        assert evaluate_predicate(values, Predicate("t", "a", Operator.GE, 5)).sum() == 2

    def test_between_and_in(self):
        values = np.array([1, 5, 10, 20])
        between = Predicate("t", "a", Operator.BETWEEN, (5, 10))
        assert evaluate_predicate(values, between).sum() == 2
        in_list = Predicate("t", "a", Operator.IN, (1, 20))
        assert evaluate_predicate(values, in_list).sum() == 2


class TestTableData:
    def test_scale_multiplier(self, small_table_data):
        assert small_table_data.sample_rows == 100
        assert small_table_data.scale_multiplier == 100.0

    def test_pages_and_bytes(self, small_table_data):
        expected_bytes = 10_000 * small_table_data.row_width_bytes
        assert small_table_data.total_bytes == expected_bytes
        assert small_table_data.pages == int(np.ceil(expected_bytes / PAGE_SIZE_BYTES))

    def test_true_selectivity_single_predicate(self, small_table_data):
        predicate = Predicate("t", "b", Operator.EQ, 3)
        assert small_table_data.true_selectivity((predicate,)) == pytest.approx(0.1)

    def test_true_selectivity_conjunction_respects_correlation(self, small_table_data):
        # a < 10 and b == 0 are perfectly correlated in this data: both select
        # exactly the first ten rows, so the conjunction is 0.1, not 0.01.
        predicates = (
            Predicate("t", "a", Operator.LT, 10),
            Predicate("t", "b", Operator.EQ, 0),
        )
        assert small_table_data.true_selectivity(predicates) == pytest.approx(0.1)

    def test_true_selectivity_empty_match_has_floor(self, small_table_data):
        predicate = Predicate("t", "a", Operator.EQ, 999_999)
        selectivity = small_table_data.true_selectivity((predicate,))
        assert 0 < selectivity < 0.01

    def test_selectivity_of_other_tables_predicates_is_one(self, small_table_data):
        predicate = Predicate("other", "a", Operator.EQ, 1)
        assert small_table_data.true_selectivity((predicate,)) == 1.0

    def test_true_cardinality_scales_to_full_rows(self, small_table_data):
        predicate = Predicate("t", "b", Operator.EQ, 3)
        assert small_table_data.true_cardinality((predicate,)) == 1000

    def test_distinct_count_unique_column(self, small_table_data):
        assert small_table_data.distinct_count("a") == 10_000

    def test_distinct_count_low_cardinality(self, small_table_data):
        assert small_table_data.distinct_count("b") == 10

    def test_distinct_hint_takes_precedence(self):
        table = Table("t", [Column("a")])
        data = TableData(
            table=table,
            columns={"a": np.repeat(np.arange(5), 20)},
            full_row_count=1_000_000,
            distinct_hints={"a": 777},
        )
        assert data.distinct_count("a") == 777

    def test_value_range(self, small_table_data):
        low, high = small_table_data.value_range("a")
        assert (low, high) == (0.0, 99.0)

    def test_unknown_column_raises(self, small_table_data):
        with pytest.raises(UnknownColumnError):
            small_table_data.column_array("zzz")

    def test_summary_fields(self, small_table_data):
        summary = small_table_data.summary()
        assert summary["table"] == "t"
        assert summary["full_row_count"] == 10_000


class TestValidation:
    def test_mismatched_sample_lengths_rejected(self):
        table = Table("t", [Column("a"), Column("b")])
        with pytest.raises(SchemaError):
            TableData(table, {"a": np.arange(10), "b": np.arange(5)}, 100)

    def test_unknown_column_data_rejected(self):
        table = Table("t", [Column("a")])
        with pytest.raises(UnknownColumnError):
            TableData(table, {"zzz": np.arange(10)}, 100)

    def test_empty_sample_rejected(self):
        table = Table("t", [Column("a")])
        with pytest.raises(SchemaError):
            TableData(table, {"a": np.array([])}, 100)

    def test_full_rows_never_below_sample(self):
        table = Table("t", [Column("a")])
        data = TableData(table, {"a": np.arange(50)}, 10)
        assert data.full_row_count == 50

    def test_build_table_data_requires_all_columns(self):
        table = Table("t", [Column("a"), Column("b")])
        with pytest.raises(SchemaError):
            build_table_data(table, {"a": np.arange(10)}, 100)
