"""Tests for the MAB tuner (configuration + round loop behaviour)."""

import pytest

from repro.core import MabConfig, MabTuner
from repro.engine import Executor, IndexDefinition
from repro.optimizer import Planner
from tests.conftest import make_join_query, make_sales_query


class TestMabConfig:
    def test_defaults_valid(self):
        config = MabConfig()
        assert config.alpha > 0
        assert config.max_index_width >= 1

    @pytest.mark.parametrize("field,value", [
        ("regularisation", 0.0),
        ("alpha", -1.0),
        ("alpha_decay", 0.0),
        ("max_index_width", 0),
        ("qoi_window_rounds", 0),
        ("forgetting_factor", 2.0),
        ("shift_detection_threshold", -0.1),
    ])
    def test_invalid_values_rejected(self, field, value):
        with pytest.raises(ValueError):
            MabConfig(**{field: value})

    def test_alpha_decays_to_floor(self):
        config = MabConfig(alpha=1.0, alpha_decay=0.5, alpha_floor=0.2)
        assert config.alpha_at(1) == pytest.approx(1.0)
        assert config.alpha_at(2) == pytest.approx(0.5)
        assert config.alpha_at(100) == pytest.approx(0.2)


def run_round(tuner, database, queries, round_number):
    """Drive one recommend/apply/execute/observe cycle."""
    planner = Planner(database)
    executor = Executor(database, noise_sigma=0.0)
    recommendation = tuner.recommend(round_number)
    change = database.apply_configuration(recommendation.configuration)
    results = [executor.execute(planner.plan(query)) for query in queries]
    tuner.observe(round_number, queries, results, change)
    return recommendation, change, results


class TestMabTuner:
    def test_cold_start_recommends_empty_configuration(self, tiny_database):
        tuner = MabTuner(tiny_database)
        recommendation = tuner.recommend(1)
        assert recommendation.configuration == []
        assert recommendation.recommendation_seconds >= 0

    def test_recommends_indexes_after_observing_workload(self, tiny_database):
        tuner = MabTuner(tiny_database)
        queries = [make_sales_query(f"s#{i}", "s") for i in range(2)]
        run_round(tuner, tiny_database, queries, 1)
        recommendation = tuner.recommend(2)
        assert recommendation.configuration
        assert all(isinstance(index, IndexDefinition) for index in recommendation.configuration)
        assert tuner.known_arm_count > 0

    def test_configuration_respects_memory_budget(self, tiny_database):
        tiny_database.memory_budget_bytes = 5 * 1024 * 1024
        tuner = MabTuner(tiny_database)
        queries = [make_sales_query(), make_join_query()]
        run_round(tuner, tiny_database, queries, 1)
        recommendation = tuner.recommend(2)
        total = sum(tiny_database.index_size_bytes(index) for index in recommendation.configuration)
        assert total <= tiny_database.memory_budget_bytes

    def test_learning_improves_execution_over_rounds(self, tiny_database):
        tuner = MabTuner(tiny_database, MabConfig(seed=1))
        planner = Planner(tiny_database)
        executor = Executor(tiny_database, noise_sigma=0.0)
        queries = [make_sales_query(f"s#{i}", "s") for i in range(3)]
        baseline = sum(executor.execute(planner.plan(query)).total_seconds for query in queries)
        final_execution = baseline
        for round_number in range(1, 8):
            _, _, results = run_round(tuner, tiny_database, queries, round_number)
            final_execution = sum(result.total_seconds for result in results)
        assert final_execution < baseline

    def test_shift_detection_triggers_forgetting(self, tiny_database):
        tuner = MabTuner(tiny_database, MabConfig(shift_detection_threshold=0.5))
        first = [make_sales_query("a#1", "a")]
        second = [make_join_query("b#1", "b")]
        run_round(tuner, tiny_database, first, 1)
        run_round(tuner, tiny_database, second, 2)
        assert tuner.shift_events == [2]

    def test_training_queries_are_ignored(self, tiny_database):
        tuner = MabTuner(tiny_database)
        recommendation = tuner.recommend(1, training_queries=[make_sales_query()])
        assert recommendation.configuration == []

    def test_reset_clears_state(self, tiny_database):
        tuner = MabTuner(tiny_database)
        run_round(tuner, tiny_database, [make_sales_query()], 1)
        run_round(tuner, tiny_database, [make_sales_query()], 2)
        tuner.reset()
        tiny_database.drop_all_indexes()
        assert tuner.known_arm_count == 0
        assert tuner.rounds_recommended == 0
        assert tuner.recommend(1).configuration == []

    def test_empty_qoi_retains_current_configuration(self, tiny_database):
        """An eviction-emptied query store must not drop materialised indexes."""
        tuner = MabTuner(tiny_database)
        run_round(tuner, tiny_database, [make_sales_query("s#1", "s")], 1)
        run_round(tuner, tiny_database, [make_sales_query("s#2", "s")], 2)
        materialised = set(tiny_database.materialised_index_ids)
        assert materialised, "rounds 1-2 should have built at least one index"
        # Every template is evicted (e.g. an aggressive idle-eviction policy):
        # the next recommendation has no queries of interest.
        tuner.query_store.evict_stale(current_round=3, max_idle_rounds=0)
        recommendation = tuner.recommend(3)
        assert {index.index_id for index in recommendation.configuration} == materialised
        change = tiny_database.apply_configuration(recommendation.configuration)
        assert change.dropped == [] and change.created == []

    def test_theta_norm_diagnostic(self, tiny_database):
        tuner = MabTuner(tiny_database)
        assert tuner.theta_norm() == 0.0
        for round_number in range(1, 4):
            run_round(tuner, tiny_database, [make_sales_query(f"s#{round_number}", "s")], round_number)
        assert tuner.theta_norm() >= 0.0
