"""Backend plumbing through the public API: specs, options, sessions, workers.

Two guarantees matter here:

* ``backend="hdd"`` (any spelling: :class:`DatabaseSpec`,
  :class:`SimulationOptions`, or nothing at all) is **bit-identical** to the
  pre-backend behaviour, for every registered tuner — the multi-backend axis
  must not perturb the reproduction;
* backend profiles survive every process boundary the API exposes
  (``run_competition(workers>1)`` pickles specs and options).
"""

from __future__ import annotations

import pickle

import pytest

from repro.api import (
    BackendProfile,
    DatabaseSpec,
    SimulationOptions,
    TunerSpec,
    TuningSession,
    UnknownBackendError,
    create_tuner,
    get_backend,
    run_competition,
)
from repro.workloads import StaticWorkload, get_benchmark

ALL_TUNERS = ["NoIndex", "MAB", "PDTool", "DDQN", "DDQN_SC"]


def tiny_spec(backend=None) -> DatabaseSpec:
    return DatabaseSpec("ssb", scale_factor=0.1, sample_rows=200, seed=4, backend=backend)


@pytest.fixture(scope="module")
def ssb_rounds():
    benchmark = get_benchmark("ssb")
    database = tiny_spec().create()
    return StaticWorkload(database, benchmark.templates[:4], n_rounds=4, seed=1).materialise()


def run_session(ssb_rounds, tuner_name: str, spec: DatabaseSpec, options: SimulationOptions):
    database = spec.create()
    tuner = create_tuner(tuner_name, database, TunerSpec("ssb", "static"))
    session = TuningSession(database, tuner, options)
    for workload_round in ssb_rounds:
        session.step_workload_round(workload_round)
    configuration = sorted(ix.index_id for ix in database.materialised_indexes)
    return session.report, configuration


def assert_reports_identical(a, b):
    assert a.n_rounds == b.n_rounds
    # recommendation_seconds is measured wall-clock (jittery by nature), so
    # parity is pinned on the model-time and configuration columns.
    for left, right in zip(a.rounds, b.rounds):
        assert left.round_number == right.round_number
        assert left.creation_seconds == right.creation_seconds
        assert left.execution_seconds == right.execution_seconds
        assert left.configuration_size == right.configuration_size
        assert left.configuration_bytes == right.configuration_bytes


# --------------------------------------------------------------------- #
# hdd is the seed behaviour, bit for bit, for every tuner
# --------------------------------------------------------------------- #
class TestHddParity:
    @pytest.mark.parametrize("name", ALL_TUNERS)
    def test_explicit_hdd_matches_default_everywhere(self, name, ssb_rounds):
        options = SimulationOptions(benchmark_name="ssb")
        seed_report, seed_configuration = run_session(
            ssb_rounds, name, tiny_spec(), options
        )

        via_spec, spec_configuration = run_session(
            ssb_rounds, name, tiny_spec(backend="hdd"), options
        )
        via_options, options_configuration = run_session(
            ssb_rounds, name, tiny_spec(),
            SimulationOptions(benchmark_name="ssb", backend="hdd"),
        )
        via_profile, profile_configuration = run_session(
            ssb_rounds, name, tiny_spec(),
            SimulationOptions(benchmark_name="ssb", backend=BackendProfile()),
        )

        for report in (via_spec, via_options, via_profile):
            assert_reports_identical(seed_report, report)
        for configuration in (spec_configuration, options_configuration, profile_configuration):
            assert configuration == seed_configuration


# --------------------------------------------------------------------- #
# plumbing and serialisation
# --------------------------------------------------------------------- #
class TestBackendPlumbing:
    def test_session_applies_options_backend(self, ssb_rounds):
        database = tiny_spec().create()
        assert database.backend_profile.name == "hdd"
        TuningSession(
            database,
            create_tuner("NoIndex", database),
            SimulationOptions(backend="inmemory"),
        )
        assert database.backend_profile.name == "inmemory"

    def test_session_rejects_unknown_backend(self, ssb_rounds):
        database = tiny_spec().create()
        with pytest.raises(UnknownBackendError, match="registered backends"):
            TuningSession(
                database,
                create_tuner("NoIndex", database),
                SimulationOptions(backend="zram"),
            )

    def test_spec_with_backend_is_picklable(self):
        spec = tiny_spec(backend="ssd")
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec
        assert clone.create().backend_profile.name == "ssd"
        # a raw profile instance travels just as well as a name
        spec = tiny_spec(backend=get_backend("inmemory"))
        clone = pickle.loads(pickle.dumps(spec))
        assert clone.create().backend_profile.name == "inmemory"

    def test_options_with_profile_are_picklable(self):
        options = SimulationOptions(backend=get_backend("ssd"))
        clone = pickle.loads(pickle.dumps(options))
        assert clone.backend == get_backend("ssd")

    def test_backend_round_trips_through_competition_workers(self, ssb_rounds):
        """Specs and options carrying backends must cross process boundaries.

        The spec names its backend by string and the options carry a full
        :class:`BackendProfile` instance; with two workers both travel
        through pickled task submissions, and the merged reports must be
        identical to a sequential run's.
        """
        spec = tiny_spec(backend="ssd")
        options = SimulationOptions(
            benchmark_name="ssb", backend=get_backend("ssd")
        )
        entries = {"NoIndex": "NoIndex", "MAB": "MAB"}
        sequential = run_competition(spec, entries, ssb_rounds, options, workers=1)
        parallel = run_competition(spec, entries, ssb_rounds, options, workers=2)
        assert list(sequential) == list(parallel) == list(entries)
        for label in entries:
            assert_reports_identical(sequential[label], parallel[label])

    def test_backends_change_observed_times(self, ssb_rounds):
        """The same workload must get cheaper down the storage tiers."""
        totals = {}
        for backend in ("hdd", "ssd", "inmemory"):
            report, _ = run_session(
                ssb_rounds, "NoIndex", tiny_spec(backend=backend),
                SimulationOptions(benchmark_name="ssb"),
            )
            totals[backend] = report.total_execution_seconds
        assert totals["hdd"] > totals["ssd"] > totals["inmemory"]
