"""Per-table backend placement: resolution, cross-tier pricing, migration.

The tentpole guarantees of the tiered-storage PR, pinned at the engine level:

* :meth:`CostModel.profile_for` resolves profiles per table (override or
  default) and an empty placement is bit-identical to the single-profile
  model;
* operators spanning tiers charge each side at its own tier (hash join,
  index-nested-loop, and the scan/seek/build family);
* :class:`TieredBackend` declares hot/cold splits declaratively, validates
  table names, and pickles;
* unknown table names in a placement raise the listed-names
  :class:`UnknownPlacementTableError` (mirroring ``UnknownBackendError``);
* :meth:`Database.set_backend` clears the placement, so a backend round trip
  restores a fresh database exactly, and :meth:`Database.promote` /
  :meth:`Database.demote` re-tier a live database mid-run.
"""

from __future__ import annotations

import pickle

import pytest

from repro.engine import (
    BackendProfile,
    CostModel,
    Database,
    IndexDefinition,
    TieredBackend,
    UnknownBackendError,
    UnknownPlacementTableError,
    UnknownTableError,
    get_backend,
    resolve_placement,
)
from tests.conftest import build_tiny_schema, build_tiny_specs

#: Two profiles with deliberately different CPU constants so per-side billing
#: is visible even in pure-CPU operators (the built-ins share CPU constants).
FAST_CPU = BackendProfile(name="fast_cpu", cpu_hash_seconds=1e-9, cpu_tuple_seconds=1e-9)
SLOW_CPU = BackendProfile(name="slow_cpu", cpu_hash_seconds=1e-5, cpu_tuple_seconds=1e-5)


@pytest.fixture()
def tiered_database() -> Database:
    """sales on the default hdd tier, customers pinned in memory."""
    return Database.from_specs(
        schema=build_tiny_schema(),
        table_specs=build_tiny_specs(),
        sample_rows=600,
        seed=3,
        memory_budget_bytes=2 * 1024 * 1024 * 1024,
        table_backends={"customers": "inmemory"},
    )


# --------------------------------------------------------------------- #
# cost-model resolution
# --------------------------------------------------------------------- #
class TestProfileResolution:
    def test_profile_for_resolves_override_then_default(self, tiny_database_readonly):
        model = CostModel("hdd", {"sales": "ssd"})
        sales = tiny_database_readonly.table_data("sales")
        customers = tiny_database_readonly.table_data("customers")
        assert model.profile_for(sales).name == "ssd"
        assert model.profile_for("sales").name == "ssd"
        assert model.profile_for(customers).name == "hdd"
        assert model.profile_for(None).name == "hdd"

    def test_empty_placement_is_bit_identical(self, tiny_database_readonly):
        """No overrides -> exactly the single-profile cost model."""
        flat, placed = CostModel("hdd"), CostModel("hdd", {})
        data = tiny_database_readonly.table_data("sales")
        index = IndexDefinition("sales", ("day",), ("amount",))
        assert placed.full_scan_seconds(data) == flat.full_scan_seconds(data)
        assert placed.index_seek_seconds(index, data, 500, covering=False) == (
            flat.index_seek_seconds(index, data, 500, covering=False)
        )
        assert placed.index_creation_seconds(index, data) == (
            flat.index_creation_seconds(index, data)
        )
        assert placed.hash_join_seconds(1000, 2000, data, data) == (
            flat.hash_join_seconds(1000, 2000)
        )

    def test_scans_and_seeks_price_at_their_tables_tier(self, tiered_database):
        sales = tiered_database.table_data("sales")
        customers = tiered_database.table_data("customers")
        model = tiered_database.cost_model
        # the in-memory customers table scans at memory speed...
        assert model.full_scan_seconds(customers) == (
            CostModel("inmemory").full_scan_seconds(customers)
        )
        # ...while the cold sales table still pays hdd prices
        assert model.full_scan_seconds(sales) == CostModel("hdd").full_scan_seconds(sales)

    def test_index_build_prices_at_the_indexed_tables_tier(self, tiered_database):
        hot_index = IndexDefinition("customers", ("region",))
        cold_index = IndexDefinition("sales", ("day",))
        model = tiered_database.cost_model
        customers = tiered_database.table_data("customers")
        sales = tiered_database.table_data("sales")
        assert model.index_creation_seconds(hot_index, customers) == (
            CostModel("inmemory").index_creation_seconds(hot_index, customers)
        )
        assert model.index_creation_seconds(cold_index, sales) == (
            CostModel("hdd").index_creation_seconds(cold_index, sales)
        )
        # drops too: the metadata constant is the tier's own
        assert model.index_drop_seconds(hot_index, customers) == (
            get_backend("inmemory").index_drop_seconds
        )


class TestCrossTierOperators:
    def test_cross_tier_hash_join_charges_each_side_at_its_own_tier(
        self, tiny_database_readonly
    ):
        model = CostModel(SLOW_CPU, {"customers": FAST_CPU})
        sales = tiny_database_readonly.table_data("sales")  # slow tier
        customers = tiny_database_readonly.table_data("customers")  # fast tier
        build_rows, probe_rows = 10_000, 50_000
        cost = model.hash_join_seconds(
            build_rows, probe_rows, build_data=customers, probe_data=sales
        )
        expected = (
            build_rows * FAST_CPU.cpu_hash_seconds * 2
            + probe_rows * SLOW_CPU.cpu_hash_seconds
        )
        assert cost == pytest.approx(expected)
        # swapping the sides swaps the billing
        swapped = model.hash_join_seconds(
            build_rows, probe_rows, build_data=sales, probe_data=customers
        )
        assert swapped == pytest.approx(
            build_rows * SLOW_CPU.cpu_hash_seconds * 2
            + probe_rows * FAST_CPU.cpu_hash_seconds
        )

    def test_cross_tier_index_nested_loop_splits_probe_and_io(
        self, tiny_database_readonly
    ):
        """Probe CPU rides the outer stream's tier; every I/O term is inner-tier."""
        sales = tiny_database_readonly.table_data("sales")
        index = IndexDefinition("sales", ("customer_id",), ("amount",))
        outer_rows = 5_000
        model = CostModel(FAST_CPU, {"sales": "hdd"})
        cost_fast_outer = model.index_nested_loop_seconds(
            outer_rows, index, sales, 40, covering=True, outer_data=None
        )
        slow_outer = CostModel(SLOW_CPU, {"sales": "hdd"})
        cost_slow_outer = slow_outer.index_nested_loop_seconds(
            outer_rows, index, sales, 40, covering=True, outer_data=None
        )
        # only the probe-CPU term moved between the two models (the inner
        # side is pinned on hdd in both), and it moved by the cpu_hash ratio
        probe_fast = outer_rows * FAST_CPU.cpu_hash_seconds * index.depth(sales)
        probe_slow = outer_rows * SLOW_CPU.cpu_hash_seconds * index.depth(sales)
        assert cost_slow_outer - cost_fast_outer == pytest.approx(
            probe_slow - probe_fast
        )
        # the inner side's I/O prices at the inner table's tier: moving the
        # inner table to memory collapses the cost even with a slow outer
        inner_hot = CostModel(SLOW_CPU, {"sales": "inmemory"})
        assert inner_hot.index_nested_loop_seconds(
            outer_rows, index, sales, 40, covering=False
        ) < model.index_nested_loop_seconds(
            outer_rows, index, sales, 40, covering=False
        )

    def test_sort_spills_at_the_tables_tier(self, tiny_database_readonly):
        """A sort of a hot table's entries never spills; the cold twin does."""
        sales = tiny_database_readonly.table_data("sales")
        model = CostModel("hdd", {"sales": "inmemory"})
        rows, width = 50_000_000, 100
        hot = model.sort_seconds(rows, width, sales)
        cold = model.sort_seconds(rows, width)  # default tier: spills
        assert hot == CostModel("inmemory").sort_seconds(rows, width)
        assert cold > hot


# --------------------------------------------------------------------- #
# placement resolution and TieredBackend
# --------------------------------------------------------------------- #
class TestPlacementResolution:
    def test_resolve_placement_resolves_names_and_profiles(self):
        resolved = resolve_placement(
            {"a": "ssd", "b": get_backend("cloud")}, ["a", "b", "c"]
        )
        assert resolved["a"].name == "ssd"
        assert resolved["b"].name == "cloud"
        assert "c" not in resolved

    def test_unknown_table_raises_listed_names_error(self):
        with pytest.raises(UnknownPlacementTableError, match=r"'orders'.*tables: a, b"):
            resolve_placement({"orders": "ssd"}, ["b", "a"])
        # mirrors UnknownBackendError: one exception satisfies every handler
        for kind in (KeyError, ValueError, UnknownTableError):
            with pytest.raises(kind):
                resolve_placement({"orders": "ssd"}, ["a", "b"])

    def test_unknown_backend_inside_placement_raises(self):
        with pytest.raises(UnknownBackendError, match="registered backends"):
            resolve_placement({"a": "floppy"}, ["a"])

    def test_tiered_backend_placement(self):
        tiered = TieredBackend(hot_tables=("customers",), hot="inmemory", cold="ssd")
        default, overrides = tiered.placement(["sales", "customers"])
        assert default.name == "ssd"
        assert {name: p.name for name, p in overrides.items()} == {
            "customers": "inmemory"
        }

    def test_tiered_backend_defaults_and_coercion(self):
        tiered = TieredBackend(hot_tables=["a", "b"])  # list coerced to tuple
        assert tiered.hot_tables == ("a", "b")
        assert tiered.hot_profile.name == "inmemory"
        assert tiered.cold_profile.name == "hdd"
        assert hash(tiered) == hash(TieredBackend(hot_tables=("a", "b")))

    def test_tiered_backend_validates_hot_tables(self):
        tiered = TieredBackend(hot_tables=("nope",))
        with pytest.raises(UnknownPlacementTableError, match="nope"):
            tiered.placement(["sales", "customers"])

    def test_tiered_backend_rejects_string_hot_tables(self):
        """A bare string must not decay into per-character table names."""
        with pytest.raises(TypeError, match="iterable of table names"):
            TieredBackend(hot_tables="lineitem")

    def test_tiered_backend_pickles(self):
        tiered = TieredBackend(
            hot_tables=("customers",), hot=get_backend("inmemory"), cold="cloud"
        )
        clone = pickle.loads(pickle.dumps(tiered))
        assert clone == tiered
        assert clone.cold_profile.name == "cloud"


# --------------------------------------------------------------------- #
# database plumbing and migration
# --------------------------------------------------------------------- #
class TestDatabasePlacement:
    def test_ctor_mapping_and_accessors(self, tiered_database):
        assert tiered_database.backend_profile.name == "hdd"
        assert {n: p.name for n, p in tiered_database.table_backends.items()} == {
            "customers": "inmemory"
        }
        assert tiered_database.backend_profile_for("customers").name == "inmemory"
        assert tiered_database.backend_profile_for("sales").name == "hdd"
        with pytest.raises(UnknownTableError):
            tiered_database.backend_profile_for("orders")
        summary = tiered_database.summary()
        assert summary["backend"] == "hdd"
        assert summary["table_backends"] == {"customers": "inmemory"}

    def test_ctor_tiered_backend(self):
        database = Database.from_specs(
            schema=build_tiny_schema(),
            table_specs=build_tiny_specs(),
            sample_rows=300,
            seed=3,
            table_backends=TieredBackend(hot_tables=("customers",), cold="ssd"),
        )
        assert database.backend_profile.name == "ssd"
        assert database.backend_profile_for("customers").name == "inmemory"

    def test_ctor_rejects_backend_plus_tiered_backend(self):
        with pytest.raises(ValueError, match="not both"):
            Database.from_specs(
                schema=build_tiny_schema(),
                table_specs=build_tiny_specs(),
                sample_rows=300,
                seed=3,
                backend="ssd",
                table_backends=TieredBackend(hot_tables=("customers",)),
            )

    def test_ctor_rejects_unknown_placement_table(self):
        with pytest.raises(UnknownPlacementTableError, match="orders"):
            Database.from_specs(
                schema=build_tiny_schema(),
                table_specs=build_tiny_specs(),
                sample_rows=300,
                seed=3,
                table_backends={"orders": "ssd"},
            )

    def test_promote_and_demote_round_trip(self, tiny_database):
        sales = tiny_database.table_data("sales")
        cold_scan = tiny_database.cost_model.full_scan_seconds(sales)
        tiny_database.promote("sales")
        assert tiny_database.backend_profile_for("sales").name == "inmemory"
        hot_scan = tiny_database.cost_model.full_scan_seconds(sales)
        assert hot_scan < cold_scan
        tiny_database.demote("sales")
        assert tiny_database.table_backends == {}
        assert tiny_database.cost_model.full_scan_seconds(sales) == cold_scan
        # demote to an explicit tier is a placement, not a removal
        tiny_database.demote("sales", "cloud")
        assert tiny_database.backend_profile_for("sales").name == "cloud"

    def test_set_table_backend_validates(self, tiny_database):
        with pytest.raises(UnknownPlacementTableError, match="tables: customers, sales"):
            tiny_database.set_table_backend("orders", "ssd")
        with pytest.raises(UnknownBackendError):
            tiny_database.set_table_backend("sales", "floppy")

    def test_set_table_backends_replaces_placement(self, tiny_database):
        tiny_database.set_table_backend("sales", "ssd")
        tiny_database.set_table_backends({"customers": "inmemory"})
        # the mapping replaced the overrides wholesale (sales back to default)
        assert {n: p.name for n, p in tiny_database.table_backends.items()} == {
            "customers": "inmemory"
        }
        assert tiny_database.backend_profile_for("sales").name == "hdd"
        # a TieredBackend replaces the default tier too
        tiny_database.set_table_backends(
            TieredBackend(hot_tables=("customers",), cold="cloud")
        )
        assert tiny_database.backend_profile.name == "cloud"
        assert tiny_database.backend_profile_for("customers").name == "inmemory"

    def test_set_backend_clears_placement(self, tiered_database):
        tiered_database.set_backend("ssd")
        assert tiered_database.table_backends == {}
        assert tiered_database.backend_profile_for("customers").name == "ssd"

    def test_live_database_retimes_immediately(self, tiny_database):
        """A materialised index's table can migrate under the same catalog."""
        index = IndexDefinition("sales", ("day",), ("amount",))
        tiny_database.create_index(index)
        size_before = tiny_database.index_size_bytes(index)
        data_size_before = tiny_database.data_size_bytes
        tiny_database.promote("sales")
        # byte quantities are tier-independent; only the seconds moved
        assert tiny_database.index_size_bytes(index) == size_before
        assert tiny_database.data_size_bytes == data_size_before
        assert tiny_database.has_index(index)
