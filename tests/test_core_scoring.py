"""The packed scoring core and the ``ScoringConfig`` API surface.

The load-bearing guarantees:

* **score parity** — the packed blocked GEMM pass produces bit-identical
  scores to the monolithic :class:`~repro.core.linear_bandit.LinearScorer`
  pass (a single-block pool *is* the monolithic pass) and to the legacy
  per-shard pass (each block is scored by the same 2-D kernel call on a
  byte-compatible matrix), at any worker count and for any input dtype;
* **cleanup** — the shared-memory process path leaves no ``/dev/shm``
  residue, even when a worker dies mid-pass (the pass degrades to the
  serial path with identical scores);
* **one config surface** — the legacy
  ``shard_by``/``shard_top_k``/``shard_workers``/``batch_scoring`` knobs
  are :class:`DeprecationWarning` shims that normalise into
  :class:`~repro.core.scoring.ScoringConfig` bit-for-bit.
"""

from __future__ import annotations

import dataclasses
import os
import pickle
import warnings

import numpy as np
import pytest

from repro.api import (
    ScoringConfig,
    ScoringNotSupportedError,
    ScoringStats,
    SimulationOptions,
    TuningSession,
    UnknownScoringStrategyError,
    create_tuner,
)
from repro.core import MabConfig, MabTuner
from repro.core import scoring as scoring_module
from repro.core.linear_bandit import C2UCB, LinearScorer
from repro.core.scoring import (
    SCORING_STRATEGIES,
    ConfigurableScoring,
    pack_arm_pool,
    score_packed,
    ucb_scores,
)
from repro.fleet import FleetConfig
from repro.workloads import StaticWorkload, get_benchmark


def shm_residue() -> list[str]:
    """Shared-memory segments of the scoring core still present in /dev/shm."""
    root = "/dev/shm"
    if not os.path.isdir(root):  # pragma: no cover - non-Linux fallback
        return []
    return sorted(
        name
        for name in os.listdir(root)
        if name.startswith(scoring_module._SHM_PREFIX)
    )


def random_problem(seed: int, n_arms: int, dimension: int):
    """A random (theta, V⁻¹, contexts) triple with a symmetric PSD inverse."""
    rng = np.random.default_rng(seed)
    theta = rng.normal(size=dimension)
    half = rng.normal(size=(dimension, dimension))
    v_inverse = half @ half.T / dimension + np.eye(dimension)
    contexts = rng.normal(size=(n_arms, dimension))
    return theta, v_inverse, contexts


def split_rows(n_rows: int, n_blocks: int) -> list[tuple[int, int]]:
    """Deterministic uneven block boundaries covering ``range(n_rows)``."""
    edges = sorted({0, n_rows, *((i * n_rows) // n_blocks for i in range(1, n_blocks))})
    return [(start, stop) for start, stop in zip(edges, edges[1:]) if stop > start]


def pack_rows(contexts: np.ndarray, boundaries: list[tuple[int, int]]):
    blocks = [contexts[start:stop] for start, stop in boundaries]
    positions = [list(range(start, stop)) for start, stop in boundaries]
    sizes = [[128] * (stop - start) for start, stop in boundaries]
    keys = [f"block{i}" for i in range(len(boundaries))]
    return pack_arm_pool(blocks, positions, sizes, keys)


# --------------------------------------------------------------------- #
# ScoringConfig: validation, immutability, picklability
# --------------------------------------------------------------------- #
class TestScoringConfig:
    def test_unknown_strategy_is_keyerror_and_valueerror_listing_valid(self):
        with pytest.raises(UnknownScoringStrategyError) as excinfo:
            ScoringConfig(strategy="region")
        assert isinstance(excinfo.value, KeyError)
        assert isinstance(excinfo.value, ValueError)
        message = str(excinfo.value)
        for strategy in SCORING_STRATEGIES:
            assert strategy in message

    def test_strategy_spelling_is_normalised(self):
        assert ScoringConfig(strategy=" Table ").strategy == "table"
        assert ScoringConfig(strategy="HASH").shard_by == "hash"
        assert ScoringConfig().shard_by is None

    @pytest.mark.parametrize(
        "kwargs",
        [dict(top_k=0), dict(workers=-1), dict(n_hash_shards=0)],
    )
    def test_out_of_range_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ScoringConfig(**kwargs)

    def test_frozen_and_picklable(self):
        config = ScoringConfig(strategy="table", top_k=None, workers=2, batch=False)
        with pytest.raises(dataclasses.FrozenInstanceError):
            config.workers = 4
        assert pickle.loads(pickle.dumps(config)) == config

    def test_resolved_workers_never_exceeds_blocks(self):
        assert ScoringConfig(workers=16).resolved_workers(3) == 3
        assert ScoringConfig(workers=2).resolved_workers(64) == 2
        assert ScoringConfig(workers=0).resolved_workers(64) >= 1


# --------------------------------------------------------------------- #
# score parity: packed == monolithic == per-shard, bit for bit
# --------------------------------------------------------------------- #
class TestPackedParity:
    def test_kernel_matches_linear_scorer_bitwise(self):
        theta, v_inverse, contexts = random_problem(0, 200, 12)
        scorer = LinearScorer(theta, v_inverse)
        kernel = ucb_scores(theta, v_inverse, contexts, alpha=1.5)
        assert np.array_equal(kernel, scorer.upper_confidence_scores(contexts, 1.5))

    def test_kernel_matches_live_learner_bitwise(self):
        theta, v_inverse, contexts = random_problem(1, 50, 8)
        learner = C2UCB(dimension=8)
        learner.update(contexts[:10], np.linspace(-1, 1, 10))
        expected = learner.upper_confidence_scores(contexts, 2.0)
        kernel = ucb_scores(learner.theta(), learner._inverse(), contexts, 2.0)
        assert np.array_equal(kernel, expected)

    @pytest.mark.parametrize("n_arms", [1, 7, 64, 500])
    @pytest.mark.parametrize("n_blocks", [1, 3, 8])
    def test_packed_blocks_match_monolithic_and_per_shard(self, n_arms, n_blocks):
        theta, v_inverse, contexts = random_problem(n_arms * 31 + n_blocks, n_arms, 10)
        scorer = LinearScorer(theta, v_inverse)
        boundaries = split_rows(n_arms, n_blocks)
        packed = pack_rows(contexts, boundaries)
        result = score_packed(packed, theta, v_inverse, alpha=0.7)
        assert not result.used_processes

        # Per-shard parity: every block scores exactly as the legacy pass
        # scored its standalone shard matrix.
        for start, stop in boundaries:
            assert np.array_equal(
                result.scores[start:stop],
                scorer.upper_confidence_scores(contexts[start:stop], 0.7),
            )
        # Monolithic parity: a single-block pool IS the monolithic pass.
        if len(boundaries) == 1:
            assert np.array_equal(
                result.scores, scorer.upper_confidence_scores(contexts, 0.7)
            )

    @pytest.mark.parametrize("dtype", [np.float64, np.float32, np.int64])
    def test_parity_across_input_dtypes(self, dtype):
        theta, v_inverse, contexts = random_problem(5, 40, 6)
        cast = (contexts * 8).astype(dtype)
        scorer = LinearScorer(theta, v_inverse)
        packed = pack_rows(cast, split_rows(40, 4))
        result = score_packed(packed, theta, v_inverse, alpha=1.0)
        # LinearScorer converts inputs with asarray(dtype=float); the packed
        # pool normalises to float64 at pack time — same numeric path.
        assert np.array_equal(
            result.scores, scorer.upper_confidence_scores(cast, 1.0)
        )

    def test_empty_pool_scores_empty(self):
        packed = pack_arm_pool([], [], [], [])
        result = score_packed(packed, np.zeros(3), np.eye(3), alpha=1.0)
        assert result.scores.shape == (0,)

    def test_pack_rejects_misaligned_blocks(self):
        with pytest.raises(ValueError):
            pack_arm_pool([np.zeros((2, 3))], [[0]], [[1, 2]], ["k"])
        with pytest.raises(ValueError):
            pack_arm_pool([np.zeros((2, 3))], [[0, 1]], [[1, 2]], [])


# --------------------------------------------------------------------- #
# the shared-memory process pool
# --------------------------------------------------------------------- #
class TestProcessPool:
    @pytest.mark.parametrize("workers", [2, 3])
    def test_worker_count_invariance_bitwise(self, workers):
        theta, v_inverse, contexts = random_problem(9, 300, 14)
        packed = pack_rows(contexts, split_rows(300, 6))
        serial = score_packed(packed, theta, v_inverse, alpha=1.3, workers=1)
        parallel = score_packed(packed, theta, v_inverse, alpha=1.3, workers=workers)
        assert parallel.used_processes
        assert parallel.shared_memory_bytes > 0
        assert np.array_equal(parallel.scores, serial.scores)
        assert shm_residue() == []

    def test_single_block_pool_stays_serial(self):
        theta, v_inverse, contexts = random_problem(10, 50, 6)
        packed = pack_rows(contexts, [(0, 50)])
        result = score_packed(packed, theta, v_inverse, alpha=1.0, workers=4)
        assert not result.used_processes
        assert result.shared_memory_bytes == 0

    def test_worker_crash_falls_back_to_serial_and_unlinks(self, monkeypatch):
        """A worker dying mid-pass must not change scores or leak segments."""
        theta, v_inverse, contexts = random_problem(11, 120, 8)
        packed = pack_rows(contexts, split_rows(120, 5))
        serial = score_packed(packed, theta, v_inverse, alpha=0.9, workers=1)

        monkeypatch.setattr(scoring_module, "_score_block_worker", _crash_worker)
        crashed = score_packed(packed, theta, v_inverse, alpha=0.9, workers=2)
        assert not crashed.used_processes
        assert np.array_equal(crashed.scores, serial.scores)
        assert shm_residue() == []

        monkeypatch.undo()
        # The broken pool was discarded: the next parallel pass forks fresh
        # workers and succeeds again.
        recovered = score_packed(packed, theta, v_inverse, alpha=0.9, workers=2)
        assert recovered.used_processes
        assert np.array_equal(recovered.scores, serial.scores)
        assert shm_residue() == []


def _crash_worker(manifest, alpha, block_slices):
    """Stand-in worker that dies without cleanup (simulates a hard crash)."""
    os._exit(1)


# --------------------------------------------------------------------- #
# the tuner routes through the core
# --------------------------------------------------------------------- #
def run_configurations(scoring: ScoringConfig | None, n_rounds: int = 6):
    """Per-round selected configurations of a MAB session at fixed seeds."""
    benchmark = get_benchmark("ssb")
    database = benchmark.create_database(sample_rows=300, seed=7)
    rounds = StaticWorkload(
        database, benchmark.templates, n_rounds=n_rounds, seed=1
    ).materialise()
    session = TuningSession(
        database,
        create_tuner("MAB", database),
        SimulationOptions(benchmark_name="ssb", scoring=scoring),
    )
    configurations = []
    for workload_round in rounds:
        recommendation = session.recommend(round_number=workload_round.round_number)
        configurations.append(
            sorted(index.index_id for index in recommendation.configuration)
        )
        session.execute(workload_round.queries)
        session.observe()
    return configurations, session.tuner


class TestTunerIntegration:
    def test_mab_tuner_satisfies_configurable_scoring(self, tiny_database):
        assert isinstance(MabTuner(tiny_database), ConfigurableScoring)

    def test_packed_session_matches_monolithic_with_process_workers(self):
        monolithic, _ = run_configurations(None)
        packed, tuner = run_configurations(
            ScoringConfig(strategy="table", workers=2)
        )
        assert packed == monolithic
        assert any(index_ids for index_ids in packed), "runs must select something"
        stats = tuner.last_scoring_stats
        assert isinstance(stats, ScoringStats)
        assert stats.strategy == "table"
        assert stats.workers == 2
        assert stats.used_processes
        assert stats.shared_memory_bytes > 0
        assert shm_residue() == []
        # The deprecated diagnostic stays a derived view of the new one.
        legacy = tuner.last_shard_stats
        assert legacy is not None
        assert (legacy.n_arms, legacy.n_shards, legacy.n_candidates) == (
            stats.n_arms,
            stats.n_shards,
            stats.n_candidates,
        )

    def test_configure_scoring_rejects_non_config(self, tiny_database):
        with pytest.raises(TypeError):
            MabTuner(tiny_database).configure_scoring("table")

    def test_session_scoring_installs_on_tuner(self, tiny_database):
        config = ScoringConfig(strategy="hash", top_k=None, n_hash_shards=4)
        tuner = MabTuner(tiny_database)
        TuningSession(tiny_database, tuner, SimulationOptions(scoring=config))
        assert tuner.config.scoring == config

    def test_session_scoring_on_non_pool_tuner_raises_typed_error(
        self, tiny_database
    ):
        tuner = create_tuner("NoIndex", tiny_database)
        with pytest.raises(ScoringNotSupportedError) as excinfo:
            TuningSession(
                tiny_database, tuner, SimulationOptions(scoring=ScoringConfig())
            )
        assert isinstance(excinfo.value, TypeError)
        assert isinstance(excinfo.value, ValueError)

    def test_legacy_shard_by_still_ignored_by_non_pool_tuners(self, tiny_database):
        tuner = create_tuner("NoIndex", tiny_database)
        with pytest.warns(DeprecationWarning):
            options = SimulationOptions(shard_by="table")
        TuningSession(tiny_database, tuner, options)  # must not raise


# --------------------------------------------------------------------- #
# deprecation shims: old spellings == new spellings, bit for bit
# --------------------------------------------------------------------- #
class TestDeprecationShims:
    def test_mab_config_legacy_knobs_normalise_and_warn(self):
        with pytest.warns(DeprecationWarning):
            legacy = MabConfig(
                shard_by="table", shard_top_k=4, shard_workers=2, n_hash_shards=3
            )
        explicit = MabConfig(
            scoring=ScoringConfig(strategy="table", top_k=4, workers=2, n_hash_shards=3)
        )
        assert legacy == explicit
        assert legacy.shard_by == "table"
        assert legacy.shard_top_k == 4
        assert legacy.shard_workers == 2
        assert legacy.n_hash_shards == 3

    def test_mab_config_replace_round_trip_neither_warns_nor_mutates(self):
        with pytest.warns(DeprecationWarning):
            legacy = MabConfig(shard_by="hash", shard_workers=2)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            bumped = dataclasses.replace(legacy, seed=23)
        assert bumped.scoring == legacy.scoring
        assert bumped.seed == 23

    def test_simulation_options_shard_by_warns_and_normalises(self):
        with pytest.warns(DeprecationWarning):
            options = SimulationOptions(shard_by="table")
        assert options.scoring == ScoringConfig(strategy="table")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            explicit = SimulationOptions(scoring=ScoringConfig(strategy="table"))
        assert explicit.scoring == options.scoring

    def test_simulation_options_shard_by_none_stays_no_op(self):
        with pytest.warns(DeprecationWarning):
            options = SimulationOptions(shard_by=None)
        assert options.scoring is None

    def test_fleet_config_batch_scoring_warns_and_normalises(self):
        with pytest.warns(DeprecationWarning):
            legacy = FleetConfig(batch_scoring=False)
        assert legacy.batch_scoring is False
        assert legacy.effective_scoring().batch is False
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            default = FleetConfig()
            explicit = FleetConfig(scoring=ScoringConfig(batch=False))
        assert default.batch_scoring is True
        assert explicit.batch_scoring is False

    def test_legacy_session_spelling_matches_new_bit_for_bit(self):
        """The deprecated knobs must drive the exact same recommendations."""
        new_style, _ = run_configurations(ScoringConfig(strategy="table"))

        benchmark = get_benchmark("ssb")
        database = benchmark.create_database(sample_rows=300, seed=7)
        rounds = StaticWorkload(
            database, benchmark.templates, n_rounds=6, seed=1
        ).materialise()
        with pytest.warns(DeprecationWarning):
            options = SimulationOptions(benchmark_name="ssb", shard_by="table")
        session = TuningSession(database, create_tuner("MAB", database), options)
        old_style = []
        for workload_round in rounds:
            recommendation = session.recommend(
                round_number=workload_round.round_number
            )
            old_style.append(
                sorted(index.index_id for index in recommendation.configuration)
            )
            session.execute(workload_round.queries)
            session.observe()
        assert old_style == new_style
