"""Unit tests for the engine's true cost model."""

import pytest

from repro.engine import (
    CostModel,
    CostModelParameters,
    IndexDefinition,
    pages_touched_by_random_fetches,
)


@pytest.fixture()
def cost_model() -> CostModel:
    return CostModel()


@pytest.fixture()
def sales_data(tiny_database_readonly):
    return tiny_database_readonly.table_data("sales")


class TestPageTouchApproximation:
    def test_zero_fetches(self):
        assert pages_touched_by_random_fetches(0, 100) == 0.0

    def test_single_page_table(self):
        assert pages_touched_by_random_fetches(50, 1) == 1.0

    def test_bounded_by_table_pages(self):
        assert pages_touched_by_random_fetches(10_000_000, 500) <= 500

    def test_small_fetches_touch_about_one_page_each(self):
        touched = pages_touched_by_random_fetches(10, 1_000_000)
        assert 9.9 < touched <= 10.0

    def test_monotone_in_fetches(self):
        previous = 0.0
        for fetches in [10, 100, 1_000, 10_000, 100_000]:
            touched = pages_touched_by_random_fetches(fetches, 10_000)
            assert touched >= previous
            previous = touched


class TestScanAndSeek:
    def test_full_scan_scales_with_table_size(self, cost_model, tiny_database_readonly):
        sales = tiny_database_readonly.table_data("sales")
        customers = tiny_database_readonly.table_data("customers")
        assert cost_model.full_scan_seconds(sales) > cost_model.full_scan_seconds(customers)

    def test_zero_matching_rows_pays_traversal_only(self, cost_model, sales_data):
        """A seek that matches nothing must not be charged a leaf-page read."""
        index = IndexDefinition("sales", ("day",), ("amount",))
        traversal = index.depth(sales_data) * cost_model.parameters.random_page_read_seconds
        for covering in (True, False):
            cost = cost_model.index_seek_seconds(index, sales_data, 0, covering=covering)
            assert cost == pytest.approx(traversal)
        one_row = cost_model.index_seek_seconds(index, sales_data, 1, covering=True)
        assert one_row > cost_model.index_seek_seconds(index, sales_data, 0, covering=True)

    def test_selective_covering_seek_beats_full_scan(self, cost_model, sales_data):
        index = IndexDefinition("sales", ("day",), ("amount", "channel"))
        seek = cost_model.index_seek_seconds(index, sales_data, matching_rows=1000, covering=True)
        assert seek < cost_model.full_scan_seconds(sales_data)

    def test_covering_seek_cheaper_than_non_covering(self, cost_model, sales_data):
        index = IndexDefinition("sales", ("day",), ("amount",))
        covering = cost_model.index_seek_seconds(index, sales_data, 50_000, covering=True)
        lookup = cost_model.index_seek_seconds(index, sales_data, 50_000, covering=False)
        assert covering < lookup

    def test_unselective_non_covering_seek_worse_than_scan(self, cost_model, sales_data):
        index = IndexDefinition("sales", ("day",))
        matching = int(sales_data.full_row_count * 0.5)
        seek = cost_model.index_seek_seconds(index, sales_data, matching, covering=False)
        assert seek > cost_model.full_scan_seconds(sales_data)

    def test_seek_cost_monotone_in_matching_rows(self, cost_model, sales_data):
        index = IndexDefinition("sales", ("day",), ("amount",))
        costs = [
            cost_model.index_seek_seconds(index, sales_data, rows, covering=True)
            for rows in (10, 1_000, 100_000)
        ]
        assert costs == sorted(costs)

    def test_index_only_scan_cheaper_than_heap_scan_for_narrow_index(
        self, cost_model, sales_data
    ):
        narrow = IndexDefinition("sales", ("day",), ("amount",))
        assert cost_model.index_only_scan_seconds(narrow, sales_data) < cost_model.full_scan_seconds(
            sales_data
        )


class TestJoinsAndSorts:
    def test_hash_join_scales_with_inputs(self, cost_model):
        small = cost_model.hash_join_seconds(1_000, 1_000)
        large = cost_model.hash_join_seconds(1_000_000, 1_000_000)
        assert large > small

    def test_sort_spills_past_work_memory(self, cost_model):
        in_memory = cost_model.sort_seconds(10_000, row_width_bytes=100)
        spilling = cost_model.sort_seconds(50_000_000, row_width_bytes=100)
        assert spilling > in_memory * 100

    def test_sort_spill_bills_each_pass_at_its_own_bandwidth(self):
        """Regression: the spill's read pass was billed at *write* bandwidth.

        A spilling sort does one write pass and one read pass; with a profile
        whose read bandwidth is 10x its write bandwidth the read pass must be
        10x cheaper, not billed at the write rate (the old ``2 * bytes /
        write_bw`` formula).  Pinned exactly on an asymmetric profile.
        """
        profile = CostModelParameters(
            name="asymmetric",
            sequential_read_bytes_per_second=1000e6,
            sequential_write_bytes_per_second=100e6,
        )
        model = CostModel(profile)
        rows, width = 50_000_000, 100
        spill_bytes = rows * width
        assert spill_bytes > profile.sort_spill_threshold_bytes
        cpu = CostModel(
            CostModelParameters(name="no_spill", sort_spill_threshold_bytes=1 << 62)
        ).sort_seconds(rows, width)
        io = model.sort_seconds(rows, width) - cpu
        expected_io = spill_bytes / 100e6 + spill_bytes / 1000e6
        assert io == pytest.approx(expected_io)
        # the old formula would have charged both passes at the write rate
        assert io < 2 * spill_bytes / 100e6

    def test_sort_spill_on_hdd_write_and_read_passes(self, cost_model):
        """On the default tier the read pass is billed at 200 MB/s, write at 150."""
        rows, width = 50_000_000, 100
        spill_bytes = rows * width
        no_spill_cpu = CostModel(
            CostModelParameters(sort_spill_threshold_bytes=1 << 62)
        ).sort_seconds(rows, width)
        io = cost_model.sort_seconds(rows, width) - no_spill_cpu
        assert io == pytest.approx(spill_bytes / 150e6 + spill_bytes / 200e6)

    def test_index_nested_loop_grows_with_outer_rows_but_io_is_bounded(
        self, cost_model, sales_data
    ):
        index = IndexDefinition("sales", ("customer_id",))
        small = cost_model.index_nested_loop_seconds(1_000, index, sales_data, 40, covering=True)
        large = cost_model.index_nested_loop_seconds(1_000_000, index, sales_data, 40, covering=True)
        assert large > small
        # The I/O component saturates: going 10x larger again must cost less
        # than 10x more (probe CPU dominates once every page is cached).
        huge = cost_model.index_nested_loop_seconds(10_000_000, index, sales_data, 40, covering=True)
        assert huge < large * 10

    def test_aggregation_cost_linear(self, cost_model):
        assert cost_model.aggregation_seconds(2_000_000) == pytest.approx(
            2 * cost_model.aggregation_seconds(1_000_000)
        )


class TestIndexMaintenance:
    def test_creation_includes_scan_sort_write(self, cost_model, sales_data):
        index = IndexDefinition("sales", ("day",), ("amount",))
        creation = cost_model.index_creation_seconds(index, sales_data)
        assert creation > cost_model.full_scan_seconds(sales_data)

    def test_drop_is_cheap(self, cost_model, sales_data):
        index = IndexDefinition("sales", ("day",))
        assert cost_model.index_drop_seconds(index, sales_data) < 1.0


class TestParameters:
    def test_custom_parameters_change_costs(self, sales_data):
        slow = CostModel(CostModelParameters(sequential_read_bytes_per_second=10e6))
        fast = CostModel(CostModelParameters(sequential_read_bytes_per_second=1000e6))
        assert slow.full_scan_seconds(sales_data) > fast.full_scan_seconds(sales_data)

    def test_page_read_and_write_seconds_positive(self):
        parameters = CostModelParameters()
        assert parameters.page_read_seconds() > 0
        assert parameters.page_write_seconds() > 0
