"""Documentation checks: links resolve, fenced examples don't rot.

Three guards over README.md and every ``docs/*.md`` file, run as part of
tier-1 (and as CI's dedicated docs job):

1. every relative markdown link points at a file or directory that exists;
2. every fenced ``python`` block is valid Python (``compile()``);
3. every ``import repro...`` / ``from repro... import ...`` statement inside
   a fenced block resolves against the installed package — renaming or
   removing a public name without updating the docs fails the build.

Syntax-only compilation keeps illustrative snippets (ellipses, undefined
helper calls like ``my_query_stream()``) legal, while the import check
catches the rot that actually bites readers: quickstarts importing names
that no longer exist.
"""

from __future__ import annotations

import ast
import importlib
import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]

#: ``[text](target)`` pairs; targets may carry an anchor fragment.
LINK_PATTERN = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
#: Fenced blocks opened as ```python (anything after the language is ignored).
FENCE_PATTERN = re.compile(r"```python[^\n]*\n(.*?)```", re.DOTALL)


def documentation_files() -> list[Path]:
    files = [REPO_ROOT / "README.md"]
    files.extend(sorted((REPO_ROOT / "docs").glob("*.md")))
    return [path for path in files if path.exists()]


def doc_ids() -> list[str]:
    return [str(path.relative_to(REPO_ROOT)) for path in documentation_files()]


def python_blocks(path: Path) -> list[str]:
    return [match.group(1) for match in FENCE_PATTERN.finditer(path.read_text())]


def test_documentation_set_is_complete():
    names = set(doc_ids())
    assert "README.md" in names
    assert {
        "docs/ARCHITECTURE.md",
        "docs/API.md",
        "docs/BENCHMARKS.md",
        "docs/SAFETY.md",
        "docs/STATIC_ANALYSIS.md",
    } <= names


def test_readme_links_every_docs_page():
    readme = (REPO_ROOT / "README.md").read_text()
    pages = (
        "docs/ARCHITECTURE.md",
        "docs/API.md",
        "docs/BENCHMARKS.md",
        "docs/SAFETY.md",
        "docs/STATIC_ANALYSIS.md",
    )
    for page in pages:
        assert page in readme, f"README.md does not link {page}"


@pytest.mark.parametrize("doc", doc_ids())
def test_relative_links_resolve(doc):
    path = REPO_ROOT / doc
    broken = []
    for target in LINK_PATTERN.findall(path.read_text()):
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        relative = target.split("#", 1)[0]
        if not relative:
            continue
        if not (path.parent / relative).exists():
            broken.append(target)
    assert not broken, f"{doc} has broken relative links: {broken}"


@pytest.mark.parametrize("doc", doc_ids())
def test_fenced_python_blocks_compile(doc):
    path = REPO_ROOT / doc
    for number, block in enumerate(python_blocks(path), start=1):
        try:
            compile(block, f"{doc}#block{number}", "exec")
        except SyntaxError as error:  # pragma: no cover - failure path
            pytest.fail(f"{doc} python block {number} does not compile: {error}")


def iter_repro_imports(block: str):
    """Yield (module, name-or-None) pairs for every ``repro`` import in a block."""
    tree = ast.parse(block)
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name.split(".")[0] == "repro":
                    yield alias.name, None
        elif (
            isinstance(node, ast.ImportFrom)
            and node.level == 0
            and node.module
            and node.module.split(".")[0] == "repro"
        ):
            for alias in node.names:
                yield node.module, alias.name


def resolve_import(module: str, name: str | None) -> str | None:
    """Import ``module`` (and ``name`` from it); return an error string on failure."""
    try:
        imported = importlib.import_module(module)
    except Exception as error:  # noqa: BLE001 - report any import failure
        return f"import {module}: {error}"
    if name is None or name == "*":
        return None
    if hasattr(imported, name):
        return None
    try:
        importlib.import_module(f"{module}.{name}")
    except Exception:  # noqa: BLE001
        return f"from {module} import {name}: no such attribute or submodule"
    return None


@pytest.mark.parametrize("doc", doc_ids())
def test_repro_imports_in_snippets_resolve(doc):
    path = REPO_ROOT / doc
    failures = []
    for number, block in enumerate(python_blocks(path), start=1):
        for module, name in iter_repro_imports(block):
            error = resolve_import(module, name)
            if error is not None:
                failures.append(f"block {number}: {error}")
    assert not failures, f"{doc} references stale API names:\n" + "\n".join(failures)
