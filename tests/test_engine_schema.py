"""Unit tests for schema definitions (tables, columns, keys, validation)."""

import pytest

from repro.engine import (
    Column,
    ColumnType,
    ForeignKey,
    Schema,
    SchemaError,
    Table,
    UnknownColumnError,
    UnknownTableError,
)


class TestColumn:
    def test_default_width_per_type(self):
        assert Column("a", ColumnType.INTEGER).width == 4
        assert Column("a", ColumnType.FLOAT).width == 8
        assert Column("a", ColumnType.DATE).width == 4
        assert Column("a", ColumnType.VARCHAR).width == 32

    def test_explicit_width_overrides_default(self):
        assert Column("a", ColumnType.VARCHAR, width_bytes=100).width == 100

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            Column("")

    def test_non_positive_width_rejected(self):
        with pytest.raises(SchemaError):
            Column("a", ColumnType.INTEGER, width_bytes=0)

    def test_numeric_types(self):
        assert ColumnType.INTEGER.is_numeric
        assert ColumnType.DECIMAL.is_numeric
        assert not ColumnType.CHAR.is_numeric


class TestTable:
    def test_column_lookup(self):
        table = Table("t", [Column("a"), Column("b")])
        assert table.column("a").name == "a"
        assert table.has_column("b")
        assert not table.has_column("c")

    def test_unknown_column_raises(self):
        table = Table("t", [Column("a")])
        with pytest.raises(UnknownColumnError):
            table.column("missing")

    def test_duplicate_columns_rejected(self):
        with pytest.raises(SchemaError):
            Table("t", [Column("a"), Column("a")])

    def test_empty_table_rejected(self):
        with pytest.raises(SchemaError):
            Table("t", [])

    def test_primary_key_must_exist(self):
        with pytest.raises(SchemaError):
            Table("t", [Column("a")], primary_key=("zzz",))

    def test_row_width_includes_header(self):
        table = Table("t", [Column("a"), Column("b")])
        assert table.row_width_bytes == 8 + 4 + 4

    def test_column_names_order_preserved(self):
        table = Table("t", [Column("z"), Column("a"), Column("m")])
        assert table.column_names == ["z", "a", "m"]


class TestSchema:
    def test_table_lookup_and_unknown(self):
        schema = Schema("s", [Table("t", [Column("a")])])
        assert schema.table("t").name == "t"
        assert schema.has_table("t")
        with pytest.raises(UnknownTableError):
            schema.table("missing")

    def test_duplicate_tables_rejected(self):
        with pytest.raises(SchemaError):
            Schema("s", [Table("t", [Column("a")]), Table("t", [Column("b")])])

    def test_foreign_key_validation(self):
        parent = Table("p", [Column("id")])
        child = Table("c", [Column("p_id")])
        schema = Schema("s", [parent, child], [ForeignKey("c", "p_id", "p", "id")])
        assert schema.foreign_keys_of("c")[0].parent_table == "p"

    def test_invalid_foreign_key_column_rejected(self):
        parent = Table("p", [Column("id")])
        child = Table("c", [Column("p_id")])
        with pytest.raises(UnknownColumnError):
            Schema("s", [parent, child], [ForeignKey("c", "nope", "p", "id")])

    def test_add_table(self):
        schema = Schema("s", [Table("t", [Column("a")])])
        schema.add_table(Table("u", [Column("b")]))
        assert schema.has_table("u")
        with pytest.raises(SchemaError):
            schema.add_table(Table("u", [Column("b")]))

    def test_validate_columns(self):
        schema = Schema("s", [Table("t", [Column("a"), Column("b")])])
        schema.validate_columns("t", ["a", "b"])
        with pytest.raises(UnknownColumnError):
            schema.validate_columns("t", ["a", "zzz"])

    def test_iter_columns(self):
        schema = Schema("s", [Table("t", [Column("a"), Column("b")])])
        pairs = list(schema.iter_columns())
        assert len(pairs) == 2
        assert pairs[0][0].name == "t"


class TestBenchmarkSchemas:
    """The five benchmark schemas must be internally consistent."""

    @pytest.mark.parametrize("name,expected_tables", [
        ("tpch", 8),
        ("tpch_skew", 8),
        ("ssb", 5),
        ("tpcds", 12),
        ("imdb", 13),
    ])
    def test_schema_table_counts(self, name, expected_tables):
        from repro.workloads import get_benchmark

        benchmark = get_benchmark(name)
        assert len(benchmark.schema.tables) == expected_tables
        # every foreign key refers to existing tables/columns (validated at
        # construction time; reaching here means construction succeeded)
        assert benchmark.schema.foreign_keys
