"""Shared fixtures for the test suite.

Fixtures build small databases (a few hundred sample rows, low scale factors)
so the full suite runs in seconds while still exercising the real code paths:
generated data, statistics, planning, execution, tuning.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import (
    Column,
    ColumnType,
    Database,
    ForeignKeyRef,
    JoinPredicate,
    Operator,
    Predicate,
    Query,
    Schema,
    SequentialKey,
    Table,
    TableSpec,
    UniformInt,
    ZipfianInt,
)
from repro.workloads import get_benchmark


# --------------------------------------------------------------------- #
# a tiny hand-built schema used by most unit tests
# --------------------------------------------------------------------- #
def build_tiny_schema() -> Schema:
    sales = Table(
        "sales",
        [
            Column("sale_id", ColumnType.INTEGER),
            Column("customer_id", ColumnType.INTEGER),
            Column("product_id", ColumnType.INTEGER),
            Column("amount", ColumnType.DECIMAL),
            Column("day", ColumnType.DATE),
            Column("channel", ColumnType.INTEGER),
        ],
        primary_key=("sale_id",),
    )
    customers = Table(
        "customers",
        [
            Column("customer_id", ColumnType.INTEGER),
            Column("region", ColumnType.INTEGER),
            Column("segment", ColumnType.INTEGER),
        ],
        primary_key=("customer_id",),
    )
    return Schema(name="tiny", tables=[sales, customers])


def build_tiny_specs(sales_rows: int = 200_000, customer_rows: int = 5_000) -> list[TableSpec]:
    return [
        TableSpec("sales", sales_rows, {
            "sale_id": SequentialKey(),
            "customer_id": ForeignKeyRef(customer_rows),
            "product_id": ZipfianInt(low=1, n_distinct=1000, skew=1.2),
            "amount": UniformInt(1, 10_000),
            "day": UniformInt(0, 364),
            "channel": UniformInt(0, 4),
        }),
        TableSpec("customers", customer_rows, {
            "customer_id": SequentialKey(),
            "region": UniformInt(0, 9),
            "segment": ZipfianInt(low=0, n_distinct=5, skew=2.0),
        }),
    ]


@pytest.fixture(scope="session")
def tiny_schema() -> Schema:
    return build_tiny_schema()


@pytest.fixture()
def tiny_database() -> Database:
    """A fresh small database per test (tests may create/drop indexes)."""
    return Database.from_specs(
        schema=build_tiny_schema(),
        table_specs=build_tiny_specs(),
        sample_rows=600,
        seed=3,
        memory_budget_bytes=2 * 1024 * 1024 * 1024,
    )


@pytest.fixture(scope="session")
def tiny_database_readonly() -> Database:
    """A shared database for read-only tests (do not create indexes here)."""
    return Database.from_specs(
        schema=build_tiny_schema(),
        table_specs=build_tiny_specs(),
        sample_rows=600,
        seed=3,
        memory_budget_bytes=2 * 1024 * 1024 * 1024,
    )


def make_sales_query(
    query_id: str = "q_sales#0",
    template_id: str = "q_sales",
    day_high: int = 60,
    channel: int | None = 1,
) -> Query:
    """A selective single-table query over ``sales``."""
    predicates = [Predicate("sales", "day", Operator.LE, day_high)]
    if channel is not None:
        predicates.append(Predicate("sales", "channel", Operator.EQ, channel))
    return Query(
        query_id=query_id,
        template_id=template_id,
        tables=("sales",),
        predicates=tuple(predicates),
        payload={"sales": ("amount", "day")},
    )


def make_join_query(query_id: str = "q_join#0", template_id: str = "q_join") -> Query:
    """A two-table join query ``sales x customers`` with a dimension filter."""
    return Query(
        query_id=query_id,
        template_id=template_id,
        tables=("sales", "customers"),
        predicates=(
            Predicate("customers", "region", Operator.EQ, 3),
            Predicate("sales", "day", Operator.LE, 120),
        ),
        joins=(JoinPredicate("sales", "customer_id", "customers", "customer_id"),),
        payload={"sales": ("amount",), "customers": ("segment",)},
    )


@pytest.fixture()
def sales_query() -> Query:
    return make_sales_query()


@pytest.fixture()
def join_query() -> Query:
    return make_join_query()


# --------------------------------------------------------------------- #
# small benchmark databases (session scoped, read-only usage preferred)
# --------------------------------------------------------------------- #
@pytest.fixture(scope="session")
def tpch_benchmark():
    return get_benchmark("tpch")


@pytest.fixture(scope="session")
def tpch_small_database(tpch_benchmark) -> Database:
    return tpch_benchmark.create_database(scale_factor=0.1, sample_rows=500, seed=5)


@pytest.fixture(scope="session")
def ssb_benchmark():
    return get_benchmark("ssb")


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    return np.random.default_rng(42)
