"""Tests for the reprolint flow engine (``tools.reprolint.flow``) and the
runtime shared-memory sanitizer (``tools.reprolint.shmsan``).

Three layers:

* **CFG construction** — basic blocks and edges over straight-line code,
  branches, loops (including ``while True``), ``with``, ``try/finally``
  (whose finaliser is duplicated per continuation) and dead code;
* **resource dataflow** — the acquired/released/escaped lattice: joins at
  merge points keep the leaky path visible, exception edges carry pre-call
  state, escapes transfer ownership, and one level of helper summaries
  propagates acquisitions across calls;
* **shmsan** — the ledger balances a clean create/close/unlink cycle, trips
  on deliberate leaks, attach-side unlinks and overlapping writer ranges,
  and a real ``workers=2`` packed scoring pass runs leak-free under
  ``REPRO_SHM_SAN=1`` with bit-identical scores.
"""

from __future__ import annotations

import ast
import os
import sys
import textwrap
from pathlib import Path

import numpy as np
import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]
if str(REPO_ROOT) not in sys.path:  # `tools` lives at the repo root, not in src/
    sys.path.insert(0, str(REPO_ROOT))

from tools.reprolint import shmsan  # noqa: E402
from tools.reprolint.flow import (  # noqa: E402
    FILE,
    SHM_CREATE,
    analyse_resources,
    build_cfg,
)
from tools.reprolint.model import load_source_file  # noqa: E402
from tools.reprolint.project import ProjectIndex  # noqa: E402


def _cfg(source: str):
    node = ast.parse(textwrap.dedent(source)).body[0]
    assert isinstance(node, ast.FunctionDef)
    return build_cfg(node)


def _analyse(tmp_path: Path, source: str, function_name: str):
    path = tmp_path / "src" / "pkg" / "mod.py"
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    index = ProjectIndex.build([load_source_file(path, tmp_path)])
    function = next(
        f for f in index.iter_functions() if f.node.name == function_name
    )
    # An (empty) shared summaries cache switches helper-summary inlining on —
    # passing None is how the engine cuts recursion at one level.
    return analyse_resources(function, index, {})


# --------------------------------------------------------------------------- #
# CFG construction
# --------------------------------------------------------------------------- #
class TestCfgConstruction:
    def test_straight_line_reaches_exit(self):
        cfg = _cfg(
            """
            def f():
                x = 1
                return x
            """
        )
        reachable = cfg.reachable()
        assert cfg.exit in reachable
        assert len(cfg.blocks_for(ast.Return)) == 1

    def test_if_else_branches_join(self):
        cfg = _cfg(
            """
            def f(flag):
                if flag:
                    x = 1
                else:
                    x = 2
                return x
            """
        )
        (return_block,) = cfg.blocks_for(ast.Return)
        # Both branch bodies fall through into a join block that feeds the
        # single return block.
        (join_index,) = return_block.preds
        assert len(cfg.blocks[join_index].preds) == 2
        assert len(cfg.blocks_for(ast.Assign)) == 2
        assert cfg.exit in cfg.reachable()

    def test_while_true_without_break_has_no_normal_exit(self):
        cfg = _cfg(
            """
            def f():
                while True:
                    pass
            """
        )
        assert cfg.exit not in cfg.reachable()

    def test_while_true_with_break_exits(self):
        cfg = _cfg(
            """
            def f():
                while True:
                    break
            """
        )
        assert cfg.exit in cfg.reachable()

    def test_try_finally_finaliser_duplicated_per_continuation(self):
        cfg = _cfg(
            """
            def f(x):
                try:
                    risky(x)
                finally:
                    cleanup()
            """
        )
        finaliser_blocks = [
            block
            for block in cfg.blocks_for(ast.Expr)
            if isinstance(block.stmt.value, ast.Call)
            and isinstance(block.stmt.value.func, ast.Name)
            and block.stmt.value.func.id == "cleanup"
        ]
        # The finaliser is duplicated once per continuation target (the
        # fall-through exit and the raise path at minimum) — never shared.
        assert len(finaliser_blocks) >= 2
        assert cfg.exit in cfg.reachable()
        assert cfg.raise_exit in cfg.reachable()

    def test_with_block_body_reachable(self):
        cfg = _cfg(
            """
            def f(path):
                with open(path) as handle:
                    return handle.read()
            """
        )
        assert cfg.blocks_for(ast.With)
        assert cfg.exit in cfg.reachable()

    def test_for_else_flows_through_orelse(self):
        cfg = _cfg(
            """
            def f(items):
                for item in items:
                    use(item)
                else:
                    finish()
                return None
            """
        )
        assert cfg.blocks_for(ast.For)
        assert cfg.exit in cfg.reachable()

    def test_code_after_return_is_unreachable(self):
        cfg = _cfg(
            """
            def f():
                return 1
                x = 2
            """
        )
        dead = [
            block
            for block in cfg.blocks_for(ast.Assign)
            if block.index not in cfg.reachable()
        ]
        assert dead


# --------------------------------------------------------------------------- #
# resource-state dataflow
# --------------------------------------------------------------------------- #
class TestResourceDataflow:
    def test_join_at_merge_keeps_leaky_path_visible(self, tmp_path):
        analysis = _analyse(
            tmp_path,
            """
            from multiprocessing import shared_memory

            def f(flag):
                seg = shared_memory.SharedMemory(name="x", create=True, size=8)
                if flag:
                    seg.close()
                    seg.unlink()
            """,
            "f",
        )
        assert len(analysis.leaks) == 1
        leak = analysis.leaks[0]
        assert leak.site.kind == SHM_CREATE
        assert leak.on_normal_exit

    def test_release_on_both_branches_is_clean(self, tmp_path):
        analysis = _analyse(
            tmp_path,
            """
            from multiprocessing import shared_memory

            def f(flag):
                seg = shared_memory.SharedMemory(name="x", create=True, size=8)
                if flag:
                    seg.close()
                    seg.unlink()
                else:
                    seg.close()
                    seg.unlink()
            """,
            "f",
        )
        assert analysis.leaks == []

    def test_raise_path_leak_detected(self, tmp_path):
        analysis = _analyse(
            tmp_path,
            """
            def f(path):
                handle = open(path)
                data = handle.read()
                handle.close()
                return data
            """,
            "f",
        )
        assert len(analysis.leaks) == 1
        leak = analysis.leaks[0]
        assert leak.site.kind == FILE
        assert leak.on_raise_exit
        assert not leak.on_normal_exit

    def test_exception_edge_carries_pre_call_state(self, tmp_path):
        # If the acquiring call itself raises, the name was never bound —
        # the raise path must not report a phantom leak.
        analysis = _analyse(
            tmp_path,
            """
            from multiprocessing import shared_memory

            def f():
                seg = shared_memory.SharedMemory(name="x", create=True, size=8)
                seg.close()
                seg.unlink()
            """,
            "f",
        )
        assert analysis.leaks == []

    def test_store_into_module_cache_escapes(self, tmp_path):
        analysis = _analyse(
            tmp_path,
            """
            from multiprocessing import shared_memory

            _CACHE = {}

            def f():
                seg = shared_memory.SharedMemory(name="x", create=True, size=8)
                _CACHE["seg"] = seg
            """,
            "f",
        )
        assert analysis.leaks == []

    def test_with_managed_file_is_satisfied(self, tmp_path):
        analysis = _analyse(
            tmp_path,
            """
            def f(path):
                with open(path) as handle:
                    return handle.read()
            """,
            "f",
        )
        assert analysis.leaks == []

    def test_loop_reassignment_with_release_is_clean(self, tmp_path):
        analysis = _analyse(
            tmp_path,
            """
            def f(paths):
                for path in paths:
                    handle = open(path)
                    handle.close()
                return None
            """,
            "f",
        )
        assert analysis.leaks == []

    def test_loop_without_release_leaks(self, tmp_path):
        analysis = _analyse(
            tmp_path,
            """
            def f(paths):
                for path in paths:
                    handle = open(path)
                return None
            """,
            "f",
        )
        assert len(analysis.leaks) == 1
        assert analysis.leaks[0].site.kind == FILE

    def test_helper_summary_propagates_acquisition(self, tmp_path):
        source = """
            def _make(path):
                handle = open(path)
                return handle

            def releases(path):
                handle = _make(path)
                handle.close()
                return None

            def leaks(path):
                handle = _make(path)
                return None
            """
        clean = _analyse(tmp_path, source, "releases")
        # The raise path between acquisition and close still leaks (close
        # is not in a finally) — but the *normal* path must be satisfied.
        assert all(not leak.on_normal_exit for leak in clean.leaks)
        leaky = _analyse(tmp_path, source, "leaks")
        assert any(
            leak.on_normal_exit and leak.site.kind == FILE
            for leak in leaky.leaks
        )


# --------------------------------------------------------------------------- #
# shmsan: the runtime sanitizer
# --------------------------------------------------------------------------- #
@pytest.fixture
def armed_sanitizer():
    shmsan.reset()
    shmsan.install(force=True)
    yield
    shmsan.uninstall()
    shmsan.reset()


class TestShmSanLedger:
    def test_install_requires_env_or_force(self, monkeypatch):
        monkeypatch.delenv(shmsan.ENV_VAR, raising=False)
        assert shmsan.install() is False
        assert not shmsan.installed()

    def test_balanced_cycle_verifies(self, armed_sanitizer):
        from multiprocessing import shared_memory

        name = f"reproscore_sanok_{os.getpid()}"
        seg = shared_memory.SharedMemory(name=name, create=True, size=16)
        seg.close()
        seg.unlink()
        ledger = shmsan.verify(require_activity=True)
        assert ledger.creates_seen == 1
        assert ledger.violations == []

    def test_deliberate_leak_trips(self, armed_sanitizer):
        """The ISSUE's mutation check: an unlink-less segment must fail."""
        from multiprocessing import shared_memory

        name = f"reproscore_sanleak_{os.getpid()}"
        seg = shared_memory.SharedMemory(name=name, create=True, size=16)
        seg.close()
        try:
            with pytest.raises(shmsan.ShmSanError, match="never unlinked"):
                shmsan.verify()
        finally:
            residue = shmsan._ORIGINAL_SHARED_MEMORY(name=name)
            residue.unlink()
            residue.close()

    def test_never_closed_segment_trips(self, armed_sanitizer):
        shmsan.ledger().record_open("ghost", created=True, size=8)
        shmsan.ledger().record_unlink("ghost")
        with pytest.raises(shmsan.ShmSanError, match="never closed"):
            shmsan.verify()

    def test_attach_side_unlink_is_a_violation(self, armed_sanitizer):
        ledger = shmsan.ledger()
        ledger.record_open("seg", created=False, size=8)
        ledger.record_close("seg")
        ledger.record_unlink("seg")
        with pytest.raises(shmsan.ShmSanError, match="attach-side unlink"):
            shmsan.verify()

    def test_overlapping_writer_ranges_trip(self, armed_sanitizer):
        shmsan.ledger().note_writer_ranges("scores", [((0, 5),), ((4, 8),)])
        with pytest.raises(shmsan.ShmSanError, match="overlapping writer"):
            shmsan.verify()

    def test_disjoint_writer_ranges_pass(self, armed_sanitizer):
        shmsan.ledger().note_writer_ranges("scores", [((0, 5), (5, 8)), ((8, 12),)])
        shmsan.verify()

    def test_require_activity_rejects_idle_ledger(self, armed_sanitizer):
        with pytest.raises(shmsan.ShmSanError, match="no shared-memory activity"):
            shmsan.verify(require_activity=True)

    def test_reset_clears_ledger(self, armed_sanitizer):
        shmsan.ledger().record_open("seg", created=True, size=8)
        shmsan.reset()
        assert shmsan.ledger().records == {}


class TestSanitizedScoringEndToEnd:
    def test_workers2_pass_is_leak_free_and_bit_identical(self, monkeypatch):
        from repro.core import scoring

        monkeypatch.setenv(shmsan.ENV_VAR, "1")
        monkeypatch.setattr(scoring, "_SAN_AUTOINSTALL_TRIED", False)
        monkeypatch.setattr(scoring, "_SCORING_OBSERVER", None)
        shmsan.reset()
        try:
            rng = np.random.default_rng(11)
            blocks = [rng.normal(size=(16, 6)) for _ in range(4)]
            positions = [list(range(b * 16, (b + 1) * 16)) for b in range(4)]
            sizes = [[128] * 16 for _ in range(4)]
            pool = scoring.pack_arm_pool(
                blocks, positions, sizes, [f"s{b}" for b in range(4)]
            )
            theta = rng.normal(size=6)
            v_inverse = np.eye(6)
            parallel = scoring.score_packed(
                pool, theta, v_inverse, alpha=0.5, workers=2
            )
            if not parallel.used_processes:
                pytest.skip("shared-memory process pool unavailable here")
            # Shutting the pool down triggers the observer's ledger check.
            scoring._shutdown_executors()
            ledger = shmsan.verify(require_activity=True)
            assert ledger.creates_seen >= 4
            assert ledger.violations == []
            assert ledger.leaks() == []
            assert "scores" in " ".join(ledger.writer_ranges) or ledger.writer_ranges
            serial = scoring.score_packed(pool, theta, v_inverse, alpha=0.5, workers=1)
            np.testing.assert_array_equal(parallel.scores, serial.scores)
        finally:
            shmsan.uninstall()
            shmsan.reset()
