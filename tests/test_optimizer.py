"""Tests for cardinality estimation, plan selection and the what-if interface."""

import pytest

from repro.engine import (
    AccessMethod,
    IndexDefinition,
    JoinMethod,
    Operator,
    Predicate,
)
from repro.optimizer import CardinalityEstimator, Planner, WhatIfOptimizer
from tests.conftest import make_sales_query


@pytest.fixture()
def estimator(tiny_database_readonly) -> CardinalityEstimator:
    return CardinalityEstimator(tiny_database_readonly.statistics)


class TestCardinalityEstimator:
    def test_equality_selectivity_uses_distinct_count(self, estimator):
        predicate = Predicate("sales", "channel", Operator.EQ, 2)
        assert estimator.predicate_selectivity(predicate) == pytest.approx(0.2)

    def test_range_selectivity_uniformity(self, estimator):
        predicate = Predicate("sales", "day", Operator.LE, 90)
        assert 0.2 < estimator.predicate_selectivity(predicate) < 0.3

    def test_in_list_selectivity(self, estimator):
        predicate = Predicate("sales", "channel", Operator.IN, (0, 1))
        assert estimator.predicate_selectivity(predicate) == pytest.approx(0.4)

    def test_unknown_column_gets_default(self, estimator):
        predicate = Predicate("sales", "nonexistent", Operator.EQ, 1)
        assert estimator.predicate_selectivity(predicate) == pytest.approx(0.1)

    def test_avi_multiplies_selectivities(self, estimator):
        predicates = (
            Predicate("sales", "channel", Operator.EQ, 1),
            Predicate("sales", "day", Operator.LE, 36),
        )
        combined = estimator.conjunctive_selectivity(predicates)
        assert combined == pytest.approx(0.2 * estimator.predicate_selectivity(predicates[1]))

    def test_avi_misestimates_skewed_equality(self, tiny_database_readonly, estimator):
        """The optimiser estimate diverges from the truth on skewed columns."""
        data = tiny_database_readonly.table_data("customers")
        heavy_value = int(data.column_array("segment")[0])  # probably the heavy hitter
        # Find the actual heavy hitter to make the test deterministic.
        import numpy as np

        values, counts = np.unique(data.column_array("segment"), return_counts=True)
        heavy_value = int(values[counts.argmax()])
        predicate = Predicate("customers", "segment", Operator.EQ, heavy_value)
        estimated = estimator.predicate_selectivity(predicate)
        true = data.true_selectivity((predicate,))
        assert true > 3 * estimated  # zipf(2) over 5 values: truth is far above 1/5

    def test_join_cardinality_containment(self, estimator):
        size = estimator.join_cardinality(
            1_000, "sales", "customer_id", 5_000, "customers", "customer_id"
        )
        assert size == pytest.approx(1_000.0)

    def test_table_cardinality(self, estimator):
        query = make_sales_query(channel=None, day_high=364)
        assert estimator.table_cardinality(query, "sales") > 100_000


class TestPlanner:
    def test_full_scan_without_indexes(self, tiny_database_readonly, sales_query):
        plan = Planner(tiny_database_readonly).plan(sales_query, configuration=[])
        assert plan.accesses["sales"].method is AccessMethod.FULL_SCAN
        assert plan.estimated_seconds > 0

    def test_covering_index_seek_chosen_when_selective(self, tiny_database_readonly, sales_query):
        index = IndexDefinition("sales", ("day", "channel"), ("amount",))
        plan = Planner(tiny_database_readonly).plan(sales_query, configuration=[index])
        access = plan.accesses["sales"]
        assert access.method is AccessMethod.INDEX_SEEK
        assert access.covering
        assert access.index == index
        assert plan.indexes_used == [index]

    def test_irrelevant_index_ignored(self, tiny_database_readonly, sales_query):
        index = IndexDefinition("sales", ("product_id",))
        plan = Planner(tiny_database_readonly).plan(sales_query, configuration=[index])
        assert plan.accesses["sales"].method is AccessMethod.FULL_SCAN

    def test_join_plan_structure(self, tiny_database_readonly, join_query):
        plan = Planner(tiny_database_readonly).plan(join_query, configuration=[])
        assert plan.driving_table in ("sales", "customers")
        assert len(plan.join_steps) == 1
        assert plan.join_steps[0].method in (JoinMethod.HASH_JOIN, JoinMethod.INDEX_NESTED_LOOP)
        assert "HashJoin" in plan.describe() or "IndexNestedLoop" in plan.describe()

    def test_index_nested_loop_possible_with_join_index(self, tiny_database_readonly, join_query):
        join_index = IndexDefinition("sales", ("customer_id",), ("amount", "day"))
        plan = Planner(tiny_database_readonly).plan(join_query, configuration=[join_index])
        methods = {step.method for step in plan.join_steps}
        # with a covering index on the join key, INL should at least be considered;
        # the plan must remain valid either way
        assert methods <= {JoinMethod.HASH_JOIN, JoinMethod.INDEX_NESTED_LOOP}

    def test_plan_estimate_positive_and_finite(self, tiny_database_readonly, join_query):
        plan = Planner(tiny_database_readonly).plan(join_query)
        assert 0 < plan.estimated_seconds < 1e9


class TestWhatIf:
    def test_index_benefit_positive_for_useful_index(self, tiny_database_readonly, sales_query):
        what_if = WhatIfOptimizer(tiny_database_readonly)
        useful = IndexDefinition("sales", ("day", "channel"), ("amount",))
        assert what_if.index_benefit([sales_query], useful) > 0

    def test_index_benefit_zero_for_irrelevant_index(self, tiny_database_readonly, sales_query):
        what_if = WhatIfOptimizer(tiny_database_readonly)
        useless = IndexDefinition("customers", ("segment",))
        assert what_if.index_benefit([sales_query], useless) == pytest.approx(0.0, abs=1e-6)

    def test_estimates_do_not_materialise_anything(self, tiny_database_readonly, sales_query):
        what_if = WhatIfOptimizer(tiny_database_readonly)
        what_if.estimate_query(sales_query, [IndexDefinition("sales", ("day",))])
        assert tiny_database_readonly.materialised_indexes == []

    def test_call_counter_increments(self, tiny_database_readonly, sales_query):
        what_if = WhatIfOptimizer(tiny_database_readonly)
        before = what_if.calls
        what_if.estimate_workload([sales_query, sales_query], [])
        assert what_if.calls == before + 2

    def test_configuration_benefit_monotone_for_nested_configs(
        self, tiny_database_readonly, sales_query, join_query
    ):
        what_if = WhatIfOptimizer(tiny_database_readonly)
        queries = [sales_query, join_query]
        single = [IndexDefinition("sales", ("day", "channel"), ("amount",))]
        double = single + [IndexDefinition("customers", ("region",), ("segment", "customer_id"))]
        assert what_if.configuration_benefit(queries, [], double) >= what_if.configuration_benefit(
            queries, [], single
        ) - 1e-9
